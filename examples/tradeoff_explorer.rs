//! Space–time trade-off explorer for the composable modular-adder
//! framework (§3, Theorem 3.6).
//!
//! Sweeps every assignment of adder families to the four subroutine slots
//! of the VBE architecture and prints the (qubits, expected-Toffoli)
//! frontier — showing why the paper's Gidney+CDKPM hybrid is the
//! interesting point: Gidney where Toffolis dominate, CDKPM where ancillas
//! would otherwise pile up. "Early error-corrected settings" care about
//! exactly this frontier.
//!
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use mbu_arith::modular::{self, ModAddSpec};
use mbu_arith::{AdderKind, Uncompute};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let p = 4_294_967_291u128; // 2^32 − 5
    let kinds = [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney];

    println!("modular adder slot sweep  (n = {n}, p = {p}, MBU on)");
    println!(
        "{:<8} {:<8} {:<8} {:<8} {:>7} {:>10} {:>10}",
        "QADD", "QCOMP", "C-QSUB", "Q'COMP", "qubits", "E[Tof]", "Tof-depth"
    );

    let mut frontier: Vec<(usize, f64, String)> = Vec::new();
    for adder in kinds {
        for comp_p in kinds {
            for sub_p in kinds {
                for comp_back in kinds {
                    let spec = ModAddSpec {
                        adder,
                        comp_p,
                        sub_p,
                        comp_back,
                        full_final_comparator: false,
                        uncompute: Uncompute::Mbu,
                    };
                    let layout = modular::modadd_circuit(&spec, n, p)?;
                    let qubits = layout.circuit.num_qubits();
                    let tof = layout.circuit.expected_counts().toffoli;
                    frontier.push((
                        qubits,
                        tof,
                        format!(
                            "{:<8} {:<8} {:<8} {:<8} {:>7} {:>10.1} {:>10}",
                            adder.to_string(),
                            comp_p.to_string(),
                            sub_p.to_string(),
                            comp_back.to_string(),
                            qubits,
                            tof,
                            layout.circuit.toffoli_depth()
                        ),
                    ));
                }
            }
        }
    }

    // Pareto frontier: no other point has both fewer qubits and fewer
    // Toffolis.
    let pareto: Vec<&(usize, f64, String)> = frontier
        .iter()
        .filter(|(q, t, _)| {
            !frontier
                .iter()
                .any(|(q2, t2, _)| (*q2 < *q && *t2 <= *t) || (*q2 <= *q && *t2 < *t))
        })
        .collect();

    let mut shown: Vec<&(usize, f64, String)> = pareto.clone();
    shown.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    println!(
        "--- Pareto-optimal assignments ({} of {}) ---",
        shown.len(),
        frontier.len()
    );
    for (_, _, line) in &shown {
        println!("{line}");
    }

    // The paper's named points for reference.
    println!("\n--- the paper's named architectures ---");
    for (name, spec) in [
        ("Prop 3.4 (CDKPM)", ModAddSpec::cdkpm(Uncompute::Mbu)),
        ("Prop 3.5 (Gidney)", ModAddSpec::gidney(Uncompute::Mbu)),
        ("Thm 3.6 (hybrid)", ModAddSpec::gidney_cdkpm(Uncompute::Mbu)),
    ] {
        let layout = modular::modadd_circuit(&spec, n, p)?;
        println!(
            "{:<20} qubits = {:>3}   E[Tof] = {:>7.1}",
            name,
            layout.circuit.num_qubits(),
            layout.circuit.expected_counts().toffoli
        );
    }
    println!(
        "\nThm 3.6's hybrid sits on the frontier: CDKPM's qubit budget, near-Gidney Toffolis."
    );
    Ok(())
}
