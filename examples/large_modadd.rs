//! Functional simulation far past the dense limit: a multi-stage MBU
//! modular-adder chain on 256-bit registers, run on the sparse
//! basis-map backend.
//!
//! A dense statevector caps out near 25 qubits (2^25 amplitudes). The
//! paper's adders, though, are permutation circuits: started from a
//! computational basis state they occupy a *handful* of basis states at
//! any instant — only the MBU/AND measurement ancillas ever fan out,
//! and each collapses immediately. `SparseVector` stores exactly those
//! occupied states, so the same Table-1 circuits run functionally at
//! hundreds or thousands of qubits in milliseconds.
//!
//! ```text
//! cargo run --release --example large_modadd
//! ```

use mbu_arith::modular::{self, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_bench::benchmark_modulus;
use mbu_circuit::CompiledCircuit;
use mbu_sim::{Simulator, SparseVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Register width in bits. The modulus is the Mersenne prime 2^127 − 1
/// (classical reference arithmetic stays in `u128`); the registers
/// carrying it are 256 bits wide.
const N: usize = 256;
const STAGES: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = benchmark_modulus(N);
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let chain = modular::modadd_chain_circuit(&spec, N, p, STAGES)?;
    let nq = chain.circuit.num_qubits();
    let counts = chain.circuit.counts();
    println!("{STAGES}-stage CDKPM MBU modular-adder chain, n = {N} bits:");
    println!(
        "  {nq} qubits, {} Toffoli, {} CNOT, {} measurements",
        counts.toffoli,
        counts.cx,
        counts.measurements()
    );
    println!(
        "  dense statevector would need 2^{nq} amplitudes (2^{} bytes)",
        nq + 4
    );

    let x = p - 1;
    let y = p / 2 + 1;
    let compiled = CompiledCircuit::compile(&chain.circuit)?;
    let mut sim = SparseVector::zeros(nq)?;
    sim.set_value(chain.x.qubits(), x)?;
    sim.set_value(chain.y.qubits(), y)?;
    let mut rng = StdRng::seed_from_u64(7);

    let start = Instant::now();
    sim.run_compiled(&compiled, &mut rng)?;
    let wall = start.elapsed();

    // Each stage adds x once: |x⟩|y⟩ → |x⟩|(y + STAGES·x) mod p⟩. The
    // registers are wider than any native integer, so read bit by bit
    // (and accumulate stage by stage — 3·x alone overflows u128).
    let mut expect = y;
    for _ in 0..STAGES {
        expect = (expect + x) % p;
    }
    let mut got = 0u128;
    for (i, q) in chain.y.qubits().iter().enumerate() {
        let bit = sim.bit(*q)?;
        assert_eq!(
            bit,
            i < 128 && (expect >> i) & 1 == 1,
            "sum bit {i} disagrees with the classical reference"
        );
        if bit && i < 128 {
            got |= 1u128 << i;
        }
    }
    println!("  x = {x:#x}");
    println!("  y = {y:#x}");
    println!("  (y + {STAGES}·x) mod p = {got:#x}  ✓ matches u128 reference");

    let peak = sim
        .peak_amplitudes()
        .expect("sparse backend reports a peak");
    let entry_bytes = nq.div_ceil(64) * 8 + 16;
    println!(
        "  wall {wall:.1?}, peak {peak} occupied states ({} bytes of state)",
        peak as usize * entry_bytes
    );
    Ok(())
}
