//! Gallery: render the paper's circuit figures as ASCII diagrams.
//!
//! Shows the four plain-adder families at small width plus the MBU
//! protocol itself, each with its resource line — a visual tour of §2
//! and Figure 24.
//!
//! ```text
//! cargo run --example adder_gallery
//! ```

use mbu_arith::{adders, compare, mbu, AdderKind};
use mbu_circuit::diagram::render;
use mbu_circuit::CircuitBuilder;
use mbu_sim::{PhaseAccumulator, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs a plain adder on the phase-accumulator backend and returns
/// `(x + y, occupancy peak)` — one line of evidence that the Fourier
/// interior costs O(occupied), not 2^n.
fn phase_row(adder: &adders::PlainAdder, x: u128, y: u128) -> (u128, u64) {
    let mut sim = PhaseAccumulator::zeros(adder.circuit.num_qubits()).expect("width fits");
    sim.set_value(adder.x.qubits(), x).expect("x fits");
    sim.set_value(adder.y.qubits(), y).expect("y fits");
    let mut rng = StdRng::seed_from_u64(7);
    sim.run(&adder.circuit, &mut rng).expect("adder runs");
    let sum = sim.value(adder.y.qubits()).expect("classical sum");
    let peak = sim.occupancy_peak().expect("phase backend tracks peaks");
    (sum, peak)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2usize;

    for kind in [
        AdderKind::Vbe,
        AdderKind::Cdkpm,
        AdderKind::Gidney,
        AdderKind::Draper,
    ] {
        let adder = adders::plain_adder(kind, n)?;
        let mut labels: Vec<String> = Vec::new();
        for i in 0..n {
            labels.push(format!("x{i}"));
        }
        for i in 0..=n {
            labels.push(format!("y{i}"));
        }
        for i in labels.len()..adder.circuit.num_qubits() {
            labels.push(format!("a{}", i - 2 * n - 1));
        }
        println!("── {kind} plain adder (n = {n}) ──");
        println!("{}", render(&adder.circuit, &labels));
        let c = adder.circuit.counts();
        println!(
            "   Tof={} CX={} CZ={} H={} R/CR={} Mz={}   depth={} tof-depth={}",
            c.toffoli,
            c.cx,
            c.cz,
            c.h,
            c.phase + c.cphase,
            c.measure_z,
            adder.circuit.depth(),
            adder.circuit.toffoli_depth(),
        );
        let (sum, peak) = phase_row(&adder, 3, 2);
        println!("   phase backend: |3⟩|2⟩ ↦ |3⟩|{sum}⟩, occupancy peak {peak}\n");
    }

    // The phase backend's headline: the Draper adder at a width whose
    // QFT interior would fan a state-vector map out to 2^64 entries.
    let wide = adders::plain_adder(AdderKind::Draper, 64)?;
    let (x, y) = ((1u128 << 63) - 5, (1u128 << 62) + 3);
    let (sum, peak) = phase_row(&wide, x, y);
    assert_eq!(sum, x + y);
    println!("── Draper adder at n = 64, phase-accumulator backend ──");
    println!(
        "   {} qubits, {} controlled rotations: {x} + {y} = {sum}, occupancy peak {peak}\n",
        wide.circuit.num_qubits(),
        wide.circuit.counts().cphase,
    );

    // Figure 24: the MBU protocol around a Toffoli oracle.
    println!("── MBU protocol (Lemma 4.1 / Figure 24), Ug = Toffoli ──");
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 3);
    let (_, ug) = b.record(|b| b.ccx(q[0], q[1], q[2]));
    b.emit(&ug);
    mbu::uncompute_bit(&mut b, q[2], &ug);
    let circuit = b.finish();
    println!("{}", render(&circuit, &["x0", "x1", "g"]));
    let e = circuit.expected_counts();
    println!(
        "   expected: Tof={:.1} H={:.1} X={:.1}  (correction runs half the time)\n",
        e.toffoli, e.h, e.x
    );

    // The CDKPM comparator (Figure 21 flavour).
    println!("── CDKPM half-subtractor comparator (Prop 2.27), n = 2 ──");
    let cmp = compare::comparator(AdderKind::Cdkpm, 2)?;
    println!(
        "{}",
        render(&cmp.circuit, &["x0", "x1", "y0", "y1", "t", "c0"])
    );
    println!(
        "   t ⊕= 1[x > y] with {} Toffolis",
        cmp.circuit.counts().toffoli
    );
    Ok(())
}
