//! Quickstart: build a modular adder, inspect its resources, simulate it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mbu_arith::{modular, Uncompute};
use mbu_sim::{BasisTracker, ShotRunner};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-bit modular adder, Gidney+CDKPM hybrid (Theorem 3.6), with
    // measurement-based uncomputation of the comparison flag (Theorem 4.5).
    let n = 16;
    let p = 65_521; // largest 16-bit prime
    let spec = modular::ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p)?;

    println!("modular adder  (x + y) mod {p},  n = {n}");
    println!("  architecture : Gidney + CDKPM (Thm 3.6), MBU (Thm 4.5)");
    println!("  qubits       : {}", layout.circuit.num_qubits());
    println!("  worst case   : {}", layout.circuit.counts());
    let e = layout.circuit.expected_counts();
    println!(
        "  in expectation: Tof={:.1} CNOT={:.1} CZ={:.2} X={:.1}",
        e.toffoli, e.cx, e.cz, e.x
    );
    println!("  Toffoli depth: {}", layout.circuit.toffoli_depth());

    // Simulate: 40000 + 30000 mod 65521 = 4479.
    let (x, y) = (40_000u128, 30_000u128);
    let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
    sim.set_value(layout.x.qubits(), x).unwrap();
    sim.set_value(layout.y.qubits(), y).unwrap();
    let mut rng = StdRng::seed_from_u64(2025);
    let executed = sim.run(&layout.circuit, &mut rng)?;

    let result = sim.value(layout.y.qubits())?;
    println!("\nsimulation: ({x} + {y}) mod {p} = {result}");
    assert_eq!(result, (x + y) % p);
    println!(
        "  this run executed {} Toffolis ({} measurements, phase = {})",
        executed.counts.toffoli,
        executed.counts.measurements(),
        sim.global_phase(),
    );

    // One run is one sample of the MBU coin flips; the paper's costs are
    // "in expectation". Average a parallel 1000-shot ensemble instead.
    let ensemble = ShotRunner::new(1000).run(&layout.circuit, || {
        let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
        sim.set_value(layout.x.qubits(), x).unwrap();
        sim.set_value(layout.y.qubits(), y).unwrap();
        Box::new(sim)
    })?;
    let mean = ensemble.mean();
    let var = ensemble.variance();
    println!(
        "  over {} shots : Tof mean={:.2} (analytic {:.2}), variance={:.2}",
        ensemble.shots(),
        mean.toffoli,
        e.toffoli,
        var.toffoli,
    );

    // The same adder without MBU, for comparison.
    let plain =
        modular::modadd_circuit(&modular::ModAddSpec::gidney_cdkpm(Uncompute::Unitary), n, p)?;
    let saving =
        1.0 - layout.circuit.expected_counts().toffoli / plain.circuit.expected_counts().toffoli;
    println!(
        "\nMBU saves {:.1}% of the expected Toffolis over the unitary uncomputation",
        100.0 * saving
    );
    Ok(())
}
