//! Exact Table-1 count distributions via the branch-tree engine.
//!
//! ```text
//! cargo run --example exact_distributions
//! ```
//!
//! The paper's Table 1 reports MBU costs *in expectation* over measurement
//! outcomes. Monte-Carlo shot ensembles estimate those numbers with
//! `O(1/√N)` sampling noise; the branch-tree engine computes them
//! **exactly**, by executing every unique measurement history once and
//! weighting by branch probability — no RNG is ever consumed (the
//! exact-mode API takes none). At `n = 16` the adder spans 52+ qubits, far
//! past any state vector, but the basis tracker forks in O(1) per qubit,
//! so the full-width distribution is a few milliseconds of work.

use mbu_arith::{modular, Uncompute};
use mbu_sim::{BasisTracker, BranchEnsemble, ShotRunner, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let p = 65_521u128; // largest 16-bit prime (the Table-1 modulus)
    let (x, y) = (40_000u128, 30_000u128);

    println!("Table 1 at n = {n}, p = {p} — exact vs sampled expectation\n");
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>10}",
        "arch", "E[Tof]", "exact E[Tof]", "1000-shot MC", "leaves"
    );

    type SpecFn = fn(Uncompute) -> modular::ModAddSpec;
    let archs: [(&str, SpecFn); 3] = [
        ("vbe5", modular::ModAddSpec::vbe5),
        ("vbe4", modular::ModAddSpec::vbe4),
        ("cdkpm", modular::ModAddSpec::cdkpm),
    ];
    for (name, spec) in archs {
        let layout = modular::modadd_circuit(&spec(Uncompute::Mbu), n, p)?;
        let nq = layout.circuit.num_qubits();
        let (xq, yq) = (layout.x.qubits().to_vec(), layout.y.qubits().to_vec());
        let factory = move || {
            let mut sim = BasisTracker::zeros(nq);
            sim.set_value(&xq, x).unwrap();
            sim.set_value(&yq, y).unwrap();
            Box::new(sim) as Box<dyn Simulator + Send>
        };

        // Exact: the complete outcome distribution, zero sampling noise.
        let dist = BranchEnsemble::new(0).distribution(&layout.circuit, &factory)?;
        // Sampled, for contrast: a seeded 1000-shot Monte-Carlo ensemble.
        let mc = ShotRunner::new(1000).run(&layout.circuit, || {
            let mut sim = BasisTracker::zeros(nq);
            sim.set_value(layout.x.qubits(), x).unwrap();
            sim.set_value(layout.y.qubits(), y).unwrap();
            Box::new(sim)
        })?;

        let analytic = layout.circuit.expected_counts().toffoli;
        let exact = dist.mean_counts().toffoli;
        assert_eq!(exact, analytic, "exact mode reproduces the printed table");
        println!(
            "{:<8} {:>10.1} {:>12.1} {:>14.3} {:>10}",
            name,
            analytic,
            exact,
            mc.mean().toffoli,
            dist.num_leaves(),
        );
    }

    // The distribution itself: every measurement record with its exact
    // probability — Lemma 4.1's flag is a fair coin, printed with no noise.
    let layout = modular::modadd_circuit(&modular::ModAddSpec::cdkpm(Uncompute::Mbu), n, p)?;
    let nq = layout.circuit.num_qubits();
    let (xq, yq) = (layout.x.qubits().to_vec(), layout.y.qubits().to_vec());
    let dist = BranchEnsemble::new(0).distribution(&layout.circuit, move || {
        let mut sim = BasisTracker::zeros(nq);
        sim.set_value(&xq, x).unwrap();
        sim.set_value(&yq, y).unwrap();
        Box::new(sim) as Box<dyn Simulator + Send>
    })?;
    println!("\ncdkpm-mbu measurement records (exact probabilities):");
    for (record, freq) in dist.record_frequencies() {
        let bits: String = record
            .iter()
            .map(|b| match b {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            })
            .collect();
        println!("  [{bits}]  p = {freq}");
    }
    println!(
        "\n{} fork point(s), {} leaves, pruned mass {}",
        dist.fork_nodes(),
        dist.num_leaves(),
        dist.pruned_mass()
    );
    Ok(())
}
