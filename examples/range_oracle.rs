//! A Grover-style range oracle from the two-sided comparator
//! (Theorem 4.13): flag every `x` in a superposition with `y < x < z`.
//!
//! Runs the exact state-vector simulator on a uniform superposition and
//! verifies the oracle marked precisely the in-range values — including
//! that the MBU variant introduced no stray phases on any component.
//!
//! ```text
//! cargo run --example range_oracle
//! ```

use mbu_arith::{two_sided, AdderKind, Uncompute};
use mbu_circuit::{Circuit, Gate, Op};
use mbu_sim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 3usize;
    let (lo, hi) = (1u64, 6u64);
    println!("range oracle: flag x with {lo} < x < {hi}, x in uniform superposition\n");

    for unc in [Uncompute::Unitary, Uncompute::Mbu] {
        let layout = two_sided::in_range_circuit(AdderKind::Cdkpm, unc, n)?;
        // Prepend H on every x qubit to create the superposition.
        let mut full = Circuit::new(layout.circuit.num_qubits(), layout.circuit.num_clbits());
        for q in layout.x.iter() {
            full.push(Op::Gate(Gate::H(q)));
        }
        for op in layout.circuit.ops() {
            full.push(op.clone());
        }

        let mut sv = StateVector::zeros(full.num_qubits())?;
        sv.prepare_basis(StateVector::index_with(&[
            (layout.y.qubits(), lo),
            (layout.z.qubits(), hi),
        ]))?;
        let mut rng = StdRng::seed_from_u64(7);
        sv.run(&full, &mut rng)?;

        println!("{unc} uncomputation:");
        let amp_norm = 1.0 / ((1u64 << n) as f64).sqrt();
        for x in 0..(1u64 << n) {
            let in_range = lo < x && x < hi;
            let idx = StateVector::index_with(&[
                (layout.x.qubits(), x),
                (layout.y.qubits(), lo),
                (layout.z.qubits(), hi),
                (&[layout.t], u64::from(in_range)),
            ]);
            let a = sv.amplitude(idx);
            let marker = if in_range { "◀ flagged" } else { "" };
            println!("  |x={x}⟩|t={}⟩  amp {a:+.4}  {marker}", u8::from(in_range));
            assert!(
                (a.re - amp_norm).abs() < 1e-9 && a.im.abs() < 1e-9,
                "component damaged at x={x}"
            );
        }
        let e = layout.circuit.expected_counts();
        println!("  expected Toffolis: {:.1}\n", e.toffoli);
    }

    println!("both variants mark the same states; MBU does it cheaper in expectation.");
    Ok(())
}
