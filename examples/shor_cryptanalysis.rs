//! Cryptanalysis workload: the modular-exponentiation ladder at the heart
//! of Shor's algorithm, built from this crate's (controlled) modular
//! adders — the application the paper's introduction motivates.
//!
//! Demonstrates (1) functional correctness of `|e⟩|1⟩ ↦ |e⟩|g^e mod p⟩`
//! including the period structure Shor exploits, and (2) how the paper's
//! per-adder MBU savings compound at workload scale.
//!
//! ```text
//! cargo run --release --example shor_cryptanalysis
//! ```

use mbu_arith::{
    modular::ModAddSpec,
    mulexp::{self, mod_pow},
    Uncompute,
};
use mbu_sim::{BasisTracker, ShotRunner};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Factor N = 15 the Shor way: find the order of g = 7 modulo 15.
    let n = 4; // register width for the modulus
    let k = 4; // exponent qubits
    let (g, p) = (7u128, 15u128);
    let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);

    println!("modular exponentiation |e⟩|1⟩ → |e⟩|{g}^e mod {p}⟩  (k={k}, n={n})");
    let layout = mulexp::modexp_circuit(&spec, k, n, g, p)?;
    println!("  qubits         : {}", layout.circuit.num_qubits());
    println!(
        "  expected Toffoli: {:.0}",
        layout.circuit.expected_counts().toffoli
    );

    println!("\n  e : g^e mod p  (period visible below)");
    let mut row = String::new();
    for e in 0..(1u128 << k) {
        let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
        sim.set_value(layout.exponent.qubits(), e).unwrap();
        sim.set_value(layout.work.qubits(), 1).unwrap();
        let mut rng = StdRng::seed_from_u64(e as u64);
        sim.run(&layout.circuit, &mut rng)?;
        let v = sim.value(layout.work.qubits())?;
        assert_eq!(v, mod_pow(g, e, p), "circuit disagrees with mod_pow");
        row.push_str(&format!("{v:>3}"));
    }
    println!("  {row}");

    // The "expected Toffoli" number above is an expectation over MBU
    // measurement outcomes; check it empirically with a parallel ensemble
    // on one exponent.
    let e_probe = 5u128;
    let ensemble = ShotRunner::new(400).run(&layout.circuit, || {
        let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
        sim.set_value(layout.exponent.qubits(), e_probe).unwrap();
        sim.set_value(layout.work.qubits(), 1).unwrap();
        Box::new(sim)
    })?;
    println!(
        "\n  Monte-Carlo (e={e_probe}, {} shots): Tof mean {:.1}, std dev {:.1}",
        ensemble.shots(),
        ensemble.mean().toffoli,
        ensemble.variance().toffoli.sqrt(),
    );

    // ord_15(7) = 4, and gcd(7^{4/2} ± 1, 15) = {3, 5}: the factors.
    let r = (1..=8u128).find(|r| mod_pow(g, *r, p) == 1).expect("order");
    let half = mod_pow(g, r / 2, p);
    let f1 = gcd(half + 1, p);
    let f2 = gcd(half + p - 1, p);
    println!("\n  period r = {r}; gcd({half}±1, {p}) → factors {f1} × {f2}");
    assert_eq!(f1 * f2, p);

    // The paper's point: MBU savings compound over the whole ladder.
    println!("\nMBU impact on the full exponentiation ladder (CDKPM architecture):");
    println!(
        "{:>4} {:>14} {:>14} {:>8}",
        "n", "Tof (unitary)", "Tof (MBU)", "saved"
    );
    for bits in [4usize, 6, 8, 10] {
        let modulus = match bits {
            4 => 13u128,
            6 => 61,
            8 => 251,
            _ => 1021,
        };
        let plain = mulexp::modexp_circuit(
            &ModAddSpec::cdkpm(Uncompute::Unitary),
            bits,
            bits,
            2,
            modulus,
        )?
        .circuit
        .expected_counts()
        .toffoli;
        let mbu =
            mulexp::modexp_circuit(&ModAddSpec::cdkpm(Uncompute::Mbu), bits, bits, 2, modulus)?
                .circuit
                .expected_counts()
                .toffoli;
        println!(
            "{bits:>4} {plain:>14.0} {mbu:>14.0} {:>7.1}%",
            100.0 * (1.0 - mbu / plain)
        );
    }
    Ok(())
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}
