//! Criterion bench for Table 6: comparators, including the constant and
//! controlled variants used inside the modular adders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::{compare, AdderKind};
use mbu_sim::BasisTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6/synthesis");
    let n = 32usize;
    for kind in [
        AdderKind::Vbe,
        AdderKind::Cdkpm,
        AdderKind::Gidney,
        AdderKind::Draper,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(compare::comparator(kind, n).unwrap()))
        });
    }
    group.finish();
}

fn simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6/simulation");
    let n = 32usize;
    for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
        let cmp = compare::comparator(kind, n).unwrap();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(kind), &cmp, |b, cmp| {
            b.iter(|| {
                let mut sim = BasisTracker::zeros(cmp.circuit.num_qubits());
                sim.set_value(cmp.x.qubits(), 0xF0F0_F0F0).unwrap();
                sim.set_value(cmp.y.qubits(), 0x0F0F_0F0F).unwrap();
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sim.run(&cmp.circuit, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn const_comparator(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6/const_comparator");
    let n = 32usize;
    let a = 0xCAFE_BABEu128;
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(compare::const_comparator(kind, n, a).unwrap()))
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = synthesis, simulation, const_comparator
}
criterion_main!(benches);
