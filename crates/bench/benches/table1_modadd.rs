//! Criterion bench for Table 1: synthesis and simulation cost of every
//! modular-adder architecture, with and without MBU.
//!
//! The resource-count reproduction itself lives in
//! `cargo run -p mbu-bench --bin tables -- table1`; this bench measures the
//! *library's* performance on the same workload: how fast each architecture
//! synthesises and simulates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::resources::Table1Row;
use mbu_arith::Uncompute;
use mbu_bench::{benchmark_modulus, build_row_circuit};
use mbu_sim::BasisTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const ROWS: [Table1Row; 5] = [
    Table1Row::Vbe5,
    Table1Row::Vbe4,
    Table1Row::Cdkpm,
    Table1Row::Gidney,
    Table1Row::CdkpmGidney,
];

fn synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/synthesis");
    let n = 32usize;
    let p = benchmark_modulus(n);
    for row in ROWS {
        for (unc, tag) in [(Uncompute::Unitary, "unitary"), (Uncompute::Mbu, "mbu")] {
            group.bench_with_input(
                BenchmarkId::new(row.label(), tag),
                &(row, unc),
                |b, &(row, unc)| b.iter(|| black_box(build_row_circuit(row, unc, n, p).unwrap())),
            );
        }
    }
    group.finish();
}

fn simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/simulation");
    let n = 32usize;
    let p = benchmark_modulus(n);
    for row in ROWS {
        for (unc, tag) in [(Uncompute::Unitary, "unitary"), (Uncompute::Mbu, "mbu")] {
            let layout = build_row_circuit(row, unc, n, p).unwrap();
            let mut seed = 0u64;
            group.bench_with_input(BenchmarkId::new(row.label(), tag), &layout, |b, layout| {
                b.iter(|| {
                    let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                    sim.set_value(layout.x.qubits(), (p - 1) % p).unwrap();
                    sim.set_value(layout.y.qubits(), (p / 2) % p).unwrap();
                    seed = seed.wrapping_add(1);
                    let mut rng = StdRng::seed_from_u64(seed);
                    black_box(sim.run(&layout.circuit, &mut rng).unwrap())
                })
            });
        }
    }
    group.finish();
}

fn width_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/width_scaling_cdkpm_mbu");
    for n in [8usize, 16, 32, 64] {
        let p = benchmark_modulus(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(build_row_circuit(Table1Row::Cdkpm, Uncompute::Mbu, n, p).unwrap()))
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = synthesis, simulation, width_scaling
}
criterion_main!(benches);
