//! Criterion bench for the two simulation backends: the O(1)-per-gate
//! phase-tracking basis tracker vs the exact state vector, on the same
//! circuits — quantifying why the tracker is what makes n = 256
//! verification possible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::modular::{self, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_bench::benchmark_modulus;
use mbu_circuit::CompiledCircuit;
use mbu_sim::{BasisTracker, KernelMode, Simulator, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn tracker_vs_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulators/same_circuit");
    let n = 6usize; // CDKPM modadd at n=6 uses ~21 qubits: near SV limit
    let p = benchmark_modulus(n);
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).unwrap();

    let mut seed = 0u64;
    group.bench_function("basis_tracker", |b| {
        b.iter(|| {
            let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
            sim.set_value(layout.x.qubits(), p - 1).unwrap();
            sim.set_value(layout.y.qubits(), p - 2).unwrap();
            seed = seed.wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(sim.run(&layout.circuit, &mut rng).unwrap())
        })
    });

    let mut seed2 = 0u64;
    group.bench_function("state_vector", |b| {
        b.iter(|| {
            let mut sv = StateVector::zeros(layout.circuit.num_qubits()).unwrap();
            sv.prepare_basis(StateVector::index_with(&[
                (layout.x.qubits(), (p - 1) as u64),
                (layout.y.qubits(), (p - 2) as u64),
            ]))
            .unwrap();
            seed2 = seed2.wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(seed2);
            black_box(sv.run(&layout.circuit, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn tracker_width_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulators/tracker_scaling");
    let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
    for n in [16usize, 32, 64] {
        let p = benchmark_modulus(n);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &layout, |b, layout| {
            b.iter(|| {
                let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                sim.set_value(layout.x.qubits(), p - 1).unwrap();
                sim.set_value(layout.y.qubits(), 1).unwrap();
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sim.run(&layout.circuit, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn compiled_vs_interpreted(c: &mut Criterion) {
    // The engine-acceptance benchmark: compiled execution with stride
    // kernels vs the interpreted full-scan path, both driving a 16-qubit
    // state vector through the same MBU modular-addition circuit (CDKPM at
    // n = 4: 14 circuit qubits, padded onto a 16-qubit state so every gate
    // sweeps 2^16 amplitudes on the scan path).
    let mut group = c.benchmark_group("simulators/compiled_vs_interpreted");
    let n = 4usize;
    let width = 16usize;
    let p = benchmark_modulus(n);
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).unwrap();
    let input = StateVector::index_with(&[
        (layout.x.qubits(), (p - 1) as u64),
        (layout.y.qubits(), (p - 2) as u64),
    ]);
    let lowered = CompiledCircuit::lower(&layout.circuit).unwrap();
    let optimised = CompiledCircuit::compile(&layout.circuit).unwrap();

    let mut seed = 0u64;
    group.bench_function("interpreted_scan", |b| {
        b.iter(|| {
            let mut sv = StateVector::basis(width, input)
                .unwrap()
                .with_kernel_mode(KernelMode::Scan);
            seed = seed.wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(sv.run(&layout.circuit, &mut rng).unwrap())
        })
    });

    let mut seed = 0u64;
    group.bench_function("interpreted_stride", |b| {
        b.iter(|| {
            let mut sv = StateVector::basis(width, input).unwrap();
            seed = seed.wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(sv.run(&layout.circuit, &mut rng).unwrap())
        })
    });

    let mut seed = 0u64;
    group.bench_function("compiled_stride", |b| {
        b.iter(|| {
            let mut sv = StateVector::basis(width, input).unwrap();
            seed = seed.wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(sv.run_compiled(&lowered, &mut rng).unwrap())
        })
    });

    let mut seed = 0u64;
    group.bench_function("compiled_passes", |b| {
        b.iter(|| {
            let mut sv = StateVector::basis(width, input).unwrap();
            seed = seed.wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(sv.run_compiled(&optimised, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn shot_runner_ensembles(c: &mut Criterion) {
    // The ensemble engine end to end: per-shot cost of seeded batched
    // execution, serial vs all-core.
    let mut group = c.benchmark_group("simulators/shot_runner");
    let n = 16usize;
    let p = benchmark_modulus(n);
    let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).unwrap();
    let shots = 256u64;
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    for (label, workers) in [("serial", 1usize), ("all_cores", threads)] {
        group.bench_with_input(
            BenchmarkId::new("shots256", label),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let ensemble = mbu_sim::ShotRunner::new(shots)
                        .with_threads(workers)
                        .run(&layout.circuit, || {
                            let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                            sim.set_value(layout.x.qubits(), p - 1).unwrap();
                            sim.set_value(layout.y.qubits(), p - 2).unwrap();
                            Box::new(sim)
                        })
                        .unwrap();
                    black_box(ensemble.mean().toffoli)
                })
            },
        );
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = tracker_vs_statevector, tracker_width_scaling, compiled_vs_interpreted,
        shot_runner_ensembles
}
criterion_main!(benches);
