//! The `static_verify` group: what the static-analysis gate costs.
//!
//! The verifier's pitch is "prove every pass safe without running it" —
//! which only holds up if the proof is cheap next to what it replaces.
//! This bench times the two layers on the paper's Table-1 workloads at
//! n = 64: the Layer-1 validator (`CompiledCircuit::verify`, the check
//! the `MBU_VERIFY=1` admission gate runs per program) and the Layer-2
//! symbolic equivalence proof against the plain lowering
//! (`check_equivalence`, the per-pass certification run). For scale, the
//! wall of one seeded sparse-backend *simulation* of the same circuit
//! rides along — the cost the symbolic proof avoids while covering every
//! input instead of one. Walls and verdicts go to `BENCH_verify.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mbu_arith::{resources::Table1Row, Uncompute};
use mbu_bench::{benchmark_modulus, build_row_circuit};
use mbu_circuit::CompiledCircuit;
use mbu_sim::{PhaseAccumulator, Simulator, SparseVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const N: usize = 64;
const SEED: u64 = 11;
/// Walls are the best of this many runs per row.
const RUNS: u32 = 3;

struct Row {
    row: &'static str,
    instrs: usize,
    validate_ms: f64,
    equivalence_ms: f64,
    simulate_ms: f64,
    verdict: String,
}

fn best_of<T>(runs: u32, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        let out = black_box(f());
        best = best.min(start.elapsed());
        last = Some(out);
    }
    (best, last.expect("runs >= 1"))
}

fn measure(name: &'static str, row: Table1Row) -> Row {
    let p = benchmark_modulus(N);
    let layout = build_row_circuit(row, Uncompute::Mbu, N, p).expect("tabulated row");
    let lowered = CompiledCircuit::lower(&layout.circuit).expect("lowers");
    let compiled = CompiledCircuit::compile(&layout.circuit).expect("compiles");

    let (validate_wall, checked) = best_of(RUNS, || compiled.verify());
    checked.expect("a fresh compile validates clean");

    let (equiv_wall, verdict) =
        best_of(RUNS, || mbu_circuit::check_equivalence(&lowered, &compiled));
    assert!(
        verdict.is_equal(),
        "{name}: the pass pipeline must prove equal, got {verdict}"
    );

    // One functional run on basis inputs: the dynamic cost that a
    // single-input differential test would pay per seed. Each row gets
    // its natural scaling backend — the sparse basis map for the ripple
    // rows, the Fourier-basis phase accumulator for Draper (whose QFT
    // fan-out would otherwise materialise 2^65 sparse entries).
    let (sim_wall, _) = best_of(RUNS, || {
        let nq = layout.circuit.num_qubits();
        let mut sim: Box<dyn Simulator> = match row {
            Table1Row::Draper | Table1Row::DraperExpect => {
                Box::new(PhaseAccumulator::zeros(nq).unwrap())
            }
            _ => Box::new(SparseVector::zeros(nq).unwrap()),
        };
        sim.set_value(layout.x.qubits(), p - 1).unwrap();
        sim.set_value(layout.y.qubits(), p / 2).unwrap();
        let mut rng = StdRng::seed_from_u64(SEED);
        sim.run_compiled(&compiled, &mut rng).unwrap()
    });

    eprintln!(
        "  {name:<12} {:>6} instrs: validate {validate_wall:.1?}, \
         equivalence {equiv_wall:.1?}, simulate {sim_wall:.1?}",
        compiled.instrs().len()
    );
    Row {
        row: name,
        instrs: compiled.instrs().len(),
        validate_ms: validate_wall.as_secs_f64() * 1e3,
        equivalence_ms: equiv_wall.as_secs_f64() * 1e3,
        simulate_ms: sim_wall.as_secs_f64() * 1e3,
        verdict: verdict.to_string(),
    }
}

fn write_trajectory(rows: &[Row]) {
    let mut json = String::from(
        "{\n  \"bench\": \"static_verify\",\n  \"workload\": \
         \"Table-1 MBU modadd rows at n=64: Layer-1 validate + Layer-2 \
         symbolic equivalence vs one sparse simulation\",\n  \
         \"units\": { \"wall\": \"ms\" },\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"row\": \"{}\", \"instrs\": {}, \"validate_ms\": {:.3}, \
             \"equivalence_ms\": {:.3}, \"simulate_ms\": {:.3}, \"verdict\": \"{}\" }}{}",
            r.row,
            r.instrs,
            r.validate_ms,
            r.equivalence_ms,
            r.simulate_ms,
            r.verdict,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verify.json");
    mbu_bench::trajectory::append_run(std::path::Path::new(path), &json)
        .expect("writable BENCH_verify.json");
    eprintln!("  appended run to {path}");
}

fn static_verify(c: &mut Criterion) {
    let rows = [
        ("vbe5", Table1Row::Vbe5),
        ("cdkpm", Table1Row::Cdkpm),
        ("gidney", Table1Row::Gidney),
        ("draper", Table1Row::Draper),
    ];
    let measured: Vec<Row> = rows.iter().map(|&(name, row)| measure(name, row)).collect();
    write_trajectory(&measured);

    // Keep a criterion handle so `cargo bench` filters behave uniformly
    // across the suite.
    let group = c.benchmark_group("static_verify");
    group.finish();
}

criterion_group!(benches, static_verify);
criterion_main!(benches);
