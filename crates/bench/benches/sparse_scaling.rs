//! The `sparse_scaling` group: the sparse basis-map backend on Table-1
//! workloads from toy widths to cryptographic ones.
//!
//! A dense statevector spends `16 · 2^q` bytes whatever the circuit does;
//! the paper's modular adders are permutation circuits that occupy a
//! handful of basis states, so the sparse backend's footprint is
//! `peak_occupied · (⌈q/64⌉·8 + 16)` bytes — constant-ish while the
//! register width grows by orders of magnitude. This bench runs the same
//! CDKPM MBU modular adder at n = 6 … 1024 (22 to 3076 qubits), checks
//! the modular sum on every run, and records the wall-time/peak-memory
//! trajectory to `BENCH_sparse.json` at the repo root so PR-over-PR
//! regressions are visible. The n = 6 row also runs the dense engine for
//! a direct wall-time comparison; every other width is dense-infeasible.

use criterion::{criterion_group, criterion_main, Criterion};
use mbu_arith::modular::{self, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_bench::benchmark_modulus;
use mbu_circuit::{CircuitBuilder, CompiledCircuit};
use mbu_sim::{Simulator, SparseVector, StateVector, MAX_STATEVECTOR_QUBITS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SIZES: [usize; 5] = [6, 16, 64, 256, 1024];
const SEED: u64 = 7;
/// Wall times are the best of this many runs — benches want the cost of
/// the work, not of the coldest cache.
const RUNS: u32 = 3;

struct Row {
    n: usize,
    qubits: usize,
    sparse_wall_ms: f64,
    peak_occupied: u64,
    sparse_peak_bytes: u64,
    dense_wall_ms: Option<f64>,
}

/// Bytes per occupied sparse entry at `qubits` width: the multi-word
/// basis key plus one complex amplitude.
fn entry_bytes(qubits: usize) -> u64 {
    (qubits.div_ceil(64) * 8 + 16) as u64
}

/// Runs the n-bit CDKPM MBU modadd on the sparse backend, asserts the
/// modular sum, and returns (qubits, best wall, occupancy peak).
fn run_sparse(n: usize) -> (usize, Duration, u64) {
    let p = benchmark_modulus(n);
    let (x, y) = (p - 1, p / 2 + 1);
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).expect("valid modadd");
    let nq = layout.circuit.num_qubits();
    let compiled = CompiledCircuit::compile(&layout.circuit).expect("compiles");

    let mut best = Duration::MAX;
    let mut peak = 0u64;
    for _ in 0..RUNS {
        let mut sp = SparseVector::zeros(nq).unwrap();
        sp.set_value(layout.x.qubits(), x).unwrap();
        sp.set_value(layout.y.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(SEED);
        let start = Instant::now();
        black_box(sp.run_compiled(&compiled, &mut rng).unwrap());
        best = best.min(start.elapsed());
        peak = sp.peak_amplitudes().expect("sparse reports a peak");
        let sum = (x + y) % p;
        for (i, q) in layout.y.qubits().iter().enumerate() {
            let want = i < 128 && (sum >> i) & 1 == 1;
            assert_eq!(sp.bit(*q).unwrap(), want, "n={n}: sum bit {i}");
        }
    }
    (nq, best, peak)
}

/// The dense reference at the same width, where it fits at all.
fn run_dense(n: usize) -> Option<Duration> {
    let p = benchmark_modulus(n);
    let (x, y) = (p - 1, p / 2 + 1);
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).expect("valid modadd");
    let nq = layout.circuit.num_qubits();
    if nq > MAX_STATEVECTOR_QUBITS {
        return None;
    }
    let compiled = CompiledCircuit::compile(&layout.circuit).expect("compiles");
    let mut best = Duration::MAX;
    for _ in 0..RUNS {
        let mut sv = StateVector::zeros(nq).unwrap();
        sv.set_value(layout.x.qubits(), x).unwrap();
        sv.set_value(layout.y.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(SEED);
        let start = Instant::now();
        black_box(sv.run_compiled(&compiled, &mut rng).unwrap());
        best = best.min(start.elapsed());
        assert_eq!(sv.value(layout.y.qubits()).unwrap(), (x + y) % p);
    }
    Some(best)
}

fn write_trajectory(rows: &[Row]) {
    let mut json = String::from(
        "{\n  \"bench\": \"sparse_scaling\",\n  \"workload\": \
         \"cdkpm-mbu modadd, x = p-1, y = p/2+1, seed 7\",\n  \
         \"units\": { \"wall\": \"ms\", \"memory\": \"bytes\" },\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        // `16 · 2^qubits` overflows anything printable past ~1020 qubits;
        // log2 keeps the dense footprint comparable at every width.
        let dense_log2_bytes = r.qubits + 4;
        let dense_wall = match r.dense_wall_ms {
            Some(ms) => format!("{ms:.3}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{ \"n\": {}, \"qubits\": {}, \"sparse_wall_ms\": {:.3}, \
             \"peak_occupied\": {}, \"sparse_peak_bytes\": {}, \
             \"dense_log2_bytes\": {}, \"dense_wall_ms\": {} }}{}",
            r.n,
            r.qubits,
            r.sparse_wall_ms,
            r.peak_occupied,
            r.sparse_peak_bytes,
            dense_log2_bytes,
            dense_wall,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse.json");
    mbu_bench::trajectory::append_run(std::path::Path::new(path), &json)
        .expect("writable BENCH_sparse.json");
    eprintln!("  appended run to {path}");
}

fn sparse_scaling(c: &mut Criterion) {
    let mut rows = Vec::new();
    for n in SIZES {
        let (nq, wall, peak) = run_sparse(n);
        let dense_wall_ms = run_dense(n).map(|d| d.as_secs_f64() * 1e3);
        eprintln!(
            "  cdkpm-mbu n={n}: {nq} qubits, sparse {wall:.0?} \
             (peak {peak} states, {} B){}",
            peak * entry_bytes(nq),
            match dense_wall_ms {
                Some(ms) => format!(", dense {ms:.1} ms"),
                None => ", dense infeasible".to_string(),
            }
        );
        rows.push(Row {
            n,
            qubits: nq,
            sparse_wall_ms: wall.as_secs_f64() * 1e3,
            peak_occupied: peak,
            sparse_peak_bytes: peak * entry_bytes(nq),
            dense_wall_ms,
        });
    }
    write_trajectory(&rows);

    // Criterion rows for the two headline widths, plus the worst-case
    // fan-out shape: a register of H's keeps the map genuinely sparse
    // only until measurement, so time a 16-qubit uniform superposition
    // too — the regime where the dense engine is the right tool.
    let mut group = c.benchmark_group("sparse_scaling");
    for n in [64usize, 1024] {
        group.bench_function(format!("modadd_cdkpm_mbu_{n}"), |b| {
            let p = benchmark_modulus(n);
            let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
            let layout = modular::modadd_circuit(&spec, n, p).unwrap();
            let nq = layout.circuit.num_qubits();
            let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();
            b.iter(|| {
                let mut sp = SparseVector::zeros(nq).unwrap();
                sp.set_value(layout.x.qubits(), p - 1).unwrap();
                sp.set_value(layout.y.qubits(), p / 2 + 1).unwrap();
                let mut rng = StdRng::seed_from_u64(SEED);
                black_box(sp.run_compiled(&compiled, &mut rng).unwrap())
            })
        });
    }
    group.bench_function("hadamard_fanout_16", |b| {
        let mut bld = CircuitBuilder::new();
        let q = bld.qreg("q", 16);
        for i in 0..16 {
            bld.h(q[i]);
        }
        let circuit = bld.finish();
        let compiled = CompiledCircuit::compile(&circuit).unwrap();
        b.iter(|| {
            let mut sp = SparseVector::zeros(16).unwrap();
            let mut rng = StdRng::seed_from_u64(SEED);
            black_box(sp.run_compiled(&compiled, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = sparse_scaling
}
criterion_main!(benches);
