//! The `mbu_reclamation` group: measurement-driven ancilla reclamation in
//! the compiled state-vector engine, measured on Table-1 modular adders.
//!
//! The workload is the paper's composition profile: `STAGES` sequential
//! modular additions with *fresh* garbage per stage
//! (`modadd_chain_circuit`). With MBU uncomputation every stage's garbage
//! is measured mid-circuit, the compiler's liveness pass emits `Drop`s,
//! and the reclaiming engine releases stage `k`'s ancillas before stage
//! `k+1`'s materialise — so the **peak amplitude count** (the new
//! peak-amplitude column printed below) stays at roughly one stage's
//! width, at most half the full `2^n` the non-reclaiming engine holds.
//! Unitary uncomputation measures nothing, gets no drops, and pays full
//! width even with reclamation enabled — Table 1's qubit savings appearing
//! as measured memory and time savings.
//!
//! The peak table also *asserts* the acceptance criteria: MBU peak with
//! reclamation ≤ ½ the peak without, with bit-identical shot aggregates
//! between the two engine configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::modular::{self, ModAdd, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_bench::benchmark_modulus;
use mbu_circuit::{CompiledCircuit, PassConfig};
use mbu_sim::{Ensemble, ShotRunner, Simulator, StateVector, MAX_STATEVECTOR_QUBITS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: usize = 3;
const STAGES: usize = 2;
const SHOTS: u64 = 16;

/// A Table-1 architecture row: label plus spec constructor.
type Row = (&'static str, fn(Uncompute) -> ModAddSpec);

/// A complete classical record and how many shots produced it.
type RecordCount = (Vec<Option<bool>>, u64);

fn rows() -> Vec<Row> {
    vec![
        ("cdkpm", ModAddSpec::cdkpm as fn(Uncompute) -> ModAddSpec),
        ("gidney", ModAddSpec::gidney),
        ("gidney_cdkpm", ModAddSpec::gidney_cdkpm),
    ]
}

fn chain(spec: &ModAddSpec, p: u128) -> ModAdd {
    modular::modadd_chain_circuit(spec, N, p, STAGES).expect("valid chain")
}

fn prepared(layout: &ModAdd, p: u128, reclaim: bool) -> StateVector {
    let mut sv = StateVector::zeros(layout.circuit.num_qubits())
        .unwrap()
        .with_reclamation(reclaim);
    sv.set_value(layout.x.qubits(), (p - 1) % p).unwrap();
    sv.set_value(layout.y.qubits(), (p / 2) % p).unwrap();
    sv
}

/// One compiled run; returns the engine's peak amplitude count.
fn peak_of(layout: &ModAdd, compiled: &CompiledCircuit, p: u128, reclaim: bool) -> usize {
    let mut sv = prepared(layout, p, reclaim);
    let mut rng = StdRng::seed_from_u64(11);
    sv.run_compiled(compiled, &mut rng).unwrap();
    sv.last_run_peak_amplitudes().unwrap()
}

/// The classical face of an ensemble (everything except the peak stat).
fn classical_view(e: &Ensemble) -> (u64, Vec<RecordCount>) {
    (
        e.shots(),
        e.record_frequencies()
            .map(|(r, n)| (r.to_vec(), n))
            .collect(),
    )
}

fn peak_amplitudes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mbu_reclamation/peak_amplitudes");
    let p = benchmark_modulus(N);
    eprintln!(
        "  peak-amplitude column ({STAGES}-stage Table-1 modadd chains at n = {N}, \
         fresh garbage per stage):"
    );
    for (label, spec_of) in rows() {
        let mbu = chain(&spec_of(Uncompute::Mbu), p);
        let unitary = chain(&spec_of(Uncompute::Unitary), p);
        let nq = mbu.circuit.num_qubits().max(unitary.circuit.num_qubits());
        if nq > MAX_STATEVECTOR_QUBITS {
            eprintln!("  {label}: skipped ({nq} qubits exceeds the state-vector limit)");
            continue;
        }
        let mbu_compiled = CompiledCircuit::compile(&mbu.circuit).unwrap();
        let unitary_compiled = CompiledCircuit::compile(&unitary.circuit).unwrap();
        assert!(mbu_compiled.reclaims_qubits(), "MBU chains measure garbage");
        // Note: Gidney-family rows reclaim some ancillas even in the
        // "unitary" configuration — Gidney's AND uncomputation is itself
        // measurement-based. The pure-unitary (VBE/CDKPM) rows get no
        // drops at all.

        // The non-reclaiming engine's peak is its untouched array —
        // `2^n` by construction (it reports `amps.len()`); measure it
        // end-to-end only on rows narrow enough to afford the full-width
        // sweep, and take the definitional value for the wide ones.
        let full_sweep = mbu.circuit.num_qubits() <= 20;
        let mbu_on = peak_of(&mbu, &mbu_compiled, p, true);
        let mbu_off = if full_sweep {
            peak_of(&mbu, &mbu_compiled, p, false)
        } else {
            1usize << mbu.circuit.num_qubits()
        };
        let uni_on = peak_of(&unitary, &unitary_compiled, p, true);
        eprintln!(
            "  {label}: mbu+reclaim {mbu_on} amps | mbu w/o reclaim {mbu_off} | \
             unitary {uni_on} (of 2^{})",
            mbu.circuit.num_qubits()
        );
        // Acceptance: at most half the amplitudes at peak…
        assert!(
            mbu_on * 2 <= mbu_off,
            "{label}: reclamation must at least halve the peak ({mbu_on} vs {mbu_off})"
        );
        // …with bit-identical shot aggregates between the configurations
        // (checked on the rows where the full-width ensemble is
        // affordable; tests/reclamation.rs property-checks the rest).
        if full_sweep {
            let runner = ShotRunner::new(SHOTS).with_passes(PassConfig::default());
            let on = runner
                .run(&mbu.circuit, || Box::new(prepared(&mbu, p, true)))
                .unwrap();
            let off = runner
                .run(&mbu.circuit, || Box::new(prepared(&mbu, p, false)))
                .unwrap();
            assert_eq!(
                classical_view(&on),
                classical_view(&off),
                "{label}: aggregates must be bit-identical"
            );
            assert_eq!(on.peak_amplitudes(), Some(mbu_on as u64));
        }

        // Time the measured configuration so the group still reports a
        // per-row number.
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::new(label, "mbu_reclaim"), &mbu, |b, layout| {
            b.iter(|| {
                let mut sv = prepared(layout, p, true);
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sv.run_compiled(&mbu_compiled, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn runtime_on_vs_off(c: &mut Criterion) {
    // The time side of the savings: every gate after a drop sweeps a
    // smaller array, so the reclaiming engine is faster end to end on the
    // same compiled program.
    let mut group = c.benchmark_group("mbu_reclamation/runtime");
    let p = benchmark_modulus(N);
    let layout = chain(&ModAddSpec::cdkpm(Uncompute::Mbu), p);
    let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();
    for (tag, reclaim) in [("reclaim_on", true), ("reclaim_off", false)] {
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(tag), &reclaim, |b, &reclaim| {
            b.iter(|| {
                let mut sv = prepared(&layout, p, reclaim);
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sv.run_compiled(&compiled, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = peak_amplitudes, runtime_on_vs_off
}
criterion_main!(benches);
