//! Criterion bench for Table 5: controlled addition by a constant
//! (Props 2.19–2.20), the workhorse of modular multiplication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::{adders, AdderKind};
use mbu_sim::BasisTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5/synthesis");
    let n = 32usize;
    let a = 0xDEAD_BEEFu128;
    for kind in [
        AdderKind::Vbe,
        AdderKind::Cdkpm,
        AdderKind::Gidney,
        AdderKind::Draper,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(adders::controlled_const_adder(kind, n, a).unwrap()))
        });
    }
    group.finish();
}

fn simulation_both_branches(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5/simulation");
    let n = 32usize;
    let a = 0xDEAD_BEEFu128;
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        let ca = adders::controlled_const_adder(kind, n, a).unwrap();
        for (tag, ctrl) in [("off", false), ("on", true)] {
            let mut seed = 0u64;
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), tag),
                &(ca.clone(), ctrl),
                |b, (ca, ctrl)| {
                    b.iter(|| {
                        let mut sim = BasisTracker::zeros(ca.circuit.num_qubits());
                        sim.set_bit(ca.control, *ctrl).unwrap();
                        sim.set_value(ca.y.qubits(), 0x0BAD_F00D).unwrap();
                        seed = seed.wrapping_add(1);
                        let mut rng = StdRng::seed_from_u64(seed);
                        black_box(sim.run(&ca.circuit, &mut rng).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = synthesis, simulation_both_branches
}
criterion_main!(benches);
