//! The `fusion_parallel` group: gate fusion + chunk-parallel amplitude
//! kernels on a deep single shot — the large-single-shot workload the
//! serial engine could not scale.
//!
//! The workload is a ≥20-qubit MBU modular-adder chain (the acceptance
//! shape): one seeded `run_compiled` per iteration, comparing
//!
//! * `serial_unfused` — the pre-fusion engine: one kernel sweep per gate,
//!   one thread, per-amplitude scalar enumeration;
//! * `fused_serial_scalar` — the fusion pass alone: dense blocks, one
//!   sweep per block, still scalar (the `MBU_SIMD=0` path);
//! * `fused_serial_simd` — fused blocks through the SoA lane kernels;
//! * `fused_parallel_8` — SoA fused blocks with 8 amplitude lanes
//!   splitting every sweep across the persistent worker pool.
//!
//! The scalar-vs-SIMD A/B at equal fusion/lane settings is appended as a
//! trajectory row to `BENCH_fusion_parallel.json` at the repo root.
//!
//! Before timing, the harness *asserts* the equivalence contract: the
//! fused-parallel run produces bit-identical amplitudes, classical records
//! and executed counts to the serial unfused run on the same seed. The
//! timing rows then quantify the win; a headline line prints the measured
//! serial ÷ fused-parallel speedup.
//!
//! Reclamation is disabled for the timed rows so the amplitude array stays
//! at full `2^n` width — the deep-shot regime amplitude parallelism
//! targets; `mbu_reclamation.rs` owns the compacted-array story.

use criterion::{criterion_group, criterion_main, Criterion};
use mbu_arith::modular::{self, ModAdd, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_bench::benchmark_modulus;
use mbu_circuit::{CompiledCircuit, PassConfig};
use mbu_sim::{Simulator, StateVector, MAX_STATEVECTOR_QUBITS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

const STAGES: usize = 2;
const MIN_QUBITS: usize = 20;
const AMP_LANES: usize = 8;

/// The smallest Table-1 CDKPM MBU chain with at least [`MIN_QUBITS`]
/// qubits (`None` if it would not fit the state-vector limit).
fn acceptance_chain() -> Option<(ModAdd, u128)> {
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    // Widths with a tabulated benchmark modulus, smallest first.
    for n in [3usize, 4, 6, 8, 10, 12] {
        let p = benchmark_modulus(n);
        let chain = modular::modadd_chain_circuit(&spec, n, p, STAGES).expect("valid chain");
        let nq = chain.circuit.num_qubits();
        if nq > MAX_STATEVECTOR_QUBITS {
            return None;
        }
        if nq >= MIN_QUBITS {
            return Some((chain, p));
        }
    }
    None
}

fn unfused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 0,
        reclaim_dead_qubits: false,
        ..PassConfig::default()
    }
}

fn fused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 3,
        reclaim_dead_qubits: false,
        ..PassConfig::default()
    }
}

fn prepared(chain: &ModAdd, p: u128, amp_threads: usize, simd: bool) -> StateVector {
    let mut sv = StateVector::zeros(chain.circuit.num_qubits())
        .unwrap()
        .with_reclamation(false)
        .with_amp_threads(amp_threads)
        .with_simd(simd);
    sv.set_value(chain.x.qubits(), (p - 1) % p).unwrap();
    sv.set_value(chain.y.qubits(), (p / 2) % p).unwrap();
    sv
}

/// One full seeded shot; returns wall-clock time.
fn one_shot(
    chain: &ModAdd,
    compiled: &CompiledCircuit,
    p: u128,
    lanes: usize,
    simd: bool,
    seed: u64,
) -> Duration {
    let mut sv = prepared(chain, p, lanes, simd);
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    black_box(sv.run_compiled(compiled, &mut rng).unwrap());
    start.elapsed()
}

fn single_shot_fusion_parallel(c: &mut Criterion) {
    let Some((chain, p)) = acceptance_chain() else {
        eprintln!("  fusion_parallel: no ≥{MIN_QUBITS}-qubit chain fits the state vector; skipped");
        return;
    };
    let nq = chain.circuit.num_qubits();
    let unfused = CompiledCircuit::with_config(&chain.circuit, &unfused_passes()).unwrap();
    let fused = CompiledCircuit::with_config(&chain.circuit, &fused_passes()).unwrap();
    eprintln!(
        "  {STAGES}-stage MBU modadd chain, {nq} qubits (2^{nq} amplitudes): {}",
        fused.stats()
    );
    assert!(fused.stats().fused_blocks > 0, "chain must fuse");

    // Equivalence contract before any timing: bit-identical everything,
    // across both the fusion pass and the SoA/SIMD enumeration switch.
    let mut base = prepared(&chain, p, 1, false);
    let mut rng = StdRng::seed_from_u64(7);
    let ex_base = base.run_compiled(&unfused, &mut rng).unwrap();
    let mut fast = prepared(&chain, p, AMP_LANES, true);
    let mut rng = StdRng::seed_from_u64(7);
    let ex_fast = fast.run_compiled(&fused, &mut rng).unwrap();
    assert_eq!(ex_base, ex_fast, "records and counts must be identical");
    for (i, (a, b)) in base.amplitudes().iter().zip(fast.amplitudes()).enumerate() {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "re of amp {i}");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "im of amp {i}");
    }
    drop((base, fast));

    // Headline: measured speedup over a few seeded shots. `scalar` is the
    // pre-SoA engine (MBU_SIMD=0 equivalent): per-amplitude enumeration,
    // no vector kernels — the A side of this PR's trajectory row.
    let mut serial_total = Duration::ZERO;
    let mut scalar_total = Duration::ZERO;
    let mut simd_total = Duration::ZERO;
    let mut parallel_total = Duration::ZERO;
    for seed in 0..3u64 {
        serial_total += one_shot(&chain, &unfused, p, 1, false, seed);
        scalar_total += one_shot(&chain, &fused, p, AMP_LANES, false, seed);
        simd_total += one_shot(&chain, &fused, p, 1, true, seed);
        parallel_total += one_shot(&chain, &fused, p, AMP_LANES, true, seed);
    }
    let simd_speedup = scalar_total.as_secs_f64() / parallel_total.as_secs_f64().max(1e-9);
    let speedup_vs_serial = serial_total.as_secs_f64() / parallel_total.as_secs_f64().max(1e-9);
    eprintln!(
        "  single-shot serial {:.0?} vs fused+{AMP_LANES}-lane scalar {:.0?} vs \
         fused+{AMP_LANES}-lane simd {:.0?}: {simd_speedup:.2}x from the SoA kernels, \
         {speedup_vs_serial:.2}x end to end",
        serial_total / 3,
        scalar_total / 3,
        parallel_total / 3,
    );

    // Machine-readable trajectory row: the scalar-vs-SIMD A/B at equal
    // fusion and lane settings, so the vectorization win (or a regression
    // of it) is visible PR-over-PR.
    let json = format!(
        "{{\n  \"bench\": \"fusion_parallel\",\n  \
         \"workload\": \"{STAGES}-stage cdkpm-mbu modadd chain, single shot, mean of 3 seeds\",\n  \
         \"units\": {{ \"wall\": \"ms\" }},\n  \"rows\": [\n    \
         {{ \"qubits\": {nq}, \"amp_lanes\": {AMP_LANES}, \
         \"serial_unfused_wall_ms\": {serial:.3}, \
         \"fused_scalar_wall_ms\": {scalar:.3}, \
         \"fused_simd_serial_wall_ms\": {simd:.3}, \
         \"fused_simd_parallel_wall_ms\": {parallel:.3}, \
         \"simd_speedup\": {simd_speedup:.2}, \
         \"speedup_vs_serial\": {speedup_vs_serial:.2} }}\n  ]\n}}",
        serial = serial_total.as_secs_f64() / 3.0 * 1e3,
        scalar = scalar_total.as_secs_f64() / 3.0 * 1e3,
        simd = simd_total.as_secs_f64() / 3.0 * 1e3,
        parallel = parallel_total.as_secs_f64() / 3.0 * 1e3,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fusion_parallel.json"
    );
    mbu_bench::trajectory::append_run(std::path::Path::new(path), &json)
        .expect("writable BENCH_fusion_parallel.json");
    eprintln!("  appended run to {path}");

    let mut group = c.benchmark_group("fusion_parallel/single_shot");
    let rows: [(&str, &CompiledCircuit, usize, bool); 4] = [
        ("serial_unfused", &unfused, 1, false),
        ("fused_serial_scalar", &fused, 1, false),
        ("fused_serial_simd", &fused, 1, true),
        ("fused_parallel_8", &fused, AMP_LANES, true),
    ];
    for (label, compiled, lanes, simd) in rows {
        let mut seed = 100u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let mut sv = prepared(&chain, p, lanes, simd);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sv.run_compiled(compiled, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = single_shot_fusion_parallel
}
criterion_main!(benches);
