//! Criterion bench for Table 3: controlled adders (Thm 2.12, Prop 2.11,
//! Thm 2.14, Cor 2.10) — synthesis and simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::{adders, AdderKind};
use mbu_sim::BasisTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/synthesis");
    let n = 32usize;
    for kind in [
        AdderKind::Vbe,
        AdderKind::Cdkpm,
        AdderKind::Gidney,
        AdderKind::Draper,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(adders::controlled_adder(kind, n).unwrap()))
        });
    }
    group.finish();
}

fn simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/simulation");
    let n = 32usize;
    for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
        let ca = adders::controlled_adder(kind, n).unwrap();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(kind), &ca, |b, ca| {
            b.iter(|| {
                let mut sim = BasisTracker::zeros(ca.circuit.num_qubits());
                sim.set_bit(ca.control, true).unwrap();
                sim.set_value(ca.x.qubits(), 0xFFFF_FFFF).unwrap();
                sim.set_value(ca.y.qubits(), 0xF0F0_F0F0).unwrap();
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sim.run(&ca.circuit, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = synthesis, simulation
}
criterion_main!(benches);
