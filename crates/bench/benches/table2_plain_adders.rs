//! Criterion bench for Table 2: plain adders of all four families —
//! synthesis time and basis-tracker simulation throughput across widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::{adders, AdderKind};
use mbu_sim::BasisTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/synthesis");
    for kind in [
        AdderKind::Vbe,
        AdderKind::Cdkpm,
        AdderKind::Gidney,
        AdderKind::Draper,
    ] {
        for n in [16usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), n),
                &(kind, n),
                |b, &(kind, n)| b.iter(|| black_box(adders::plain_adder(kind, n).unwrap())),
            );
        }
    }
    group.finish();
}

fn simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/simulation");
    let n = 64usize;
    let x = 0xDEAD_BEEF_CAFE_F00Du128 % (1 << 63);
    let y = 0x1234_5678_9ABC_DEF0u128;
    for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
        let adder = adders::plain_adder(kind, n).unwrap();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(kind), &adder, |b, adder| {
            b.iter(|| {
                let mut sim = BasisTracker::zeros(adder.circuit.num_qubits());
                sim.set_value(adder.x.qubits(), x % (1 << n)).unwrap();
                sim.set_value(adder.y.qubits(), y).unwrap();
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sim.run(&adder.circuit, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = synthesis, simulation
}
criterion_main!(benches);
