//! Criterion bench for the headline claim: MBU's effect on *simulated
//! wall-clock per modular addition*, complementing the gate-count tables.
//!
//! Because MBU skips the uncomputation comparator half the time, the
//! average simulated run is measurably cheaper — the same effect a fault-
//! tolerant machine would see in expected T-gate consumption. Also includes
//! the ablation across architecture choices (the Thm 3.6 trade) and the
//! two-sided comparator (Thm 4.13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::modular::ModAddSpec;
use mbu_arith::resources::Table1Row;
use mbu_arith::{modular, two_sided, AdderKind, Uncompute};
use mbu_bench::{benchmark_modulus, spec_for_row};
use mbu_sim::BasisTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn mbu_on_off(c: &mut Criterion) {
    let mut group = c.benchmark_group("headline/modadd_sim");
    let n = 48usize;
    let p = benchmark_modulus(n);
    for row in [Table1Row::Cdkpm, Table1Row::Gidney, Table1Row::CdkpmGidney] {
        for (unc, tag) in [(Uncompute::Unitary, "unitary"), (Uncompute::Mbu, "mbu")] {
            let spec = spec_for_row(row, unc).unwrap();
            let layout = modular::modadd_circuit(&spec, n, p).unwrap();
            let mut seed = 0u64;
            group.bench_with_input(BenchmarkId::new(row.label(), tag), &layout, |b, layout| {
                b.iter(|| {
                    let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                    sim.set_value(layout.x.qubits(), p - 2).unwrap();
                    sim.set_value(layout.y.qubits(), p / 3).unwrap();
                    seed = seed.wrapping_add(1);
                    let mut rng = StdRng::seed_from_u64(seed);
                    black_box(sim.run(&layout.circuit, &mut rng).unwrap())
                })
            });
        }
    }
    group.finish();
}

fn architecture_ablation(c: &mut Criterion) {
    // Theorem 3.6's space-time trade, as a synthesis ablation: swap each
    // slot of the hybrid back to Gidney and observe the cost move.
    let mut group = c.benchmark_group("headline/slot_ablation");
    let n = 32usize;
    let p = benchmark_modulus(n);
    let hybrid = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
    let variants: [(&str, ModAddSpec); 4] = [
        ("hybrid(thm3.6)", hybrid),
        (
            "comp_p->gidney",
            ModAddSpec {
                comp_p: AdderKind::Gidney,
                ..hybrid
            },
        ),
        (
            "sub_p->gidney",
            ModAddSpec {
                sub_p: AdderKind::Gidney,
                ..hybrid
            },
        ),
        (
            "comp_back->cdkpm",
            ModAddSpec {
                comp_back: AdderKind::Cdkpm,
                ..hybrid
            },
        ),
    ];
    for (tag, spec) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(tag), &spec, |b, spec| {
            b.iter(|| black_box(modular::modadd_circuit(spec, n, p).unwrap()))
        });
    }
    group.finish();
}

fn two_sided_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("headline/two_sided");
    let n = 32usize;
    for (unc, tag) in [(Uncompute::Unitary, "unitary"), (Uncompute::Mbu, "mbu")] {
        let layout = two_sided::in_range_circuit(AdderKind::Cdkpm, unc, n).unwrap();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(tag), &layout, |b, layout| {
            b.iter(|| {
                let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                sim.set_value(layout.x.qubits(), 1_000_000).unwrap();
                sim.set_value(layout.y.qubits(), 500).unwrap();
                sim.set_value(layout.z.qubits(), 2_000_000_000).unwrap();
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sim.run(&layout.circuit, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = mbu_on_off, architecture_ablation, two_sided_comparison
}
criterion_main!(benches);
