//! The `phase_shootout` group: all four plain-adder families on the
//! phase-accumulator backend versus the sparse basis map.
//!
//! The Toffoli-family adders (VBE / CDKPM / Gidney) are permutation
//! circuits — O(occupied) on either backend, a fair fight. The Draper
//! adder is the wall: its QFT interior fans the sparse map out to `2^n`
//! Fourier-basis entries, so past toy widths the map is exponential
//! while the phase backend's dyadic accumulators keep occupancy at
//! exactly 1 and execute each of the ~n²/2 controlled rotations as one
//! exact angle addition. This bench runs `|x⟩|y⟩ ↦ |x⟩|x+y⟩` for every
//! family at n = 8 … 1024, checks the sum bit-for-bit on every run, and
//! appends the wall-time/occupancy trajectory to `BENCH_phase.json` at
//! the repo root. Circuits run interpreted on both backends — identical
//! treatment, and at millions of rotations the compile passes would
//! otherwise dominate the measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use mbu_arith::{adders, AdderKind};
use mbu_sim::{PhaseAccumulator, Simulator, SparseVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SIZES: [usize; 4] = [8, 64, 256, 1024];
const SEED: u64 = 7;
/// Wall times are the best of this many runs.
const RUNS: u32 = 3;
/// The sparse map holds `2^(n+1)` Fourier-basis entries inside a Draper
/// adder at width n; past this width the sparse leg is recorded as
/// infeasible rather than simulated (n = 16 already means 131k entries
/// per rotation sweep).
const MAX_SPARSE_DRAPER: usize = 8;

const FAMILIES: [AdderKind; 4] = [
    AdderKind::Vbe,
    AdderKind::Cdkpm,
    AdderKind::Gidney,
    AdderKind::Draper,
];

struct Row {
    family: &'static str,
    n: usize,
    qubits: usize,
    phase_wall_ms: f64,
    phase_peak: u64,
    sparse_wall_ms: Option<f64>,
    sparse_peak: Option<u64>,
}

fn family_tag(kind: AdderKind) -> &'static str {
    match kind {
        AdderKind::Vbe => "vbe",
        AdderKind::Cdkpm => "cdkpm",
        AdderKind::Gidney => "gidney",
        AdderKind::Draper => "draper",
    }
}

/// Adder inputs at width `n`, kept under 128 bits so the classical
/// reference sum stays in `u128` (registers may be far wider).
fn inputs(n: usize) -> (u128, u128) {
    let bits = n.min(126);
    let x = (1u128 << bits) - 5;
    let y = (1u128 << (bits - 1)) + 3;
    (x, y)
}

/// Runs `layout`'s circuit on `sim`, timing the run and asserting the
/// plain-adder sum bit by bit; returns (best wall, occupancy peak).
fn time_adder(
    layout: &adders::PlainAdder,
    mut fresh: impl FnMut() -> Box<dyn Simulator>,
) -> (Duration, u64) {
    let n = layout.x.qubits().len();
    let (x, y) = inputs(n);
    let want = x + y;
    let mut best = Duration::MAX;
    let mut peak = 0u64;
    for _ in 0..RUNS {
        let mut sim = fresh();
        sim.set_value(layout.x.qubits(), x).unwrap();
        sim.set_value(layout.y.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(SEED);
        let start = Instant::now();
        black_box(sim.run(&layout.circuit, &mut rng).unwrap());
        best = best.min(start.elapsed());
        peak = sim.occupancy_peak().expect("both backends report a peak");
        for (i, q) in layout.y.qubits().iter().enumerate() {
            let w = i < 128 && (want >> i) & 1 == 1;
            assert_eq!(sim.bit(*q).unwrap(), w, "n={n}: sum bit {i}");
        }
    }
    (best, peak)
}

fn write_trajectory(rows: &[Row]) {
    let mut json = String::from(
        "{\n  \"bench\": \"phase_shootout\",\n  \"workload\": \
         \"plain adder |x>|y> -> |x>|x+y>, four families, phase vs sparse, \
         interpreted, seed 7\",\n  \
         \"units\": { \"wall\": \"ms\", \"peak\": \"occupied branches\" },\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let sparse_wall = match r.sparse_wall_ms {
            Some(ms) => format!("{ms:.3}"),
            None => "null".to_string(),
        };
        let sparse_peak = match r.sparse_peak {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{ \"family\": \"{}\", \"n\": {}, \"qubits\": {}, \
             \"phase_wall_ms\": {:.3}, \"phase_peak\": {}, \
             \"sparse_wall_ms\": {}, \"sparse_peak\": {} }}{}",
            r.family,
            r.n,
            r.qubits,
            r.phase_wall_ms,
            r.phase_peak,
            sparse_wall,
            sparse_peak,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase.json");
    mbu_bench::trajectory::append_run(std::path::Path::new(path), &json)
        .expect("writable BENCH_phase.json");
    eprintln!("  appended run to {path}");
}

fn phase_shootout(c: &mut Criterion) {
    let mut rows = Vec::new();
    for n in SIZES {
        for kind in FAMILIES {
            let layout = adders::plain_adder(kind, n).expect("valid adder");
            let nq = layout.circuit.num_qubits();
            let (phase_wall, phase_peak) = time_adder(&layout, || {
                Box::new(PhaseAccumulator::zeros(nq).unwrap()) as Box<dyn Simulator>
            });
            let sparse = (kind != AdderKind::Draper || n <= MAX_SPARSE_DRAPER).then(|| {
                time_adder(&layout, || {
                    Box::new(SparseVector::zeros(nq).unwrap()) as Box<dyn Simulator>
                })
            });
            let tag = family_tag(kind);
            eprintln!(
                "  {tag} n={n}: {nq} qubits, phase {phase_wall:.0?} \
                 (peak {phase_peak}){}",
                match sparse {
                    Some((w, p)) => format!(", sparse {w:.0?} (peak {p})"),
                    None => ", sparse infeasible (2^n Fourier fan-out)".to_string(),
                }
            );
            rows.push(Row {
                family: tag,
                n,
                qubits: nq,
                phase_wall_ms: phase_wall.as_secs_f64() * 1e3,
                phase_peak,
                sparse_wall_ms: sparse.map(|(w, _)| w.as_secs_f64() * 1e3),
                sparse_peak: sparse.map(|(_, p)| p),
            });
        }
    }
    write_trajectory(&rows);

    // Criterion rows for the headline wall: the Draper adder where only
    // the phase backend is in the race, plus the n = 8 head-to-head.
    let mut group = c.benchmark_group("phase_shootout");
    for n in [8usize, 256] {
        let layout = adders::plain_adder(AdderKind::Draper, n).unwrap();
        let nq = layout.circuit.num_qubits();
        let (x, y) = inputs(n);
        group.bench_function(format!("draper_phase_{n}"), |b| {
            b.iter(|| {
                let mut sim = PhaseAccumulator::zeros(nq).unwrap();
                sim.set_value(layout.x.qubits(), x).unwrap();
                sim.set_value(layout.y.qubits(), y).unwrap();
                let mut rng = StdRng::seed_from_u64(SEED);
                black_box(Simulator::run(&mut sim, &layout.circuit, &mut rng).unwrap())
            })
        });
    }
    let layout = adders::plain_adder(AdderKind::Draper, 8).unwrap();
    let nq = layout.circuit.num_qubits();
    let (x, y) = inputs(8);
    group.bench_function("draper_sparse_8", |b| {
        b.iter(|| {
            let mut sim = SparseVector::zeros(nq).unwrap();
            sim.set_value(layout.x.qubits(), x).unwrap();
            sim.set_value(layout.y.qubits(), y).unwrap();
            let mut rng = StdRng::seed_from_u64(SEED);
            black_box(Simulator::run(&mut sim, &layout.circuit, &mut rng).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, phase_shootout);
criterion_main!(benches);
