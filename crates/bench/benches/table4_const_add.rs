//! Criterion bench for Table 4: addition by a classical constant — the
//! LOAD-based construction (Prop 2.16) vs Draper's ancilla-free merged
//! rotations (Prop 2.17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbu_arith::{adders, AdderKind};
use mbu_sim::BasisTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/synthesis");
    let n = 32usize;
    let a = 0xDEAD_BEEFu128;
    for kind in [
        AdderKind::Vbe,
        AdderKind::Cdkpm,
        AdderKind::Gidney,
        AdderKind::Draper,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(adders::const_adder(kind, n, a).unwrap()))
        });
    }
    group.finish();
}

fn hamming_weight_sweep(c: &mut Criterion) {
    // The CNOT/X costs scale with |a|; sweep sparse → dense constants.
    let mut group = c.benchmark_group("table4/hamming_weight");
    let n = 32usize;
    for (tag, a) in [
        ("sparse|a|=2", 0x8000_0001u128),
        ("medium|a|=16", 0x5555_5555u128 & 0xFFFF_FFFF),
        ("dense|a|=31", 0xFFFF_FFFEu128),
    ] {
        let ca = adders::const_adder(AdderKind::Cdkpm, n, a).unwrap();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(tag), &ca, |b, ca| {
            b.iter(|| {
                let mut sim = BasisTracker::zeros(ca.circuit.num_qubits());
                sim.set_value(ca.y.qubits(), 0x0F0F_0F0F).unwrap();
                seed = seed.wrapping_add(1);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(sim.run(&ca.circuit, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = synthesis, hamming_weight_sweep
}
criterion_main!(benches);
