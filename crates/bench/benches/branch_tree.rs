//! The `branch_tree` group: branch-sharing ensembles vs per-shot Monte
//! Carlo on a two-stage MBU modular-adder chain (the acceptance shape,
//! ≥ 20 qubits).
//!
//! The paper's Table-1 workloads are long deterministic arithmetic blocks
//! with a handful of mid-circuit measurements: an N-shot Monte-Carlo
//! ensemble re-executes the identical deterministic prefix N times, while
//! the branch tree executes each unique measurement history exactly once
//! and replays only cheap RNG draws per shot. On a CDKPM MBU chain (one
//! flag fork per stage → ≤ 4 histories) the tree costs a few shot-
//! equivalents however many shots are requested, so the headline speedup
//! over a 1000-shot ensemble is roughly `1000 / leaves`.
//!
//! Before timing, the harness *asserts* the equivalence contract:
//!
//! * the sampled branch ensemble is bit-identical to the `ShotRunner`'s
//!   classical aggregates on the same master seed;
//! * the exact distribution's expected Toffoli count equals the analytic
//!   `expected_counts` golden.
//!
//! The timed rows then measure one tree build + exact distribution, one
//! tree build + 1000-shot replay (gate-at-a-time and with the fusion
//! pass on — unitary segments as single-sweep dense/permutation blocks
//! through `Simulator::apply_fused`), and a small per-shot ensemble whose
//! per-shot cost extrapolates (exactly linearly — shots are independent)
//! to the 1000-shot Monte-Carlo baseline the headline reports.

use criterion::{criterion_group, criterion_main, Criterion};
use mbu_arith::modular::{self, ModAdd, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_bench::benchmark_modulus;
use mbu_circuit::PassConfig;
use mbu_sim::{
    BranchEnsemble, Ensemble, ShotRunner, Simulator, StateVector, MAX_STATEVECTOR_QUBITS,
};
use std::hint::black_box;
use std::time::{Duration, Instant};

const STAGES: usize = 2;
const MIN_QUBITS: usize = 20;
const SHOTS: u64 = 1000;
/// Shots actually executed for the Monte-Carlo baseline row; the headline
/// extrapolates linearly (shots are independent and identically costed).
const MC_SAMPLE_SHOTS: u64 = 8;

/// Gate fusion alone — every other peephole pass off, so the compiled
/// program is bit-identical to the lowered one in amplitudes *and*
/// executed-gate counts (fusion tallies constituents; cancellation
/// would not). The fused leg times the branch engine's single-sweep
/// `apply_fused` path, permutation blocks included.
fn fusion_only_passes() -> PassConfig {
    PassConfig {
        cancel_self_inverse: false,
        merge_rotations: false,
        remove_identities: false,
        phase_dead_before_measure: false,
        reclaim_dead_qubits: false,
        fuse_max_qubits: 3,
    }
}

/// The smallest Table-1 CDKPM MBU chain with at least [`MIN_QUBITS`]
/// qubits (`None` if it would not fit the state-vector limit).
fn acceptance_chain() -> Option<(ModAdd, u128)> {
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    for n in [3usize, 4, 6, 8, 10, 12] {
        let p = benchmark_modulus(n);
        let chain = modular::modadd_chain_circuit(&spec, n, p, STAGES).expect("valid chain");
        let nq = chain.circuit.num_qubits();
        if nq > MAX_STATEVECTOR_QUBITS {
            return None;
        }
        if nq >= MIN_QUBITS {
            return Some((chain, p));
        }
    }
    None
}

fn factory(
    chain: &ModAdd,
    p: u128,
    simd: bool,
) -> impl Fn() -> Box<dyn Simulator + Send> + Sync + '_ {
    let nq = chain.circuit.num_qubits();
    move || {
        let mut sv = StateVector::zeros(nq).unwrap().with_simd(simd);
        sv.set_value(chain.x.qubits(), (p - 1) % p).unwrap();
        sv.set_value(chain.y.qubits(), (p / 2) % p).unwrap();
        Box::new(sv) as Box<dyn Simulator + Send>
    }
}

/// The classical face of an ensemble (peak-memory stats excluded — the
/// branch engine deliberately reports none).
fn classical_view(e: &Ensemble) -> impl PartialEq + std::fmt::Debug {
    let records: Vec<(Vec<Option<bool>>, u64)> = e
        .record_frequencies()
        .map(|(r, n)| (r.to_vec(), n))
        .collect();
    (e.shots(), e.mean(), e.variance(), records)
}

fn branch_tree_vs_monte_carlo(c: &mut Criterion) {
    let Some((chain, p)) = acceptance_chain() else {
        eprintln!("  branch_tree: no ≥{MIN_QUBITS}-qubit chain fits the state vector; skipped");
        return;
    };
    let nq = chain.circuit.num_qubits();
    let make = factory(&chain, p, true);
    let make_scalar = factory(&chain, p, false);

    // Equivalence contract before any timing.
    let small_branch = BranchEnsemble::new(MC_SAMPLE_SHOTS)
        .run(&chain.circuit, &make)
        .unwrap();
    let small_mc = ShotRunner::new(MC_SAMPLE_SHOTS)
        .run(&chain.circuit, || -> Box<dyn Simulator> { make() })
        .unwrap();
    assert_eq!(
        classical_view(&small_branch),
        classical_view(&small_mc),
        "sampled branch trees must be bit-identical to per-shot execution"
    );
    let small_fused = BranchEnsemble::new(MC_SAMPLE_SHOTS)
        .with_passes(fusion_only_passes())
        .run(&chain.circuit, &make)
        .unwrap();
    assert_eq!(
        classical_view(&small_branch),
        classical_view(&small_fused),
        "fused branch trees must be bit-identical to gate-at-a-time trees"
    );
    let dist = BranchEnsemble::new(0)
        .distribution(&chain.circuit, &make)
        .unwrap();
    let analytic = chain.circuit.expected_counts().toffoli;
    assert!(
        (dist.mean_counts().toffoli - analytic).abs() < 1e-6,
        "exact mode reproduces the analytic expectation"
    );
    eprintln!(
        "  {STAGES}-stage CDKPM MBU chain, {nq} qubits: {} fork(s), {} leaves",
        dist.fork_nodes(),
        dist.num_leaves()
    );

    // Headline: measured tree time vs (extrapolated) 1000-shot MC time.
    // Each leg takes the best of a few runs: single measurements on a
    // shared box can be several times the true cost, and the minimum is
    // the robust statistic for wall-clock timing noise that is purely
    // additive (preemption, cold pages).
    let best_of = |runs: usize, run: &mut dyn FnMut()| -> Duration {
        (0..runs)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed()
            })
            .min()
            .expect("at least one run")
    };
    let branch_time = best_of(2, &mut || {
        black_box(
            BranchEnsemble::new(SHOTS)
                .run(&chain.circuit, &make)
                .unwrap(),
        );
    });
    // The same tree on the scalar (pre-SoA) enumeration path: the
    // vectorized/scalar ratio is this bench's PR-over-PR headline.
    let branch_scalar_time = best_of(2, &mut || {
        black_box(
            BranchEnsemble::new(SHOTS)
                .run(&chain.circuit, &make_scalar)
                .unwrap(),
        );
    });
    // The same tree with the fusion pass on: unitary segments execute as
    // single-sweep dense/permutation blocks through `apply_fused` instead
    // of one sweep per gate — this PR's branch-engine headline.
    let branch_fused_time = best_of(2, &mut || {
        black_box(
            BranchEnsemble::new(SHOTS)
                .with_passes(fusion_only_passes())
                .run(&chain.circuit, &make)
                .unwrap(),
        );
    });
    let start = Instant::now();
    black_box(
        ShotRunner::new(MC_SAMPLE_SHOTS)
            .with_threads(1)
            .run(&chain.circuit, || -> Box<dyn Simulator> { make() })
            .unwrap(),
    );
    let mc_per_shot = start.elapsed() / u32::try_from(MC_SAMPLE_SHOTS).unwrap();
    let mc_time = mc_per_shot * u32::try_from(SHOTS).unwrap();
    eprintln!(
        "  {SHOTS}-shot ensemble: branch tree {branch_time:.0?} (scalar \
         {branch_scalar_time:.0?}, {:.2}x; fused {branch_fused_time:.0?}, \
         {:.2}x) vs serial Monte Carlo \
         ~{mc_time:.0?} ({MC_SAMPLE_SHOTS}-shot sample × {SHOTS}/{MC_SAMPLE_SHOTS}): {:.1}x",
        branch_scalar_time.as_secs_f64() / branch_time.as_secs_f64().max(1e-9),
        branch_scalar_time.as_secs_f64() / branch_fused_time.as_secs_f64().max(1e-9),
        mc_time.as_secs_f64() / branch_time.as_secs_f64().max(1e-9)
    );

    // Machine-readable trajectory row, so PR-over-PR regressions in
    // either wall time or peak memory are visible without re-reading
    // bench logs. Peak memory is the per-shot dense footprint — the
    // branch engine shares one trajectory, so its peak is the same
    // state's, paid once instead of per shot.
    let peak_amps = small_mc
        .peak_amplitudes()
        .expect("per-shot dense ensembles report a peak");
    let json = format!(
        "{{\n  \"bench\": \"branch_tree\",\n  \
         \"workload\": \"{STAGES}-stage cdkpm-mbu modadd chain\",\n  \
         \"units\": {{ \"wall\": \"ms\", \"memory\": \"bytes\" }},\n  \"rows\": [\n    \
         {{ \"qubits\": {nq}, \"shots\": {SHOTS}, \"leaves\": {leaves}, \
         \"fork_nodes\": {forks}, \"branch_wall_ms\": {branch:.3}, \
         \"branch_wall_scalar_ms\": {branch_scalar:.3}, \
         \"branch_wall_fused_ms\": {branch_fused:.3}, \
         \"simd_speedup\": {simd_speedup:.2}, \
         \"fusion_speedup\": {fusion_speedup:.2}, \
         \"monte_carlo_wall_ms_extrapolated\": {mc:.3}, \"speedup\": {speedup:.2}, \
         \"peak_amplitudes_per_shot\": {peak_amps}, \
         \"peak_bytes_per_shot\": {peak_bytes} }}\n  ]\n}}",
        leaves = dist.num_leaves(),
        forks = dist.fork_nodes(),
        branch = branch_time.as_secs_f64() * 1e3,
        branch_scalar = branch_scalar_time.as_secs_f64() * 1e3,
        branch_fused = branch_fused_time.as_secs_f64() * 1e3,
        simd_speedup = branch_scalar_time.as_secs_f64() / branch_time.as_secs_f64().max(1e-9),
        fusion_speedup =
            branch_scalar_time.as_secs_f64() / branch_fused_time.as_secs_f64().max(1e-9),
        mc = mc_time.as_secs_f64() * 1e3,
        speedup = mc_time.as_secs_f64() / branch_time.as_secs_f64().max(1e-9),
        peak_bytes = peak_amps * 16,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_branch_tree.json");
    mbu_bench::trajectory::append_run(std::path::Path::new(path), &json)
        .expect("writable BENCH_branch_tree.json");
    eprintln!("  appended run to {path}");

    let mut group = c.benchmark_group("branch_tree/modadd_chain");
    group.bench_function("exact_distribution", |b| {
        b.iter(|| {
            black_box(
                BranchEnsemble::new(0)
                    .distribution(&chain.circuit, &make)
                    .unwrap(),
            )
        })
    });
    group.bench_function("branch_sampled_1000", |b| {
        b.iter(|| {
            black_box(
                BranchEnsemble::new(SHOTS)
                    .run(&chain.circuit, &make)
                    .unwrap(),
            )
        })
    });
    group.bench_function("branch_fused_1000", |b| {
        b.iter(|| {
            black_box(
                BranchEnsemble::new(SHOTS)
                    .with_passes(fusion_only_passes())
                    .run(&chain.circuit, &make)
                    .unwrap(),
            )
        })
    });
    group.bench_function("monte_carlo_per_shot", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(
                ShotRunner::new(1)
                    .with_master_seed(seed)
                    .run(&chain.circuit, || -> Box<dyn Simulator> { make() })
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = branch_tree_vs_monte_carlo
}
criterion_main!(benches);
