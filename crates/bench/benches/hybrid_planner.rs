//! The `hybrid_planner` group: the `MBU_BACKEND=auto` backend on a mixed
//! workload that defeats every fixed representation.
//!
//! The workload is one circuit with three phases on ~22 qubits: a CDKPM
//! MBU modular adder on basis inputs (occupancy stays a handful of
//! states — dense sweeps `2^22` amplitudes per gate for nothing), then an
//! all-qubit Hadamard fan-out with entangling and phase layers at full
//! occupancy (the sparse map holds millions of entries and rewrites them
//! per gate — exactly what the dense kernels are for), a measure-all
//! collapse, and a second MBU adder on the now-definite registers. The
//! forced dense and forced sparse engines each lose a phase; the hybrid
//! planner promotes at the fan-out segment and demotes during the
//! collapse, so its wall time tracks the best representation per phase.
//! Walls, occupancy peaks and the hybrid's recorded dense↔sparse switch
//! count go to `BENCH_hybrid.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use mbu_arith::modular::{self, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_bench::benchmark_modulus;
use mbu_bitstring::BitString;
use mbu_circuit::{Angle, Basis, CircuitBuilder, CompiledCircuit, QubitId};
use mbu_sim::{HybridState, Simulator, SparseVector, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const N: usize = 6;
const SEED: u64 = 7;
/// Walls are the best of this many runs per backend.
const RUNS: u32 = 2;

struct MixedWorkload {
    compiled: CompiledCircuit,
    num_qubits: usize,
    x: Vec<QubitId>,
    y: Vec<QubitId>,
}

/// Builds the three-phase circuit: MBU modadd → full-width fan-out core →
/// measure-all collapse → MBU modadd.
fn mixed_workload() -> MixedWorkload {
    let p = benchmark_modulus(N);
    let p_bits = BitString::from_u128(p, N);
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", N);
    let y = b.qreg("y", N + 1);

    // Phase 1 (sparse-friendly): permutation-only on basis inputs.
    modular::modadd(&mut b, &spec, x.qubits(), y.qubits(), &p_bits).expect("valid modadd");

    // Phase 2 (dense-friendly): every qubit allocated so far — data and
    // released adder ancillas alike — fans out, then entangling and phase
    // layers run at full `2^q` occupancy.
    let all: Vec<QubitId> = (0..b.num_qubits() as u32).map(QubitId).collect();
    for &q in &all {
        b.h(q);
    }
    let theta = Angle::turn_over_power_of_two(3);
    for w in all.windows(2) {
        b.cx(w[0], w[1]);
    }
    for &q in &all {
        b.phase(q, theta);
    }
    for w in all.windows(3).step_by(3) {
        b.ccx(w[0], w[1], w[2]);
    }
    for &q in &all {
        let _ = b.measure(q, Basis::Z);
    }

    // Phase 3 (sparse-friendly again): the registers are definite after
    // the collapse, so the adder is back to a handful of occupied states.
    modular::modadd(&mut b, &spec, x.qubits(), y.qubits(), &p_bits).expect("valid modadd");

    let num_qubits = b.num_qubits();
    let circuit = b.finish();
    MixedWorkload {
        compiled: CompiledCircuit::compile(&circuit).expect("compiles"),
        num_qubits,
        x: x.qubits().to_vec(),
        y: y.qubits().to_vec(),
    }
}

struct Row {
    backend: &'static str,
    wall_ms: f64,
    peak_amplitudes: Option<u64>,
    switches: Option<u64>,
}

/// Runs the workload once on `sim`, returning (wall, executed-digest) —
/// the y-register value cross-checks the backends against each other.
fn run_once(sim: &mut dyn Simulator, w: &MixedWorkload) -> (Duration, mbu_sim::Executed, u128) {
    let p = benchmark_modulus(N);
    sim.set_value(&w.x, p - 1).unwrap();
    sim.set_value(&w.y, p / 2 + 1).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let start = Instant::now();
    let executed = black_box(sim.run_compiled(&w.compiled, &mut rng).unwrap());
    let wall = start.elapsed();
    let value = sim.value(&w.y).unwrap();
    (wall, executed, value)
}

fn write_trajectory(rows: &[Row]) {
    let mut json = String::from(
        "{\n  \"bench\": \"hybrid_planner\",\n  \"workload\": \
         \"cdkpm-mbu modadd n=6 + all-qubit fanout core + collapse + modadd, seed 7\",\n  \
         \"units\": { \"wall\": \"ms\" },\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let peak = match r.peak_amplitudes {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        let switches = match r.switches {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{ \"backend\": \"{}\", \"wall_ms\": {:.3}, \
             \"peak_amplitudes\": {}, \"backend_switches\": {} }}{}",
            r.backend,
            r.wall_ms,
            peak,
            switches,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hybrid.json");
    mbu_bench::trajectory::append_run(std::path::Path::new(path), &json)
        .expect("writable BENCH_hybrid.json");
    eprintln!("  appended run to {path}");
}

fn hybrid_planner(c: &mut Criterion) {
    let w = mixed_workload();
    eprintln!(
        "  mixed workload: {} qubits, {} compiled instrs",
        w.num_qubits,
        w.compiled.instrs().len()
    );

    let mut rows = Vec::new();

    // Forced dense: pays the full 2^q sweep through both adder phases.
    let mut best = Duration::MAX;
    let mut peak = None;
    for _ in 0..RUNS {
        let mut sv = StateVector::zeros(w.num_qubits).unwrap();
        let (wall, _, _) = run_once(&mut sv, &w);
        best = best.min(wall);
        peak = sv.peak_amplitudes();
    }
    eprintln!("  dense : {best:.1?}");
    rows.push(Row {
        backend: "dense",
        wall_ms: best.as_secs_f64() * 1e3,
        peak_amplitudes: peak,
        switches: None,
    });

    // Forced sparse: pays millions of map rewrites through the fan-out
    // core. Also the bit-identity reference for the hybrid run.
    let mut best = Duration::MAX;
    let mut peak = None;
    let mut sparse_digest = None;
    for _ in 0..RUNS {
        let mut sp = SparseVector::zeros(w.num_qubits).unwrap();
        let (wall, executed, value) = run_once(&mut sp, &w);
        best = best.min(wall);
        peak = sp.peak_amplitudes();
        sparse_digest = Some((executed, value));
    }
    eprintln!("  sparse: {best:.1?}");
    rows.push(Row {
        backend: "sparse",
        wall_ms: best.as_secs_f64() * 1e3,
        peak_amplitudes: peak,
        switches: None,
    });

    // The planning hybrid: starts sparse, promotes at the fan-out
    // segment, demotes during the collapse — and stays bit-identical to
    // the forced sparse run (same RNG stream, same record, same value).
    let mut best = Duration::MAX;
    let mut peak = None;
    let mut switches = None;
    for _ in 0..RUNS {
        let mut auto = HybridState::zeros(w.num_qubits).unwrap();
        let (wall, executed, value) = run_once(&mut auto, &w);
        best = best.min(wall);
        peak = auto.peak_amplitudes();
        switches = auto.last_run_switches();
        let (ref ex_s, val_s) = *sparse_digest.as_ref().unwrap();
        assert_eq!(&executed, ex_s, "auto diverged from forced sparse");
        assert_eq!(value, val_s, "auto diverged from forced sparse");
    }
    let n_switches = switches.expect("hybrid records switches");
    assert!(n_switches >= 1, "the planner never switched representation");
    eprintln!("  auto  : {best:.1?} ({n_switches} representation switches)");
    let fixed_best = rows.iter().map(|r| r.wall_ms).fold(f64::INFINITY, f64::min);
    let auto_ms = best.as_secs_f64() * 1e3;
    eprintln!(
        "  auto vs best fixed backend: {auto_ms:.1} ms vs {fixed_best:.1} ms ({})",
        if auto_ms < fixed_best {
            "auto wins"
        } else {
            "fixed wins"
        }
    );
    rows.push(Row {
        backend: "auto",
        wall_ms: auto_ms,
        peak_amplitudes: peak,
        switches: Some(n_switches),
    });

    write_trajectory(&rows);

    // Criterion row for the planner's overhead floor: a narrow MBU adder
    // where the hybrid never leaves the sparse map, timed against the
    // forced sparse engine it should match.
    let mut group = c.benchmark_group("hybrid_planner");
    let p = benchmark_modulus(4);
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, 4, p).unwrap();
    let nq = layout.circuit.num_qubits();
    let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();
    group.bench_function("modadd_n4_auto", |b| {
        b.iter(|| {
            let mut auto = HybridState::zeros(nq).unwrap();
            Simulator::set_value(&mut auto, layout.x.qubits(), p - 1).unwrap();
            Simulator::set_value(&mut auto, layout.y.qubits(), p / 2 + 1).unwrap();
            let mut rng = StdRng::seed_from_u64(SEED);
            black_box(Simulator::run_compiled(&mut auto, &compiled, &mut rng).unwrap())
        })
    });
    group.bench_function("modadd_n4_sparse", |b| {
        b.iter(|| {
            let mut sp = SparseVector::zeros(nq).unwrap();
            sp.set_value(layout.x.qubits(), p - 1).unwrap();
            sp.set_value(layout.y.qubits(), p / 2 + 1).unwrap();
            let mut rng = StdRng::seed_from_u64(SEED);
            black_box(sp.run_compiled(&compiled, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = hybrid_planner
}
criterion_main!(benches);
