//! Append-only bench trajectories: `BENCH_*.json` as a history, not a
//! snapshot.
//!
//! The scaling benches record machine-readable results at the repo root
//! so PR-over-PR regressions are visible without re-reading bench logs.
//! Originally each run *overwrote* the file, which destroyed exactly the
//! trajectory the files exist to show. This module turns every
//! `BENCH_*.json` into a JSON **array** of run entries, each stamped with
//! the git commit and a UTC timestamp:
//!
//! ```json
//! [
//! { "sha": "edf9d33", "unix_time": 1754700000, "utc": "2026-08-09T01:20:00Z",
//!   "bench": "sparse_scaling", "workload": "…", "units": { … }, "rows": [ … ] },
//! { "sha": "1a2b3c4", …next run… }
//! ]
//! ```
//!
//! A pre-existing single-object file (the legacy overwrite format) is
//! migrated in place on the first append: the old object becomes the
//! array's first element, tagged `"sha": "pre-trajectory"` since the
//! commit that produced it is unknowable after the fact.
//!
//! Everything here is plain string splicing — the workspace is
//! dependency-free by design, so there is no JSON parser to lean on. The
//! splice only relies on the file's first non-whitespace byte (`[` vs
//! `{`) and its final closing bracket, both of which this module itself
//! wrote.

use std::io;
use std::path::Path;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Appends one run entry to the trajectory at `path`.
///
/// `body` is the run's JSON object *without* provenance — the same
/// `{ "bench": …, "workload": …, "units": …, "rows": [ … ] }` shape the
/// benches always produced. The entry is stamped with the current git
/// short SHA and UTC time, then spliced into the file's array (creating
/// or migrating the file as needed).
///
/// # Errors
///
/// Propagates I/O errors from reading or writing `path`.
pub fn append_run(path: &Path, body: &str) -> io::Result<()> {
    let (unix, utc) = utc_now();
    append_run_at(path, body, &git_short_sha(), unix, &utc)
}

/// [`append_run`] with explicit provenance, the seam the unit tests use.
fn append_run_at(path: &Path, body: &str, sha: &str, unix: u64, utc: &str) -> io::Result<()> {
    let entry = stamp(body, sha, unix, utc);
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    std::fs::write(path, spliced(&existing, &entry))
}

/// Inserts the provenance keys right after `body`'s opening brace.
fn stamp(body: &str, sha: &str, unix: u64, utc: &str) -> String {
    let body = body.trim();
    let rest = body
        .strip_prefix('{')
        .expect("run entries are JSON objects");
    format!("{{ \"sha\": \"{sha}\", \"unix_time\": {unix}, \"utc\": \"{utc}\",{rest}")
}

/// The new file contents: `entry` appended to whatever trajectory (or
/// legacy single run, or nothing) `existing` holds.
fn spliced(existing: &str, entry: &str) -> String {
    let trimmed = existing.trim();
    if trimmed.is_empty() {
        return format!("[\n{entry}\n]\n");
    }
    if trimmed.starts_with('[') {
        let array_body = trimmed
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .map(str::trim)
            .unwrap_or("");
        if array_body.is_empty() {
            return format!("[\n{entry}\n]\n");
        }
        return format!("[\n{array_body},\n{entry}\n]\n");
    }
    // Legacy overwrite-format file: one bare run object, provenance
    // unknown. Keep it as the trajectory's first point.
    let legacy = stamp(trimmed, "pre-trajectory", 0, "unknown");
    format!("[\n{legacy},\n{entry}\n]\n")
}

/// The short SHA of `HEAD`, or `"unknown"` outside a usable git checkout
/// (benches must record a trajectory point regardless).
fn git_short_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Current wall time as (unix seconds, `YYYY-MM-DDThh:mm:ssZ`).
fn utc_now() -> (u64, String) {
    let unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (unix, format_utc(unix))
}

/// Renders unix seconds as an ISO-8601 UTC timestamp, via the classic
/// civil-from-days calendar conversion (Howard Hinnant's algorithm).
fn format_utc(unix: u64) -> String {
    let days = unix / 86_400;
    let secs = unix % 86_400;
    // Shift the epoch from 1970-01-01 to 0000-03-01 so leap days land at
    // the end of the year and the month lookup is branch-free.
    let z = days + 719_468;
    let era = z / 146_097;
    let doe = z % 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const BODY: &str = "{ \"bench\": \"b\", \"rows\": [ { \"n\": 1 } ] }";

    #[test]
    fn stamp_injects_provenance_first() {
        let s = stamp(BODY, "abc1234", 42, "1970-01-01T00:00:42Z");
        assert!(
            s.starts_with(
                "{ \"sha\": \"abc1234\", \"unix_time\": 42, \"utc\": \"1970-01-01T00:00:42Z\","
            ),
            "{s}"
        );
        assert!(s.ends_with("\"rows\": [ { \"n\": 1 } ] }"), "{s}");
    }

    #[test]
    fn empty_or_missing_file_becomes_singleton_array() {
        assert_eq!(spliced("", "{ \"a\": 1 }"), "[\n{ \"a\": 1 }\n]\n");
        assert_eq!(spliced("  \n", "{ \"a\": 1 }"), "[\n{ \"a\": 1 }\n]\n");
        assert_eq!(spliced("[\n]\n", "{ \"a\": 1 }"), "[\n{ \"a\": 1 }\n]\n");
    }

    #[test]
    fn arrays_grow_in_place() {
        let once = spliced("", "{ \"a\": 1 }");
        let twice = spliced(&once, "{ \"a\": 2 }");
        assert_eq!(twice, "[\n{ \"a\": 1 },\n{ \"a\": 2 }\n]\n");
        let thrice = spliced(&twice, "{ \"a\": 3 }");
        assert_eq!(thrice, "[\n{ \"a\": 1 },\n{ \"a\": 2 },\n{ \"a\": 3 }\n]\n");
    }

    #[test]
    fn legacy_single_object_is_migrated_and_tagged() {
        let legacy = "{\n  \"bench\": \"old\",\n  \"rows\": []\n}\n";
        let grown = spliced(legacy, "{ \"a\": 1 }");
        assert!(
            grown.starts_with("[\n{ \"sha\": \"pre-trajectory\","),
            "{grown}"
        );
        assert!(grown.contains("\"bench\": \"old\""), "{grown}");
        assert!(grown.trim_end().ends_with("{ \"a\": 1 }\n]"), "{grown}");
    }

    #[test]
    fn utc_formatting_matches_known_instants() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(format_utc(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-08-09 00:00:00 UTC.
        assert_eq!(format_utc(1_786_233_600), "2026-08-09T00:00:00Z");
    }

    #[test]
    fn append_run_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("mbu-trajectory-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_roundtrip.json");
        let _ = std::fs::remove_file(&path);
        append_run_at(&path, BODY, "aaa", 1, "1970-01-01T00:00:01Z").unwrap();
        append_run_at(&path, BODY, "bbb", 2, "1970-01-01T00:00:02Z").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(text.starts_with("[\n{ \"sha\": \"aaa\""), "{text}");
        assert!(text.contains("{ \"sha\": \"bbb\""), "{text}");
        assert_eq!(text.matches("\"bench\": \"b\"").count(), 2);
    }
}
