//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The binaries (`tables`, `figures`) and the Criterion benches all build
//! circuits through [`mbu_arith`] and measure them three ways:
//!
//! * **static** — exact [`GateCounts`] of the constructed circuit
//!   (conditional blocks at full weight);
//! * **analytic expectation** — [`ExpectedCounts`](mbu_circuit::ExpectedCounts) with conditional blocks
//!   at weight ½, the paper's "in expectation" accounting;
//! * **Monte-Carlo** — mean executed counts over a seeded
//!   [`ShotRunner`] ensemble, which validates the analytic expectation
//!   empirically (and in parallel).

pub mod trajectory;

use mbu_arith::modular::ModAddSpec;
use mbu_arith::{modular, resources, Uncompute};
use mbu_circuit::{Circuit, QubitId};
use mbu_sim::{BasisTracker, CountStats, Ensemble, ShotRunner};

/// Mean executed gate counts over a `trials`-shot ensemble of `circuit`,
/// with each register of `inputs` prepared before every shot.
///
/// Thin wrapper over [`monte_carlo_ensemble`] that projects the ensemble
/// down to the paper-relevant means.
///
/// # Panics
///
/// Panics if the circuit leaves the basis tracker's supported fragment.
#[must_use]
pub fn monte_carlo_counts(
    circuit: &Circuit,
    inputs: &[(&[QubitId], u128)],
    trials: u64,
) -> MeanCounts {
    MeanCounts::from_stats(&monte_carlo_ensemble(circuit, inputs, trials).mean())
}

/// The full executed-count ensemble over `trials` seeded shots of
/// `circuit` on the [`BasisTracker`], run across all available CPUs.
///
/// # Panics
///
/// Panics if the circuit leaves the basis tracker's supported fragment.
#[must_use]
pub fn monte_carlo_ensemble(
    circuit: &Circuit,
    inputs: &[(&[QubitId], u128)],
    trials: u64,
) -> Ensemble {
    ShotRunner::new(trials)
        .run(circuit, || {
            let mut sim = BasisTracker::zeros(circuit.num_qubits());
            for (reg, v) in inputs {
                sim.set_value(reg, *v)
                    .expect("benchmark registers lie inside the circuit width");
            }
            Box::new(sim)
        })
        .expect("circuit must be tracker-supported")
}

/// Averaged executed counts from Monte-Carlo runs: the paper-relevant
/// projection of a [`CountStats`].
#[derive(Clone, Copy, Default, Debug)]
pub struct MeanCounts {
    /// Mean Toffolis executed.
    pub toffoli: f64,
    /// Mean CNOTs executed.
    pub cx: f64,
    /// Mean CZs executed.
    pub cz: f64,
    /// Mean X gates executed.
    pub x: f64,
    /// Mean H gates executed.
    pub h: f64,
    /// Mean measurements executed.
    pub measurements: f64,
}

impl MeanCounts {
    /// Projects ensemble statistics down to the paper's columns.
    #[must_use]
    pub fn from_stats(stats: &CountStats) -> Self {
        Self {
            toffoli: stats.toffoli,
            cx: stats.cx,
            cz: stats.cz,
            x: stats.x,
            h: stats.h,
            measurements: stats.measurements(),
        }
    }
}

/// The Table-1 architecture rows that map onto [`ModAddSpec`] presets
/// (everything except the Draper rows, which are handled separately).
#[must_use]
pub fn spec_for_row(row: resources::Table1Row, unc: Uncompute) -> Option<ModAddSpec> {
    match row {
        resources::Table1Row::Vbe5 => Some(ModAddSpec::vbe5(unc)),
        resources::Table1Row::Vbe4 => Some(ModAddSpec::vbe4(unc)),
        resources::Table1Row::Cdkpm => Some(ModAddSpec::cdkpm(unc)),
        resources::Table1Row::Gidney => Some(ModAddSpec::gidney(unc)),
        resources::Table1Row::CdkpmGidney => Some(ModAddSpec::gidney_cdkpm(unc)),
        resources::Table1Row::Draper | resources::Table1Row::DraperExpect => None,
    }
}

/// A prime modulus close to `2^n − 1` for each benchmark width.
///
/// Widths of 127 and beyond all share the Mersenne prime `2^127 − 1`,
/// the widest prime that still leaves `x + y` representable in `u128`.
///
/// # Panics
///
/// Panics for unsupported widths (the harness uses 4–64 and ≥ 127).
#[must_use]
pub fn benchmark_modulus(n: usize) -> u128 {
    match n {
        3 => 7,
        4 => 13,
        6 => 61,
        8 => 251,
        10 => 1021,
        12 => 4093,
        16 => 65_521,
        24 => 16_777_213,
        32 => 4_294_967_291,
        48 => 281_474_976_710_597,
        61 => (1u128 << 61) - 1,
        64 => 18_446_744_073_709_551_557,
        // The largest prime a `u128` modulus can carry cleanly: the
        // Mersenne prime 2^127 − 1. Serves every register width past
        // 128 — the sparse backend runs registers of hundreds of
        // qubits, but classical reference arithmetic stays in `u128`.
        127.. => (1u128 << 127) - 1,
        _ => panic!("no benchmark modulus tabulated for n = {n}"),
    }
}

/// Builds a modular adder for a Table-1 architecture row.
///
/// The ripple rows go through their [`ModAddSpec`] presets; the Draper
/// rows build the Beauregard QFT modular adder — all-diagonal interior,
/// the phase-accumulator backend's native workload.
///
/// # Panics
///
/// Panics if circuit construction fails (invalid `n`/`p` combinations).
#[must_use]
pub fn build_row_circuit(
    row: resources::Table1Row,
    unc: Uncompute,
    n: usize,
    p: u128,
) -> Option<modular::ModAdd> {
    let layout = match spec_for_row(row, unc) {
        Some(spec) => modular::modadd_circuit(&spec, n, p),
        None => modular::beauregard::modadd_circuit(unc, n, p),
    };
    Some(layout.expect("valid parameters"))
}

/// Formats `value` with one decimal when fractional, none otherwise.
#[must_use]
pub fn fmt_count(value: f64) -> String {
    if (value - value.round()).abs() < 1e-9 {
        format!("{}", value.round() as i64)
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_arith::resources::Table1Row;

    #[test]
    fn moduli_fit_their_widths() {
        for n in [4usize, 8, 16, 32, 48, 61, 64] {
            let p = benchmark_modulus(n);
            assert!(p > 1);
            assert!(n >= 128 || p < (1u128 << n), "n={n}");
        }
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_on_a_small_circuit() {
        let layout = build_row_circuit(Table1Row::Cdkpm, Uncompute::Mbu, 6, 61).unwrap();
        let analytic = layout.circuit.expected_counts().toffoli;
        let mean = monte_carlo_counts(
            &layout.circuit,
            &[(layout.x.qubits(), 30), (layout.y.qubits(), 45)],
            400,
        );
        assert!(
            (mean.toffoli - analytic).abs() < analytic * 0.1 + 1.0,
            "{} vs {analytic}",
            mean.toffoli
        );
    }

    #[test]
    fn fmt_count_renders_integers_plainly() {
        assert_eq!(fmt_count(12.0), "12");
        assert_eq!(fmt_count(3.5), "3.50");
    }

    #[test]
    fn draper_row_builds_beauregard_and_runs_on_the_phase_backend() {
        use mbu_sim::{PhaseAccumulator, Simulator};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (n, p) = (4usize, benchmark_modulus(4));
        let layout = build_row_circuit(Table1Row::Draper, Uncompute::Mbu, n, p).unwrap();
        // QFT arithmetic throughout: no Toffolis anywhere in the row.
        assert_eq!(layout.circuit.counts().toffoli, 0);

        let (x, y) = (p - 1, p / 2 + 1);
        let mut sim = PhaseAccumulator::zeros(layout.circuit.num_qubits()).unwrap();
        sim.set_value(layout.x.qubits(), x).unwrap();
        sim.set_value(layout.y.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        sim.run(&layout.circuit, &mut rng).unwrap();
        assert_eq!(sim.value(layout.x.qubits()).unwrap(), x);
        assert_eq!(sim.value(layout.y.qubits()).unwrap(), (x + y) % p);
        assert_eq!(sim.occupied(), 1);
    }
}
