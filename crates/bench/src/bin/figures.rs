//! Regenerates the paper's circuit figures as ASCII diagrams.
//!
//! ```text
//! cargo run -p mbu-bench --bin figures
//! ```
//!
//! Covers Figures 4–5 (VBE CARRY/SUM and adder), 6–9 (CDKPM MAJ/UMA and
//! adder), 10–13 (Gidney logical-AND adder), 14 (Draper ΦADD), 16–17
//! (controlled UMA), 21 (CDKPM comparator), 23 (Beauregard doubly
//! controlled constant modular adder), 24 (the MBU protocol) and 25
//! (the MBU modular adder).

use mbu_arith::modular::{self, beauregard};
use mbu_arith::{adders, compare, mbu, AdderKind, Uncompute};
use mbu_circuit::diagram::render;
use mbu_circuit::CircuitBuilder;

fn heading(title: &str) {
    println!("──────────────────────────────────────────────────────");
    println!("{title}");
    println!("──────────────────────────────────────────────────────");
}

fn adder_labels(n: usize, total: usize) -> Vec<String> {
    let mut labels = Vec::new();
    for i in 0..n {
        labels.push(format!("x{i}"));
    }
    for i in 0..=n {
        labels.push(format!("y{i}"));
    }
    let named = labels.len();
    for i in named..total {
        labels.push(format!("a{}", i - named + 1));
    }
    labels
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2usize;

    heading("Figures 4–5: VBE plain adder (CARRY / SUM chains), n = 2");
    let adder = adders::plain_adder(AdderKind::Vbe, n)?;
    println!(
        "{}",
        render(&adder.circuit, &adder_labels(n, adder.circuit.num_qubits()))
    );

    heading("Figures 6–9: CDKPM ripple-carry adder (MAJ / UMA), n = 2");
    let adder = adders::plain_adder(AdderKind::Cdkpm, n)?;
    println!(
        "{}",
        render(&adder.circuit, &adder_labels(n, adder.circuit.num_qubits()))
    );

    heading("Figures 10–13: Gidney logical-AND adder (measure + CZ uncompute), n = 2");
    let adder = adders::plain_adder(AdderKind::Gidney, n)?;
    println!(
        "{}",
        render(&adder.circuit, &adder_labels(n, adder.circuit.num_qubits()))
    );

    heading("Figure 14: Draper ΦADD inside QFT/IQFT, n = 2");
    let adder = adders::plain_adder(AdderKind::Draper, n)?;
    println!(
        "{}",
        render(&adder.circuit, &adder_labels(n, adder.circuit.num_qubits()))
    );

    heading("Figures 16–17: controlled CDKPM adder (C-UMA), n = 2");
    let ca = adders::controlled_adder(AdderKind::Cdkpm, n)?;
    let mut labels = vec!["c".to_string()];
    labels.extend(adder_labels(n, ca.circuit.num_qubits() - 1));
    println!("{}", render(&ca.circuit, &labels));

    heading("Figure 21: CDKPM half-subtractor comparator, n = 2");
    let cmp = compare::comparator(AdderKind::Cdkpm, n)?;
    println!(
        "{}",
        render(&cmp.circuit, &["x0", "x1", "y0", "y1", "t", "c0"])
    );

    heading("Figure 23: Beauregard doubly-controlled constant modular adder, n = 2");
    let bl = beauregard::modadd_const_circuit(Uncompute::Unitary, 2, n, 2, 3)?;
    let mut labels = vec!["c1".to_string(), "c2".to_string()];
    for i in 0..=n {
        labels.push(format!("x{i}"));
    }
    labels.push("t".to_string());
    println!("{}", render(&bl.circuit, &labels));

    heading("Figure 24: the MBU protocol (Lemma 4.1), Ug = Toffoli");
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 3);
    let (_, ug) = b.record(|b| b.ccx(q[0], q[1], q[2]));
    b.emit(&ug);
    mbu::uncompute_bit(&mut b, q[2], &ug);
    println!("{}", render(&b.finish(), &["x0", "x1", "g"]));

    heading("Figure 25: MBU modular adder (CDKPM architecture), n = 2, p = 3");
    let spec = modular::ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, 3)?;
    let mut labels = Vec::new();
    for i in 0..n {
        labels.push(format!("x{i}"));
    }
    for i in 0..=n {
        labels.push(format!("y{i}"));
    }
    labels.push("t".to_string());
    for i in labels.len()..layout.circuit.num_qubits() {
        labels.push(format!("a{}", i - labels.len() + 1));
    }
    println!("{}", render(&layout.circuit, &labels));

    Ok(())
}
