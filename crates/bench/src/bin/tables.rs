//! Regenerates every table of the paper's evaluation, printing the paper's
//! printed formula next to the value measured from our constructed
//! circuits.
//!
//! ```text
//! cargo run -p mbu-bench --bin tables            # everything
//! cargo run -p mbu-bench --bin tables -- table1  # one artifact
//! ```
//!
//! Subcommands: `table1 table2 table3 table4 table5 table6 headline
//! mbu-stats`.

use mbu_arith::modular::{self, beauregard};
use mbu_arith::resources::{self, Table1Row};
use mbu_arith::{adders, compare, two_sided, AdderKind, Uncompute};
use mbu_bench::{
    benchmark_modulus, build_row_circuit, fmt_count, monte_carlo_ensemble, MeanCounts,
};
use mbu_bitstring::hamming_weight;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("table3") {
        table3();
    }
    if want("table4") {
        table4();
    }
    if want("table5") {
        table5();
    }
    if want("table6") {
        table6();
    }
    if want("headline") {
        headline();
    }
    if want("mbu-stats") {
        mbu_stats();
    }
}

/// Table 1: modular addition, all architectures, w/ and w/o MBU.
fn table1() {
    let n = 32usize;
    let p = benchmark_modulus(n);
    let w = f64::from(hamming_weight(p));
    println!("== Table 1: modular addition (n = {n}, p = {p}, |p| = {w}) ==");
    println!(
        "{:<16} {:>4} {:>7} {:>9} {:>9} {:>11} {:>11} {:>9} {:>9}",
        "architecture",
        "MBU",
        "qubits",
        "paper:Tof",
        "meas:Tof",
        "paper:CX+CZ",
        "meas:CX+CZ",
        "paper:X",
        "meas:X"
    );
    for row in [
        Table1Row::Vbe5,
        Table1Row::Vbe4,
        Table1Row::Cdkpm,
        Table1Row::Gidney,
        Table1Row::CdkpmGidney,
    ] {
        for mbu in [false, true] {
            let unc = if mbu {
                Uncompute::Mbu
            } else {
                Uncompute::Unitary
            };
            let layout = build_row_circuit(row, unc, n, p).expect("ripple row");
            let e = layout.circuit.expected_counts();
            let paper = resources::table1(row, n as f64, w, mbu);
            println!(
                "{:<16} {:>4} {:>7} {:>9} {:>9} {:>11} {:>11} {:>9} {:>9}",
                row.label(),
                if mbu { "yes" } else { "no" },
                layout.circuit.num_qubits(),
                fmt_count(paper.toffoli),
                fmt_count(e.toffoli),
                fmt_count(paper.cnot_cz),
                fmt_count(e.cnot_cz()),
                fmt_count(paper.x),
                fmt_count(e.x),
            );
        }
    }
    // Draper rows: measured in H/CR expectation; paper counts QFT units.
    let nq = 10usize;
    let pq = benchmark_modulus(nq) % (1 << nq);
    for (label, unc, row) in [
        ("Draper", Uncompute::Unitary, Table1Row::Draper),
        ("Draper", Uncompute::Mbu, Table1Row::Draper),
    ] {
        let layout = beauregard::modadd_circuit(unc, nq, pq).expect("draper row");
        let e = layout.circuit.expected_counts();
        let paper = resources::table1(row, nq as f64, 0.0, unc == Uncompute::Mbu);
        println!(
            "{:<16} {:>4} {:>7}   paper QFT units: {:>4}   measured E[H]: {:>7}  E[CR]: {:>9}",
            label,
            if unc == Uncompute::Mbu { "yes" } else { "no" },
            layout.circuit.num_qubits(),
            fmt_count(paper.qft),
            fmt_count(e.h),
            fmt_count(e.cphase),
        );
    }
    println!();
}

/// Table 2: plain adders.
fn table2() {
    let n = 32usize;
    println!("== Table 2: plain adders (n = {n}) ==");
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "adder", "paper:Tof", "meas:Tof", "paper:anc", "meas:anc", "paper:CX", "meas:CX"
    );
    for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
        let adder = adders::plain_adder(kind, n).expect("adder");
        let c = adder.circuit.counts();
        let paper = resources::table2_plain_adder(kind, n as f64);
        let ancillas = adder.circuit.num_qubits() - (2 * n + 1);
        println!(
            "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
            kind.to_string(),
            fmt_count(paper.toffoli),
            c.toffoli,
            fmt_count(paper.ancillas),
            ancillas,
            fmt_count(paper.cnot),
            c.cx,
        );
    }
    let adder = adders::plain_adder(AdderKind::Draper, n).expect("draper");
    let c = adder.circuit.counts();
    println!(
        "{:<10} paper: 3 QFT units, 0 ancillas   measured: H={} CR={} Tof={}",
        "Draper", c.h, c.cphase, c.toffoli
    );
    println!();
}

/// Table 3: controlled adders.
fn table3() {
    let n = 32usize;
    println!("== Table 3: controlled addition (n = {n}) ==");
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10}",
        "adder", "paper:Tof", "meas:Tof", "paper:anc", "meas:anc"
    );
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney, AdderKind::Draper] {
        let ca = adders::controlled_adder(kind, n).expect("controlled adder");
        let c = ca.circuit.counts();
        let paper = resources::table3_controlled_adder(kind, n as f64);
        let ancillas = ca.circuit.num_qubits() - (2 * n + 2);
        println!(
            "{:<10} {:>9} {:>9} {:>10} {:>10}",
            kind.to_string(),
            fmt_count(paper.toffoli),
            c.toffoli,
            fmt_count(paper.ancillas),
            ancillas,
        );
    }
    println!();
}

/// Table 4: addition by a constant.
fn table4() {
    let n = 32usize;
    let a = 0xDEAD_BEEFu128 & ((1 << n) - 1);
    println!("== Table 4: addition by a constant (n = {n}, a = {a:#x}) ==");
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "adder", "paper:Tof", "meas:Tof", "paper:anc", "meas:anc", "paper:CX", "meas:CX"
    );
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        let ca = adders::const_adder(kind, n, a).expect("const adder");
        let c = ca.circuit.counts();
        let paper = resources::table4_const_adder(kind, n as f64);
        let ancillas = ca.circuit.num_qubits() - (n + 1);
        println!(
            "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
            kind.to_string(),
            fmt_count(paper.toffoli),
            c.toffoli,
            fmt_count(paper.ancillas),
            ancillas,
            fmt_count(paper.cnot),
            c.cx,
        );
    }
    let ca = adders::const_adder(AdderKind::Draper, n, a).expect("draper");
    let c = ca.circuit.counts();
    println!(
        "{:<10} paper: 2 QFT + 1 ΦADD(a), 0 ancillas   measured: H={} R={} CR={}",
        "Draper", c.h, c.phase, c.cphase
    );
    println!();
}

/// Table 5: controlled addition by a constant.
fn table5() {
    let n = 32usize;
    let a = 0xDEAD_BEEFu128 & ((1 << n) - 1);
    let wa = f64::from(hamming_weight(a));
    println!("== Table 5: controlled addition by a constant (n = {n}, |a| = {wa}) ==");
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10}",
        "adder", "paper:Tof", "meas:Tof", "paper:CX", "meas:CX"
    );
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        let ca = adders::controlled_const_adder(kind, n, a).expect("ctrl const adder");
        let c = ca.circuit.counts();
        let paper = resources::table5_controlled_const_adder(kind, n as f64, wa);
        println!(
            "{:<10} {:>9} {:>9} {:>10} {:>10}",
            kind.to_string(),
            fmt_count(paper.toffoli),
            c.toffoli,
            fmt_count(paper.cnot),
            c.cx,
        );
    }
    let ca = adders::controlled_const_adder(AdderKind::Draper, n, a).expect("draper");
    let c = ca.circuit.counts();
    println!(
        "{:<10} paper: 2 QFT + 1 C-ΦADD(a), 0 ancillas   measured: H={} CR={}",
        "Draper", c.h, c.cphase
    );
    println!();
}

/// Table 6: comparators.
fn table6() {
    let n = 32usize;
    println!("== Table 6: comparators (n = {n}) ==");
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "adder", "paper:Tof", "meas:Tof", "paper:anc", "meas:anc", "paper:CX", "meas:CX"
    );
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        let cmp = compare::comparator(kind, n).expect("comparator");
        let c = cmp.circuit.counts();
        let paper = resources::table6_comparator(kind, n as f64);
        let ancillas = cmp.circuit.num_qubits() - (2 * n + 1);
        println!(
            "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
            kind.to_string(),
            fmt_count(paper.toffoli),
            c.toffoli,
            fmt_count(paper.ancillas),
            ancillas,
            fmt_count(paper.cnot),
            c.cx,
        );
    }
    let cmp = compare::comparator(AdderKind::Draper, n).expect("draper");
    let c = cmp.circuit.counts();
    println!(
        "{:<10} paper: 6 QFT units, 1 ancilla   measured: H={} CR={} CX={}",
        "Draper", c.h, c.cphase, c.cx
    );
    println!();
}

/// The §1.1 headline: MBU's relative Toffoli savings per architecture,
/// paper formula vs measured, plus the two-sided comparator.
fn headline() {
    let n = 64usize;
    let p = benchmark_modulus(61); // fits n = 64
    let w = f64::from(hamming_weight(p));
    println!("== Headline (§1.1): MBU Toffoli savings (n = {n}) ==");
    println!(
        "{:<16} {:>13} {:>13}",
        "architecture", "paper saving", "measured"
    );
    for row in [
        Table1Row::Vbe5,
        Table1Row::Vbe4,
        Table1Row::Cdkpm,
        Table1Row::Gidney,
        Table1Row::CdkpmGidney,
    ] {
        let paper = resources::headline_toffoli_saving(row, n as f64, w);
        let plain = build_row_circuit(row, Uncompute::Unitary, n, p)
            .expect("row")
            .circuit
            .expected_counts()
            .toffoli;
        let with_mbu = build_row_circuit(row, Uncompute::Mbu, n, p)
            .expect("row")
            .circuit
            .expected_counts()
            .toffoli;
        let measured = 1.0 - with_mbu / plain;
        println!(
            "{:<16} {:>12.1}% {:>12.1}%",
            row.label(),
            100.0 * paper,
            100.0 * measured
        );
    }
    // Two-sided comparator: "nearly 25%" on the comparator pair.
    let plain = two_sided::in_range_circuit(AdderKind::Gidney, Uncompute::Unitary, n)
        .expect("range")
        .circuit
        .expected_counts()
        .toffoli;
    let with_mbu = two_sided::in_range_circuit(AdderKind::Gidney, Uncompute::Mbu, n)
        .expect("range")
        .circuit
        .expected_counts()
        .toffoli;
    println!(
        "{:<16} {:>12}% {:>12.1}%   (Thm 4.13: 2r+r' → 1.5r+r')",
        "two-sided cmp",
        "~25/16",
        100.0 * (1.0 - with_mbu / plain)
    );
    println!();
}

/// Lemma 4.1 statistics: outcome frequency and Monte-Carlo vs analytic
/// expectation.
fn mbu_stats() {
    let n = 12usize;
    let p = benchmark_modulus(n);
    println!("== MBU statistics (Lemma 4.1; n = {n}, p = {p}, 1000 runs) ==");
    let spec = modular::ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).expect("modadd");
    let analytic = layout.circuit.expected_counts();
    let ensemble = monte_carlo_ensemble(
        &layout.circuit,
        &[(layout.x.qubits(), p - 3), (layout.y.qubits(), p / 2)],
        1000,
    );
    let mean = MeanCounts::from_stats(&ensemble.mean());
    let var = ensemble.variance();
    println!("                 {:>10} {:>12}", "analytic", "monte-carlo");
    println!(
        "expected Tof     {:>10} {:>12.2}",
        fmt_count(analytic.toffoli),
        mean.toffoli
    );
    println!(
        "expected CNOT    {:>10} {:>12.2}",
        fmt_count(analytic.cx),
        mean.cx
    );
    println!(
        "expected X       {:>10} {:>12.2}",
        fmt_count(analytic.x),
        mean.x
    );
    println!(
        "expected H       {:>10} {:>12.2}",
        fmt_count(analytic.h),
        mean.h
    );
    println!("Tof variance     {:>10} {:>12.2}", "", var.toffoli);
    if let Some(flag) = ensemble.last_clbit() {
        let freq = ensemble.outcome_frequency(flag).unwrap_or(0.0);
        println!(
            "MBU flag freq    {:>10} {:>12.3}   (Lemma 4.1: fair coin)",
            "0.5", freq
        );
    }
    println!();
}
