//! The [`CircuitBuilder`]: registers, ancilla pooling, and scoped recording.

use std::fmt;
use std::ops::Index;

use crate::angle::Angle;
use crate::circuit::Circuit;
use crate::counts::{ExpectedCounts, GateCounts};
use crate::error::CircuitError;
use crate::gate::{Basis, Gate};
use crate::op::{ClbitId, Op, QubitId};

/// A named group of qubits, e.g. the paper's registers `X`, `Y`, `C`.
///
/// # Examples
///
/// ```
/// use mbu_circuit::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new();
/// let x = b.qreg("x", 4);
/// assert_eq!(x.len(), 4);
/// assert_eq!(x.name(), "x");
/// b.x(x[0]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Register {
    name: String,
    qubits: Vec<QubitId>,
}

impl Register {
    pub(crate) fn new(name: impl Into<String>, qubits: Vec<QubitId>) -> Self {
        Self {
            name: name.into(),
            qubits,
        }
    }

    /// The register's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of qubits in the register.
    #[must_use]
    pub fn len(&self) -> usize {
        self.qubits.len()
    }

    /// Whether the register is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty()
    }

    /// The qubits, least-significant first.
    #[must_use]
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// Iterates over the qubits, least-significant first.
    pub fn iter(&self) -> impl Iterator<Item = QubitId> + '_ {
        self.qubits.iter().copied()
    }

    /// A sub-register view of the first `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn take(&self, n: usize) -> Register {
        Register::new(format!("{}[0..{n}]", self.name), self.qubits[..n].to_vec())
    }
}

impl Index<usize> for Register {
    type Output = QubitId;

    fn index(&self, i: usize) -> &QubitId {
        &self.qubits[i]
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.name, self.qubits.len())
    }
}

/// A recorded block of operations, produced by [`CircuitBuilder::record`].
///
/// Blocks are how this workspace composes the paper's propositions: record a
/// subroutine once, then [`emit`](CircuitBuilder::emit) it,
/// [`emit_adjoint`](CircuitBuilder::emit_adjoint) it (e.g. using `Q†_ADD` as
/// a subtractor, Theorem 2.22), or attach it to a classical control
/// ([`emit_conditional`](CircuitBuilder::emit_conditional), the MBU
/// correction of Lemma 4.1).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct OpBlock {
    ops: Vec<Op>,
}

impl OpBlock {
    /// The recorded operations.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consumes the block, returning the operations.
    #[must_use]
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Exact gate counts of the block.
    #[must_use]
    pub fn counts(&self) -> GateCounts {
        GateCounts::from_ops(&self.ops)
    }

    /// Expected gate counts of the block.
    #[must_use]
    pub fn expected_counts(&self) -> ExpectedCounts {
        ExpectedCounts::from_ops(&self.ops)
    }

    /// The block's adjoint.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::AdjointOfMeasurement`] if the block measures.
    pub fn adjoint(&self) -> Result<OpBlock, CircuitError> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in self.ops.iter().rev() {
            ops.push(op.adjoint()?);
        }
        Ok(OpBlock { ops })
    }
}

/// Incrementally builds a [`Circuit`], managing qubit registers, a reusable
/// ancilla pool, classical bits, and scoped op recording.
///
/// # Examples
///
/// Compose a block and its adjoint around a middle section — the paper's
/// compute/act/uncompute pattern:
///
/// ```
/// use mbu_circuit::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 3);
/// let (_, compute) = b.record(|b| {
///     b.ccx(q[0], q[1], q[2]);
/// });
/// b.emit(&compute);
/// b.z(q[2]); // act on the computed bit
/// b.emit_adjoint(&compute).unwrap();
/// let circuit = b.finish();
/// assert_eq!(circuit.counts().toffoli, 2);
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    num_qubits: usize,
    num_clbits: usize,
    /// Recording frames; index 0 is the main circuit body.
    frames: Vec<Vec<Op>>,
    /// Ancillas currently free for reuse.
    free_ancillas: Vec<QubitId>,
    /// Total distinct ancilla qubits ever created.
    ancillas_created: usize,
    /// Ancillas currently checked out.
    ancillas_in_use: usize,
    /// Maximum simultaneous ancillas checked out.
    ancilla_peak: usize,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            frames: vec![Vec::new()],
            ..Self::default()
        }
    }

    /// Allocates a named register of `n` fresh qubits (initially `|0⟩` by
    /// the simulators' convention, unless a test writes inputs into them).
    pub fn qreg(&mut self, name: impl Into<String>, n: usize) -> Register {
        let start = self.num_qubits as u32;
        self.num_qubits += n;
        Register::new(name, (start..start + n as u32).map(QubitId).collect())
    }

    /// Allocates a single fresh qubit.
    pub fn qubit(&mut self) -> QubitId {
        let id = QubitId(self.num_qubits as u32);
        self.num_qubits += 1;
        id
    }

    /// Checks out an ancilla qubit, reusing a previously released one when
    /// available.
    ///
    /// Ancillas are assumed to be `|0⟩` when checked out; callers must
    /// restore `|0⟩` before [`release_ancilla`](Self::release_ancilla) — the
    /// uncomputation obligation the whole paper is about.
    pub fn ancilla(&mut self) -> QubitId {
        self.ancillas_in_use += 1;
        self.ancilla_peak = self.ancilla_peak.max(self.ancillas_in_use);
        if let Some(q) = self.free_ancillas.pop() {
            q
        } else {
            self.ancillas_created += 1;
            self.qubit()
        }
    }

    /// Checks out `n` ancillas as an anonymous register.
    pub fn ancilla_reg(&mut self, n: usize) -> Register {
        let qubits = (0..n).map(|_| self.ancilla()).collect();
        Register::new("anc", qubits)
    }

    /// Returns an ancilla (restored to `|0⟩`) to the pool.
    pub fn release_ancilla(&mut self, q: QubitId) {
        self.ancillas_in_use = self.ancillas_in_use.saturating_sub(1);
        self.free_ancillas.push(q);
    }

    /// Releases every qubit of an ancilla register back to the pool.
    pub fn release_ancilla_reg(&mut self, reg: Register) {
        for q in reg.iter() {
            self.release_ancilla(q);
        }
    }

    /// Empties the free-ancilla pool so subsequent [`ancilla`](Self::ancilla)
    /// calls allocate fresh qubits instead of recycling released ones.
    ///
    /// This models the hardware profile of measurement-based uncomputation:
    /// a measured garbage qubit is physically released rather than reused in
    /// place, so each phase of a longer computation works on fresh ancillas
    /// while the simulator's reclamation pass retires the old ones — the
    /// circuit is wider on paper, but the *live* width the compiled engine
    /// simulates stays bounded by one phase. Retired ancillas are not
    /// counted as in use, so [`ancilla_peak`](Self::ancilla_peak) still
    /// reports the per-phase concurrent maximum.
    pub fn retire_ancillas(&mut self) {
        self.free_ancillas.clear();
    }

    /// Allocates a fresh classical bit.
    pub fn clbit(&mut self) -> ClbitId {
        let id = ClbitId(self.num_clbits as u32);
        self.num_clbits += 1;
        id
    }

    /// Total qubits allocated so far.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Maximum number of ancillas simultaneously checked out.
    #[must_use]
    pub fn ancilla_peak(&self) -> usize {
        self.ancilla_peak
    }

    /// Total distinct ancilla qubits created (pool size).
    #[must_use]
    pub fn ancillas_created(&self) -> usize {
        self.ancillas_created
    }

    /// Pushes a raw operation into the current frame.
    pub fn push_op(&mut self, op: Op) {
        self.frames
            .last_mut()
            .expect("builder always has a frame")
            .push(op);
    }

    /// Emits an X (NOT) gate.
    pub fn x(&mut self, q: QubitId) {
        self.push_op(Op::Gate(Gate::X(q)));
    }

    /// Emits a Z gate.
    pub fn z(&mut self, q: QubitId) {
        self.push_op(Op::Gate(Gate::Z(q)));
    }

    /// Emits a Hadamard gate.
    pub fn h(&mut self, q: QubitId) {
        self.push_op(Op::Gate(Gate::H(q)));
    }

    /// Emits a phase rotation `R(θ)`; zero angles are dropped.
    pub fn phase(&mut self, q: QubitId, theta: Angle) {
        if !theta.is_zero() {
            self.push_op(Op::Gate(Gate::Phase(q, theta)));
        }
    }

    /// Emits a CNOT.
    pub fn cx(&mut self, control: QubitId, target: QubitId) {
        self.push_op(Op::Gate(Gate::Cx(control, target)));
    }

    /// Emits a CZ.
    pub fn cz(&mut self, a: QubitId, b: QubitId) {
        self.push_op(Op::Gate(Gate::Cz(a, b)));
    }

    /// Emits a Toffoli.
    pub fn ccx(&mut self, c1: QubitId, c2: QubitId, target: QubitId) {
        self.push_op(Op::Gate(Gate::Ccx(c1, c2, target)));
    }

    /// Emits a doubly-controlled Z.
    pub fn ccz(&mut self, a: QubitId, b: QubitId, c: QubitId) {
        self.push_op(Op::Gate(Gate::Ccz(a, b, c)));
    }

    /// Emits a controlled rotation `C-R(θ)`; zero angles are dropped.
    pub fn cphase(&mut self, control: QubitId, target: QubitId, theta: Angle) {
        if !theta.is_zero() {
            self.push_op(Op::Gate(Gate::CPhase(control, target, theta)));
        }
    }

    /// Emits a doubly-controlled rotation `CC-R(θ)`; zero angles dropped.
    pub fn ccphase(&mut self, c1: QubitId, c2: QubitId, target: QubitId, theta: Angle) {
        if !theta.is_zero() {
            self.push_op(Op::Gate(Gate::CcPhase(c1, c2, target, theta)));
        }
    }

    /// Emits a swap.
    pub fn swap(&mut self, a: QubitId, b: QubitId) {
        self.push_op(Op::Gate(Gate::Swap(a, b)));
    }

    /// Resets `q` to `|0⟩` via classical feed-forward (free in the paper's
    /// gate counting; see [`Op::Reset`]).
    pub fn reset(&mut self, q: QubitId) {
        self.push_op(Op::Reset(q));
    }

    /// Measures `q` in `basis`, storing the outcome in a fresh classical
    /// bit which is returned.
    pub fn measure(&mut self, q: QubitId, basis: Basis) -> ClbitId {
        let clbit = self.clbit();
        self.push_op(Op::Measure {
            qubit: q,
            basis,
            clbit,
        });
        clbit
    }

    /// Records the operations emitted by `f` into a block instead of the
    /// circuit, returning `f`'s result alongside the block.
    ///
    /// Recording nests: a `record` inside `f` captures into its own block.
    pub fn record<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> (T, OpBlock) {
        self.frames.push(Vec::new());
        let result = f(self);
        let ops = self.frames.pop().expect("frame pushed above");
        (result, OpBlock { ops })
    }

    /// Emits a previously recorded block.
    pub fn emit(&mut self, block: &OpBlock) {
        for op in &block.ops {
            self.push_op(op.clone());
        }
    }

    /// Emits the adjoint of a recorded block.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::AdjointOfMeasurement`] if the block measures.
    pub fn emit_adjoint(&mut self, block: &OpBlock) -> Result<(), CircuitError> {
        let adj = block.adjoint()?;
        self.emit(&adj);
        Ok(())
    }

    /// Emits `block` under classical control: it executes only when `clbit`
    /// reads 1.
    pub fn emit_conditional(&mut self, clbit: ClbitId, block: &OpBlock) {
        self.push_op(Op::Conditional {
            clbit,
            ops: block.ops.clone(),
        });
    }

    /// Finishes building, returning the circuit.
    ///
    /// # Panics
    ///
    /// Panics if called while a [`record`](Self::record) frame is still
    /// open (impossible through the public API).
    #[must_use]
    pub fn finish(mut self) -> Circuit {
        assert_eq!(self.frames.len(), 1, "unbalanced recording frames");
        let ops = self.frames.pop().expect("main frame");
        Circuit::from_ops(self.num_qubits, self.num_clbits, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_number_qubits_sequentially() {
        let mut b = CircuitBuilder::new();
        let x = b.qreg("x", 3);
        let y = b.qreg("y", 2);
        assert_eq!(x[2], QubitId(2));
        assert_eq!(y[0], QubitId(3));
        assert_eq!(b.num_qubits(), 5);
    }

    #[test]
    fn ancilla_pool_reuses_released_qubits() {
        let mut b = CircuitBuilder::new();
        let a1 = b.ancilla();
        b.release_ancilla(a1);
        let a2 = b.ancilla();
        assert_eq!(a1, a2, "released ancilla should be reused");
        assert_eq!(b.ancillas_created(), 1);
        assert_eq!(b.ancilla_peak(), 1);
    }

    #[test]
    fn ancilla_peak_tracks_simultaneous_use() {
        let mut b = CircuitBuilder::new();
        let a = b.ancilla();
        let c = b.ancilla();
        b.release_ancilla(a);
        b.release_ancilla(c);
        let _ = b.ancilla();
        assert_eq!(b.ancilla_peak(), 2);
        assert_eq!(b.ancillas_created(), 2);
    }

    #[test]
    fn record_and_emit_adjoint_round_trip() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        let (_, block) = b.record(|b| {
            b.h(q[0]);
            b.cx(q[0], q[1]);
        });
        b.emit(&block);
        b.emit_adjoint(&block).unwrap();
        let c = b.finish();
        // H CX CX H — adjoint reverses order.
        assert_eq!(c.ops().len(), 4);
        assert_eq!(c.ops()[2], Op::Gate(Gate::Cx(q[0], q[1])));
        assert_eq!(c.ops()[3], Op::Gate(Gate::H(q[0])));
    }

    #[test]
    fn nested_recording_keeps_frames_separate() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        let (_, outer) = b.record(|b| {
            b.x(q[0]);
            let (_, inner) = b.record(|b| b.z(q[0]));
            assert_eq!(inner.counts().z, 1);
            b.emit(&inner);
        });
        assert_eq!(outer.counts().x, 1);
        assert_eq!(outer.counts().z, 1);
        assert_eq!(b.finish().ops().len(), 0);
    }

    #[test]
    fn zero_angle_rotations_are_dropped() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.phase(q[0], Angle::ZERO);
        b.cphase(q[0], q[1], Angle::ZERO);
        assert_eq!(b.finish().ops().len(), 0);
    }

    #[test]
    fn conditional_emission() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        let (_, fixup) = b.record(|b| b.cz(q[0], q[1]));
        let m = b.measure(q[1], Basis::X);
        b.emit_conditional(m, &fixup);
        let c = b.finish();
        assert!(c.validate().is_ok());
        assert_eq!(c.expected_counts().cz, 0.5);
        assert_eq!(c.counts().measure_x, 1);
    }

    #[test]
    fn register_take_prefix() {
        let mut b = CircuitBuilder::new();
        let x = b.qreg("x", 4);
        let lo = x.take(2);
        assert_eq!(lo.len(), 2);
        assert_eq!(lo[1], x[1]);
    }
}
