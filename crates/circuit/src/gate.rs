//! The unitary gate set.

use std::fmt;

use crate::angle::Angle;
use crate::op::QubitId;

/// Measurement basis for [`Op::Measure`](crate::Op::Measure).
///
/// MBU (Lemma 4.1) measures the garbage qubit in the `X` basis; the
/// comparison ancillas of the modular adders are read out in `Z`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Basis {
    /// Computational basis `{|0⟩, |1⟩}`.
    Z,
    /// Hadamard basis `{|+⟩, |−⟩}`; outcome 1 corresponds to `|−⟩`.
    X,
}

impl fmt::Display for Basis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Basis::Z => write!(f, "Z"),
            Basis::X => write!(f, "X"),
        }
    }
}

/// A unitary gate from the paper's gate set (§1.3).
///
/// Diagonal rotations use exact dyadic [`Angle`]s. `S` and `T` gates are
/// expressed as `Phase` with angles `2π/4` and `2π/8`; `Z`, `CZ` and `CCZ`
/// are kept as distinct variants because the paper's Table 1 counts CZ
/// together with CNOT, separately from rotations.
///
/// # Examples
///
/// ```
/// use mbu_circuit::{Angle, Gate, QubitId};
///
/// let t_gate = Gate::Phase(QubitId(0), Angle::turn_over_power_of_two(3));
/// assert_eq!(t_gate.adjoint().adjoint(), t_gate);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Gate {
    /// Pauli X (NOT).
    X(QubitId),
    /// Pauli Z.
    Z(QubitId),
    /// Hadamard.
    H(QubitId),
    /// Diagonal phase rotation `|1⟩ ↦ e^{iθ}|1⟩` (the paper's `R(θ)`).
    Phase(QubitId, Angle),
    /// Controlled NOT: `(control, target)`.
    Cx(QubitId, QubitId),
    /// Controlled Z (symmetric in its operands).
    Cz(QubitId, QubitId),
    /// Toffoli / CCNOT: `(control, control, target)`.
    Ccx(QubitId, QubitId, QubitId),
    /// Doubly-controlled Z (symmetric in its operands).
    Ccz(QubitId, QubitId, QubitId),
    /// Controlled rotation `C-R(θ)` (Figure 3): `(control, target, θ)`.
    CPhase(QubitId, QubitId, Angle),
    /// Doubly-controlled rotation `CC-R(θ)` (Theorem 2.14):
    /// `(control, control, target, θ)`.
    CcPhase(QubitId, QubitId, QubitId, Angle),
    /// Swap two qubits.
    Swap(QubitId, QubitId),
}

impl Gate {
    /// The adjoint (inverse) gate.
    ///
    /// All gates in the set are self-adjoint except the rotations, which
    /// negate their angle.
    #[must_use]
    pub fn adjoint(&self) -> Gate {
        match *self {
            Gate::Phase(q, theta) => Gate::Phase(q, -theta),
            Gate::CPhase(c, t, theta) => Gate::CPhase(c, t, -theta),
            Gate::CcPhase(c1, c2, t, theta) => Gate::CcPhase(c1, c2, t, -theta),
            other => other,
        }
    }

    /// Calls `visit` on every operand qubit.
    pub fn for_each_qubit(&self, visit: &mut impl FnMut(QubitId)) {
        match *self {
            Gate::X(q) | Gate::Z(q) | Gate::H(q) | Gate::Phase(q, _) => visit(q),
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::CPhase(a, b, _) | Gate::Swap(a, b) => {
                visit(a);
                visit(b);
            }
            Gate::Ccx(a, b, c) | Gate::Ccz(a, b, c) | Gate::CcPhase(a, b, c, _) => {
                visit(a);
                visit(b);
                visit(c);
            }
        }
    }

    /// Returns the same gate with every operand qubit replaced by
    /// `f(qubit)`, preserving the gate family, operand order and angle.
    ///
    /// Executors that address storage through a remap table (the state
    /// vector's qubit-reclamation engine) use this to translate logical
    /// operands to physical bit positions without special-casing each gate
    /// family.
    #[must_use]
    pub fn map_qubits(&self, mut f: impl FnMut(QubitId) -> QubitId) -> Gate {
        match *self {
            Gate::X(q) => Gate::X(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::H(q) => Gate::H(f(q)),
            Gate::Phase(q, a) => Gate::Phase(f(q), a),
            Gate::Cx(c, t) => Gate::Cx(f(c), f(t)),
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
            Gate::Ccx(c1, c2, t) => Gate::Ccx(f(c1), f(c2), f(t)),
            Gate::Ccz(a, b, c) => Gate::Ccz(f(a), f(b), f(c)),
            Gate::CPhase(c, t, a) => Gate::CPhase(f(c), f(t), a),
            Gate::CcPhase(c1, c2, t, a) => Gate::CcPhase(f(c1), f(c2), f(t), a),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
        }
    }

    /// Whether the gate is a classical permutation of basis states: it
    /// maps every computational-basis state to another basis state with
    /// coefficient exactly `1`.
    ///
    /// Permutation gates (`X`, `CX`, `CCX`, `SWAP`) move amplitudes
    /// without any floating-point arithmetic, so any contiguous run of
    /// them composes into a single reversible index map that executors can
    /// apply in one sweep with *exactly* the bits of gate-by-gate
    /// execution — the property the permutation-fusion pass builds on.
    #[must_use]
    pub fn is_permutation(&self) -> bool {
        matches!(
            self,
            Gate::X(_) | Gate::Cx(..) | Gate::Ccx(..) | Gate::Swap(..)
        )
    }

    /// Whether the gate is diagonal in the computational basis.
    ///
    /// Diagonal gates commute with each other — the property Theorem 2.14
    /// exploits to reorder the rotations of `ΦADD` by common control.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z(_)
                | Gate::Phase(..)
                | Gate::Cz(..)
                | Gate::Ccz(..)
                | Gate::CPhase(..)
                | Gate::CcPhase(..)
        )
    }

    /// The number of operand qubits (1, 2 or 3).
    #[must_use]
    pub fn arity(&self) -> usize {
        let mut n = 0;
        self.for_each_qubit(&mut |_| n += 1);
        n
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::X(q) => write!(f, "X {q}"),
            Gate::Z(q) => write!(f, "Z {q}"),
            Gate::H(q) => write!(f, "H {q}"),
            Gate::Phase(q, a) => write!(f, "R({a}) {q}"),
            Gate::Cx(c, t) => write!(f, "CX {c} {t}"),
            Gate::Cz(a, b) => write!(f, "CZ {a} {b}"),
            Gate::Ccx(c1, c2, t) => write!(f, "CCX {c1} {c2} {t}"),
            Gate::Ccz(a, b, c) => write!(f, "CCZ {a} {b} {c}"),
            Gate::CPhase(c, t, a) => write!(f, "CR({a}) {c} {t}"),
            Gate::CcPhase(c1, c2, t, a) => write!(f, "CCR({a}) {c1} {c2} {t}"),
            Gate::Swap(a, b) => write!(f, "SWAP {a} {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn self_adjoint_gates() {
        for g in [
            Gate::X(q(0)),
            Gate::Z(q(0)),
            Gate::H(q(0)),
            Gate::Cx(q(0), q(1)),
            Gate::Cz(q(0), q(1)),
            Gate::Ccx(q(0), q(1), q(2)),
            Gate::Ccz(q(0), q(1), q(2)),
            Gate::Swap(q(0), q(1)),
        ] {
            assert_eq!(g.adjoint(), g, "{g}");
        }
    }

    #[test]
    fn rotation_adjoint_negates_angle() {
        let theta = Angle::turn_over_power_of_two(4);
        let g = Gate::CPhase(q(0), q(1), theta);
        assert_eq!(g.adjoint(), Gate::CPhase(q(0), q(1), -theta));
        assert_eq!(g.adjoint().adjoint(), g);
    }

    #[test]
    fn arity_counts_operands() {
        assert_eq!(Gate::H(q(0)).arity(), 1);
        assert_eq!(Gate::Cx(q(0), q(1)).arity(), 2);
        assert_eq!(Gate::Ccx(q(0), q(1), q(2)).arity(), 3);
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Cz(q(0), q(1)).is_diagonal());
        assert!(Gate::CcPhase(q(0), q(1), q(2), Angle::HALF_TURN).is_diagonal());
        assert!(!Gate::H(q(0)).is_diagonal());
        assert!(!Gate::Ccx(q(0), q(1), q(2)).is_diagonal());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Gate::Ccx(q(0), q(1), q(2)).to_string(), "CCX q0 q1 q2");
    }

    #[test]
    fn map_qubits_translates_every_operand() {
        let theta = Angle::turn_over_power_of_two(4);
        let shift = |q: QubitId| QubitId(q.0 + 10);
        let gates = [
            Gate::X(q(0)),
            Gate::H(q(1)),
            Gate::Phase(q(2), theta),
            Gate::Cx(q(0), q(1)),
            Gate::Ccz(q(0), q(1), q(2)),
            Gate::CcPhase(q(2), q(1), q(0), theta),
            Gate::Swap(q(1), q(2)),
        ];
        for g in &gates {
            let mapped = g.map_qubits(shift);
            let mut orig = Vec::new();
            g.for_each_qubit(&mut |qq| orig.push(qq.0 + 10));
            let mut got = Vec::new();
            mapped.for_each_qubit(&mut |qq| got.push(qq.0));
            assert_eq!(orig, got, "{g}");
            assert_eq!(mapped.map_qubits(|qq| QubitId(qq.0 - 10)), *g);
        }
    }
}
