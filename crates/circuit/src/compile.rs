//! Circuit compilation: lowering to a flat instruction stream plus peephole
//! optimisation passes.
//!
//! The interpreted executors walk the [`Op`] tree of a [`Circuit`] on every
//! run, recursing into [`Op::Conditional`] bodies and re-resolving structure
//! per shot. For ensemble workloads (thousands of seeded shots of the same
//! MBU modular adder) that walk is pure overhead. This module lowers a
//! circuit **once** into a [`CompiledCircuit`]: a contiguous [`Instr`]
//! stream in which conditional blocks become relative
//! [`Instr::BranchUnless`] skips, so execution is a single program-counter
//! loop over a flat slice shared immutably by any number of worker threads.
//!
//! The pipeline is `lower → passes → execute`:
//!
//! 1. **lower** — [`CompiledCircuit::lower`] validates the circuit and
//!    flattens nested conditionals into branch instructions. No gate is
//!    added, removed or reordered: a lowered program executes the exact same
//!    operation sequence as the interpreted tree walk.
//! 2. **passes** — [`CompiledCircuit::compile`] (or
//!    [`CompiledCircuit::with_config`] for explicit [`PassConfig`] control)
//!    additionally runs peephole passes over straight-line gate segments:
//!    * *adjacent self-inverse cancellation* — `X·X`, `H·H`, `CX·CX`,
//!      `CCX·CCX`, … pairs separated only by commuting gates are removed;
//!    * *rotation merging* — `R(θ₁)·R(θ₂) → R(θ₁+θ₂)` for `Phase`,
//!      `CPhase` and `CcPhase` on the same qubit set (exact dyadic
//!      [`Angle`](crate::Angle) arithmetic, so merging never drifts);
//!    * *identity elimination* — zero-angle rotations left over after
//!      merging are dropped;
//!    * *phase-dead elimination before measurement* (off by default, see
//!      [`PassConfig::phase_dead_before_measure`]) — single-qubit diagonal
//!      gates whose qubit is next consumed by a `Z`-basis measurement or a
//!      reset only contribute a global phase to the collapsed branch and
//!      can be dropped when callers accept global-phase equivalence;
//!    * *dead-qubit reclamation* (on by default, see
//!      [`PassConfig::reclaim_dead_qubits`]) — a liveness analysis that
//!      emits [`Instr::Drop`] for every qubit that was measured or reset
//!      and is never touched again, so compacting backends (the state
//!      vector) can release the qubit mid-run and halve their live
//!      amplitude array per drop — the paper's early-ancilla-release payoff
//!      made concrete in the execution engine;
//!    * *gate fusion* (on by default, see
//!      [`PassConfig::fuse_max_qubits`] and the `MBU_FUSION` environment
//!      variable) — merges maximal runs of adjacent gates whose combined
//!      support fits in `k ≤ `[`MAX_FUSED_QUBITS`] qubits into dense
//!      `2^k × 2^k` [`Instr::Fused`] unitaries ([`FusedUnitary`]), so an
//!      amplitude backend applies the whole run in **one sweep** over the
//!      state instead of one sweep per gate. Exact: executors apply the
//!      block in factored form, with per-amplitude arithmetic identical to
//!      the unfused stream.
//!
//!    Every pass records what it did in [`PassStats`].
//! 3. **execute** — the `mbu-sim` crate runs compiled programs through
//!    `Simulator::run_compiled`, and its `ShotRunner` lowers once and
//!    shares the immutable program across all shot worker threads.
//!
//! Passes never cross a *barrier*: measurements, resets, branch
//! instructions and branch join points all flush the peephole window, so an
//! optimised program is observationally equivalent to the original on every
//! control-flow path. For the default passes, equivalence is exact in the
//! algebra (identical classical records and measurement outcomes;
//! amplitudes equal up to floating-point re-association, since a cancelled
//! gate pair skips two rounding steps and a merged rotation evaluates one
//! `cis` instead of two); with phase-dead elimination enabled, states may
//! additionally differ by a global phase.
//!
//! # Dumping a compiled program
//!
//! [`CompiledCircuit`] implements [`fmt::Display`]; the dump lists every
//! instruction with its program counter, indents guarded blocks, and
//! renders branches with their join target, which makes mis-lowered control
//! flow obvious at a glance:
//!
//! ```
//! use mbu_circuit::{Basis, CircuitBuilder, CompiledCircuit};
//!
//! let mut b = CircuitBuilder::new();
//! let q = b.qreg("q", 3);
//! b.ccx(q[0], q[1], q[2]);
//! let m = b.measure(q[2], Basis::X);
//! let (_, fix) = b.record(|b| b.cz(q[0], q[1]));
//! b.emit_conditional(m, &fix);
//! let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
//! print!("{compiled}");
//! // compiled: 3 qubits, 1 clbits, 5 instrs (...)
//! //     0: CCX q0 q1 q2
//! //     1: MX q2 -> c0
//! //     2: drop q2
//! //     3: unless c0 jump 5
//! //     4:   CZ q0 q1
//! assert!(compiled.to_string().contains("unless c0 jump 5"));
//! assert!(compiled.to_string().contains("drop q2"));
//! ```
//!
//! [`PassStats`] implements [`fmt::Display`] too (it is embedded in the
//! dump header) and exposes per-pass counters as fields.

use std::fmt;

use crate::circuit::Circuit;
use crate::counts::GateCounts;
use crate::error::CircuitError;
use crate::gate::{Basis, Gate};
use crate::op::{ClbitId, Op, QubitId};

/// One instruction of a compiled program.
///
/// Unlike [`Op`], instructions never nest: conditional blocks are encoded
/// as a [`Instr::BranchUnless`] guarding a contiguous run of instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// Apply a unitary gate.
    Gate(Gate),
    /// Measure `qubit` in `basis`, storing the outcome in `clbit`.
    Measure {
        /// The measured qubit.
        qubit: QubitId,
        /// Measurement basis.
        basis: Basis,
        /// Classical record slot receiving the outcome.
        clbit: ClbitId,
    },
    /// Return `qubit` to `|0⟩` (measure-and-flip semantics).
    Reset(QubitId),
    /// Skip the next `skip` instructions unless classical bit `clbit`
    /// holds 1. Reading an unwritten bit is a runtime error, matching the
    /// interpreted executor.
    BranchUnless {
        /// The controlling classical bit.
        clbit: ClbitId,
        /// How many instructions the guarded block spans.
        skip: u32,
    },
    /// Reclaim `qubit`: the liveness pass proved no later instruction
    /// touches it, and the qubit was measured or reset at some point, so a
    /// backend that stores amplitudes may project the (definite,
    /// unentangled) qubit out of its state and compact — the
    /// measurement-based uncomputation payoff of releasing ancillas early.
    ///
    /// Semantically a no-op: executors without a compaction story (the
    /// basis tracker, the full-scan reference path) simply skip it, and
    /// compacting executors must be observationally invisible — identical
    /// outcomes, RNG consumption, executed counts and final state.
    Drop(QubitId),
    /// Apply the fused block stored at this index of the program's
    /// fused-unitary table ([`CompiledCircuit::fused_unitaries`]): a run
    /// of adjacent gates merged by the gate-fusion pass so an amplitude
    /// backend applies the whole run in a **single sweep** over the state
    /// instead of one sweep per gate. Dense blocks span `k ≤`
    /// [`MAX_FUSED_QUBITS`] qubits (a `2^k × 2^k` unitary); permutation
    /// blocks ([`FusedUnitary::is_permutation`]) carry no arithmetic and
    /// may span up to [`MAX_PERM_FUSED_QUBITS`] qubits.
    ///
    /// Executors without a dense kernel replay the block's constituent
    /// gates one by one ([`FusedUnitary::global_gates`]); either way the
    /// executed gate tally records every constituent, so fusion is
    /// invisible in [`Executed`](../mbu_sim/struct.Executed.html)-style
    /// statistics.
    Fused(u32),
}

/// Upper bound on the arity of a fused unitary block (`2^4 × 2^4` dense
/// matrices at most); [`PassConfig::fuse_max_qubits`] is clamped to this.
/// Permutation-only blocks (see [`FusedUnitary::is_permutation`]) are
/// exempt — they need no dense matrix and may span up to
/// [`MAX_PERM_FUSED_QUBITS`] qubits.
pub const MAX_FUSED_QUBITS: usize = 4;

/// Upper bound on the support of a fused *permutation* block. Executors
/// apply such blocks through a `2^k`-entry index-remap table, so the cap
/// bounds table memory (`2^16` entries) and per-execution build time, not
/// a dense matrix dimension.
pub const MAX_PERM_FUSED_QUBITS: usize = 16;

/// The default fusion window, overridable through the `MBU_FUSION`
/// environment variable (see [`PassConfig::default`]).
const DEFAULT_FUSE_QUBITS: usize = 3;

/// A run of adjacent gates merged into one dense unitary instruction.
///
/// The block stores its (ascending) global operand qubits and the
/// constituent gates re-indexed onto *local* operands `q0..qk` (local
/// qubit `j` is `qubits()[j]`). Keeping the factorisation — rather than
/// only the dense product matrix — is what lets executors apply the block
/// with arithmetic *bit-identical* to unfused execution: the dense matrix
/// is available from [`FusedUnitary::matrix`] for inspection and
/// verification, while kernels apply the factors to each gathered
/// `2^k`-amplitude group in one pass over the state.
#[derive(Clone, PartialEq, Debug)]
pub struct FusedUnitary {
    /// Ascending global operand qubits; local qubit `j` ↔ `qubits[j]`.
    qubits: Vec<QubitId>,
    /// The constituent gates, operands renamed to local indices.
    gates: Vec<Gate>,
}

impl FusedUnitary {
    /// Builds a block from its sorted support and the original gates.
    fn build(qubits: Vec<QubitId>, global_gates: &[Gate]) -> Self {
        debug_assert!(qubits.windows(2).all(|w| w[0] < w[1]), "support sorted");
        let gates = global_gates
            .iter()
            .map(|g| {
                g.map_qubits(|q| {
                    let local = qubits
                        .iter()
                        .position(|&s| s == q)
                        .expect("gate operand inside block support");
                    QubitId(u32::try_from(local).expect("local index fits u32"))
                })
            })
            .collect();
        Self { qubits, gates }
    }

    /// Test-only raw constructor for the static verifier's negative
    /// tests: builds a block *without* the well-formedness invariants the
    /// fusion pass guarantees (sorted support, in-range local operands).
    #[cfg(test)]
    pub(crate) fn raw(qubits: Vec<QubitId>, gates: Vec<Gate>) -> Self {
        Self { qubits, gates }
    }

    /// The global operand qubits, ascending.
    #[must_use]
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// The block arity `k` (the dense unitary is `2^k × 2^k`).
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// The constituent gates with *local* operands (`q0..qk`), in
    /// application order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The constituent gates with their original global operands, in
    /// application order — what executors without a dense kernel replay.
    pub fn global_gates(&self) -> impl Iterator<Item = Gate> + '_ {
        self.gates
            .iter()
            .map(move |g| g.map_qubits(|lq| self.qubits[lq.index()]))
    }

    /// Whether every constituent gate is a classical basis-state
    /// permutation ([`Gate::is_permutation`]).
    ///
    /// Such a block's unitary is a `0/1` permutation matrix: it only
    /// *moves* amplitudes, so executors may apply the composed index map
    /// in one sweep and still reproduce gate-by-gate execution bit for
    /// bit. Blocks of this kind may span up to [`MAX_PERM_FUSED_QUBITS`]
    /// qubits instead of [`MAX_FUSED_QUBITS`].
    #[must_use]
    pub fn is_permutation(&self) -> bool {
        self.gates.iter().all(Gate::is_permutation)
    }

    /// The dense `2^k × 2^k` unitary, row-major (`m[r * 2^k + c]` is
    /// `⟨r|U|c⟩` as `[re, im]`), computed as the ordered product of the
    /// constituent gates.
    ///
    /// Inspection/verification aid for *small* blocks: the matrix has
    /// `4^k` entries, so calling this on a wide permutation block (up to
    /// [`MAX_PERM_FUSED_QUBITS`] qubits) is prohibitively large — use
    /// [`FusedUnitary::gates`] or the executors' index-map application
    /// instead.
    #[must_use]
    pub fn matrix(&self) -> Vec<[f64; 2]> {
        let dim = 1usize << self.num_qubits();
        let mut m = vec![[0.0f64; 2]; dim * dim];
        let mut col = vec![[0.0f64; 2]; dim];
        for c in 0..dim {
            col.fill([0.0, 0.0]);
            col[c] = [1.0, 0.0];
            for g in &self.gates {
                apply_gate_to_column(&mut col, g);
            }
            for r in 0..dim {
                m[r * dim + c] = col[r];
            }
        }
        m
    }
}

/// Applies `g` (local operands) to a dense `2^k`-entry column vector,
/// using the same per-amplitude formulas as the simulator kernels.
fn apply_gate_to_column(col: &mut [[f64; 2]], g: &Gate) {
    const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
    let cmul = |a: [f64; 2], b: [f64; 2]| [a[0] * b[0] - a[1] * b[1], a[0] * b[1] + a[1] * b[0]];
    let cis = |theta: f64| [theta.cos(), theta.sin()];
    let bit = |i: usize, q: QubitId| i >> q.index() & 1 == 1;
    let len = col.len();
    match *g {
        Gate::X(q) => {
            for i in 0..len {
                if !bit(i, q) {
                    col.swap(i, i | 1 << q.index());
                }
            }
        }
        Gate::Z(q) => {
            for (i, a) in col.iter_mut().enumerate() {
                if bit(i, q) {
                    *a = [-a[0], -a[1]];
                }
            }
        }
        Gate::H(q) => {
            let m = 1usize << q.index();
            for i in 0..len {
                if i & m == 0 {
                    let a = col[i];
                    let b = col[i | m];
                    col[i] = [(a[0] + b[0]) * FRAC_1_SQRT_2, (a[1] + b[1]) * FRAC_1_SQRT_2];
                    col[i | m] = [(a[0] - b[0]) * FRAC_1_SQRT_2, (a[1] - b[1]) * FRAC_1_SQRT_2];
                }
            }
        }
        Gate::Phase(q, theta) => {
            let w = cis(theta.radians());
            for (i, a) in col.iter_mut().enumerate() {
                if bit(i, q) {
                    *a = cmul(*a, w);
                }
            }
        }
        Gate::Cx(c, t) => {
            for i in 0..len {
                if bit(i, c) && !bit(i, t) {
                    col.swap(i, i | 1 << t.index());
                }
            }
        }
        Gate::Cz(a, b) => {
            for (i, x) in col.iter_mut().enumerate() {
                if bit(i, a) && bit(i, b) {
                    *x = [-x[0], -x[1]];
                }
            }
        }
        Gate::Ccx(c1, c2, t) => {
            for i in 0..len {
                if bit(i, c1) && bit(i, c2) && !bit(i, t) {
                    col.swap(i, i | 1 << t.index());
                }
            }
        }
        Gate::Ccz(a, b, c) => {
            for (i, x) in col.iter_mut().enumerate() {
                if bit(i, a) && bit(i, b) && bit(i, c) {
                    *x = [-x[0], -x[1]];
                }
            }
        }
        Gate::CPhase(c, t, theta) => {
            let w = cis(theta.radians());
            for (i, a) in col.iter_mut().enumerate() {
                if bit(i, c) && bit(i, t) {
                    *a = cmul(*a, w);
                }
            }
        }
        Gate::CcPhase(c1, c2, t, theta) => {
            let w = cis(theta.radians());
            for (i, a) in col.iter_mut().enumerate() {
                if bit(i, c1) && bit(i, c2) && bit(i, t) {
                    *a = cmul(*a, w);
                }
            }
        }
        Gate::Swap(a, b) => {
            let mask = (1usize << a.index()) | (1usize << b.index());
            for i in 0..len {
                if bit(i, a) && !bit(i, b) {
                    col.swap(i, i ^ mask);
                }
            }
        }
    }
}

/// Which peephole passes [`CompiledCircuit::with_config`] runs.
///
/// The default configuration ([`PassConfig::default`], used by
/// [`CompiledCircuit::compile`]) enables every *algebraically exact* pass:
/// the optimised program produces identical classical records and
/// measurement outcomes, and amplitudes equal to the unoptimised program's
/// up to floating-point re-association (removed gates skip their rounding
/// steps). Only [`CompiledCircuit::lower`] — no passes — is bit-exact.
/// [`PassConfig::phase_dead_before_measure`] additionally
/// drops gates that only affect the global phase of post-measurement
/// states; enable it with [`PassConfig::aggressive`] when global-phase
/// equivalence is acceptable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PassConfig {
    /// Cancel adjacent pairs of identical self-inverse gates.
    pub cancel_self_inverse: bool,
    /// Merge adjacent rotations on the same qubit set.
    pub merge_rotations: bool,
    /// Drop zero-angle rotations.
    pub remove_identities: bool,
    /// Drop single-qubit diagonal gates (`Z`, `Phase`) whose qubit is next
    /// consumed by a `Z`-basis measurement or reset. **Not exact**: the
    /// post-measurement state may differ by a global phase (measurement
    /// probabilities and outcomes are untouched).
    pub phase_dead_before_measure: bool,
    /// Run the liveness analysis that emits [`Instr::Drop`] for qubits
    /// that were measured (or reset) and are provably never touched again,
    /// letting compacting backends reclaim them mid-run. Observationally
    /// invisible (drops are advisory); on by default.
    pub reclaim_dead_qubits: bool,
    /// The gate-fusion window: merge runs of adjacent gates whose combined
    /// support spans at most this many qubits into one dense
    /// [`Instr::Fused`] unitary (clamped to [`MAX_FUSED_QUBITS`]; `0`
    /// disables the pass). Fusion is exact — backends apply the block with
    /// per-amplitude arithmetic identical to the unfused stream — so it is
    /// on by default (window 3, covering every gate family in the set),
    /// unless the `MBU_FUSION` environment variable overrides it: `0`,
    /// `off`, `false` or `no` disables fusion process-wide, a positive
    /// integer replaces the window.
    pub fuse_max_qubits: usize,
}

/// The process-wide fusion default: window [`DEFAULT_FUSE_QUBITS`] unless
/// the `MBU_FUSION` environment variable overrides it, resolved through
/// the shared [`knobs`](crate::knobs) policy — off tokens disable, integer
/// values pin (clamped to [`MAX_FUSED_QUBITS`]), and garbage warns once
/// instead of silently meaning "the default". Read once (compile sits in
/// shot-setup paths) and only consulted by [`PassConfig::default`];
/// explicit configs always win.
fn fuse_default() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        crate::knobs::window(
            "MBU_FUSION",
            std::env::var("MBU_FUSION").ok().as_deref(),
            DEFAULT_FUSE_QUBITS,
            MAX_FUSED_QUBITS,
        )
    })
}

impl Default for PassConfig {
    fn default() -> Self {
        Self {
            cancel_self_inverse: true,
            merge_rotations: true,
            remove_identities: true,
            phase_dead_before_measure: false,
            reclaim_dead_qubits: true,
            fuse_max_qubits: fuse_default(),
        }
    }
}

impl PassConfig {
    /// No passes at all: `with_config` behaves like [`CompiledCircuit::lower`].
    #[must_use]
    pub fn none() -> Self {
        Self {
            cancel_self_inverse: false,
            merge_rotations: false,
            remove_identities: false,
            phase_dead_before_measure: false,
            reclaim_dead_qubits: false,
            fuse_max_qubits: 0,
        }
    }

    /// Every pass, including the global-phase-inexact one.
    #[must_use]
    pub fn aggressive() -> Self {
        Self {
            phase_dead_before_measure: true,
            ..Self::default()
        }
    }

    /// Whether any peephole pass is enabled (the reclamation pass runs
    /// separately, after the peephole window).
    #[must_use]
    pub fn any(&self) -> bool {
        self.cancel_self_inverse
            || self.merge_rotations
            || self.remove_identities
            || self.phase_dead_before_measure
    }
}

/// Per-pass statistics of one compilation.
///
/// All counters are in *instructions*: a cancelled pair contributes 2 to
/// [`PassStats::cancelled`], a merge that folds two rotations into one
/// contributes 1 to [`PassStats::merged`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PassStats {
    /// Instructions in the stream right after lowering, before any pass.
    pub lowered_instrs: usize,
    /// Gates removed by self-inverse cancellation.
    pub cancelled: u64,
    /// Rotations eliminated by merging into a neighbour.
    pub merged: u64,
    /// Zero-angle rotations dropped.
    pub identities_removed: u64,
    /// Diagonal gates dropped as phase-dead before a measurement/reset.
    pub phase_dead_removed: u64,
    /// Qubits for which the liveness pass emitted an [`Instr::Drop`]:
    /// measured (or reset) at some point and never touched afterwards.
    pub dead_qubits_reclaimed: u64,
    /// Dense [`Instr::Fused`] blocks emitted by the gate-fusion pass.
    pub fused_blocks: u64,
    /// Gates absorbed into fused blocks (each emitted block absorbs at
    /// least two).
    pub fused_gates: u64,
    /// Instructions in the final program.
    pub emitted_instrs: usize,
    /// Deterministic segments in the final program: maximal runs of
    /// unitary instructions between non-unitary barriers
    /// (measurement/reset/drop/branch) and branch join points — the units
    /// the branch-tree execution engine shares across measurement
    /// histories. See [`CompiledCircuit::segments`].
    pub segments: usize,
    /// Non-deterministic instructions (measurements and resets): the
    /// points where an execution trajectory can fork, bounding the branch
    /// tree at `2^fork_points` leaves.
    pub fork_points: usize,
    /// Segments the representation planner maps to the dense amplitude
    /// array at the default thresholds
    /// ([`DEFAULT_AUTO_DENSE_QUBITS`](crate::DEFAULT_AUTO_DENSE_QUBITS),
    /// [`DEFAULT_AUTO_SPARSITY`](crate::DEFAULT_AUTO_SPARSITY)); see
    /// [`CompiledCircuit::representation_plan`].
    pub planned_dense: usize,
    /// Segments the representation planner maps to the sparse key→amplitude
    /// map at the default thresholds.
    pub planned_sparse: usize,
    /// Segments the representation planner maps to the phase-accumulator
    /// representation at the default thresholds (diagonal-heavy blow-ups
    /// past the dense width cap).
    pub planned_phase: usize,
    /// Whether the careful-profile static verifier ran clean on the
    /// final program (see `mbu_circuit::verify`): every pass stage passed
    /// the well-formedness validator and the finished program passed the
    /// stats/plan coherence checks.
    pub verified: bool,
    /// Whether static verification was compiled out (release builds
    /// without debug assertions). Exactly one of
    /// [`verified`](PassStats::verified) and `verify_skipped` is set for
    /// a successful compile.
    pub verify_skipped: bool,
}

impl PassStats {
    /// Total instructions removed by all passes.
    #[must_use]
    pub fn removed(&self) -> u64 {
        self.cancelled + self.merged + self.identities_removed + self.phase_dead_removed
    }
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lowered {} instrs; cancelled {}, merged {}, identities {}, phase-dead {}, \
             reclaimed {}, fused {} gates into {} blocks; emitted {} \
             ({} segments, {} fork points; planned {} dense / {} sparse / {} phase)",
            self.lowered_instrs,
            self.cancelled,
            self.merged,
            self.identities_removed,
            self.phase_dead_removed,
            self.dead_qubits_reclaimed,
            self.fused_gates,
            self.fused_blocks,
            self.emitted_instrs,
            self.segments,
            self.fork_points,
            self.planned_dense,
            self.planned_sparse,
            self.planned_phase
        )?;
        if self.verified {
            write!(f, "; verified")?;
        } else if self.verify_skipped {
            write!(f, "; verify skipped")?;
        }
        Ok(())
    }
}

/// A circuit lowered to a flat, pre-validated instruction stream.
///
/// Produced by [`CompiledCircuit::lower`] (no passes),
/// [`CompiledCircuit::compile`] (exact default passes) or
/// [`CompiledCircuit::with_config`]. Compilation validates the circuit, so
/// executors may assume every qubit and classical-bit reference is in
/// range and every gate has distinct operands.
///
/// # Examples
///
/// ```
/// use mbu_circuit::{Basis, CircuitBuilder, CompiledCircuit, Instr};
///
/// // Gidney AND-uncompute: measure, then a conditional fix-up block.
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 3);
/// b.h(q[2]);
/// let m = b.measure(q[2], Basis::Z);
/// let (_, fix) = b.record(|b| {
///     b.cz(q[0], q[1]);
///     b.x(q[2]);
/// });
/// b.emit_conditional(m, &fix);
/// let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
///
/// // The conditional became a branch over a contiguous block, and the
/// // measured-then-dead ancilla is released at the join.
/// assert!(matches!(
///     compiled.instrs()[2],
///     Instr::BranchUnless { skip: 2, .. }
/// ));
/// assert!(matches!(compiled.instrs().last(), Some(Instr::Drop(_))));
/// println!("{compiled}"); // dump the program for debugging
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledCircuit {
    num_qubits: usize,
    num_clbits: usize,
    instrs: Vec<Instr>,
    /// Dense unitary blocks referenced by [`Instr::Fused`] indices.
    fused: Vec<FusedUnitary>,
    stats: PassStats,
}

impl CompiledCircuit {
    /// Lowers `circuit` to a flat instruction stream without running any
    /// optimisation pass. The lowered program executes the exact operation
    /// sequence of the interpreted tree walk.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] found by
    /// [`Circuit::validate`] — compiled programs are always well-formed.
    pub fn lower(circuit: &Circuit) -> Result<Self, CircuitError> {
        Self::with_config(circuit, &PassConfig::none())
    }

    /// Lowers `circuit` and runs the default (exact) peephole passes.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] found by [`Circuit::validate`].
    pub fn compile(circuit: &Circuit) -> Result<Self, CircuitError> {
        Self::with_config(circuit, &PassConfig::default())
    }

    /// Lowers `circuit` and runs exactly the passes enabled in `config`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] found by [`Circuit::validate`].
    pub fn with_config(circuit: &Circuit, config: &PassConfig) -> Result<Self, CircuitError> {
        circuit.validate()?;
        // Under the careful profile (debug assertions on) every pipeline
        // stage is gated by the static verifier: a pass that emits a
        // malformed stream fails the compile at that pass, not at
        // execution time. `expect_valid_stage` is a no-op in plain
        // release builds.
        let nq = circuit.num_qubits();
        let nc = circuit.num_clbits();
        let mut instrs = Vec::new();
        flatten(circuit.ops(), &mut instrs);
        crate::verify::expect_valid_stage("lower", nq, nc, &instrs, &[])?;
        let mut stats = PassStats {
            lowered_instrs: instrs.len(),
            ..PassStats::default()
        };
        if config.any() {
            instrs = run_passes(instrs, config, &mut stats);
            crate::verify::expect_valid_stage("peephole", nq, nc, &instrs, &[])?;
        }
        let mut fused = Vec::new();
        if config.fuse_max_qubits > 0 {
            (instrs, fused) = fuse_gates(instrs, config.fuse_max_qubits, &mut stats);
            crate::verify::expect_valid_stage("fusion", nq, nc, &instrs, &fused)?;
        }
        if config.reclaim_dead_qubits {
            instrs = reclaim_dead_qubits(instrs, circuit.num_qubits(), &mut stats, &fused);
            crate::verify::expect_valid_stage("reclamation", nq, nc, &instrs, &fused)?;
        }
        stats.emitted_instrs = instrs.len();
        let mut compiled = Self {
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            instrs,
            fused,
            stats,
        };
        compiled.stats.segments = compiled.segments().len();
        compiled.stats.fork_points = compiled.fork_points();
        let plan = compiled.representation_plan(&crate::plan::PlanConfig::default());
        compiled.stats.planned_dense = plan
            .iter()
            .filter(|r| matches!(r, crate::plan::PlannedRepr::Dense))
            .count();
        compiled.stats.planned_phase = plan
            .iter()
            .filter(|r| matches!(r, crate::plan::PlannedRepr::Phase))
            .count();
        compiled.stats.planned_sparse =
            plan.len() - compiled.stats.planned_dense - compiled.stats.planned_phase;
        // Final gate: with the stats now describing the finished program,
        // run the full validator (stream + stats + plan coherence).
        if cfg!(debug_assertions) {
            if let Some(finding) = crate::verify::validate_compiled(&compiled)
                .into_iter()
                .next()
            {
                return Err(CircuitError::VerificationFailed {
                    pass: "finalise",
                    finding: finding.to_string(),
                });
            }
            compiled.stats.verified = true;
        } else {
            compiled.stats.verify_skipped = true;
        }
        Ok(compiled)
    }

    /// The number of qubits of the source circuit.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of classical bits of the source circuit.
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The instruction stream, in program order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The dense unitary blocks the gate-fusion pass emitted, indexed by
    /// [`Instr::Fused`] payloads.
    #[must_use]
    pub fn fused_unitaries(&self) -> &[FusedUnitary] {
        &self.fused
    }

    /// What the peephole passes did to this program.
    #[must_use]
    pub fn stats(&self) -> &PassStats {
        &self.stats
    }

    /// Worst-case gate counts of the compiled program (guarded blocks at
    /// full weight), comparable with [`Circuit::counts`] to quantify what
    /// the passes removed.
    #[must_use]
    pub fn counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for instr in &self.instrs {
            match instr {
                Instr::Gate(g) => counts.record_gate(g),
                Instr::Measure { basis, .. } => counts.record_measurement(*basis),
                Instr::Reset(_) => counts.reset += 1,
                // A fused block costs exactly its constituents (counts
                // only tally the gate family, which local renaming keeps).
                Instr::Fused(idx) => {
                    for g in self.fused[*idx as usize].gates() {
                        counts.record_gate(g);
                    }
                }
                Instr::BranchUnless { .. } | Instr::Drop(_) => {}
            }
        }
        counts
    }

    /// Whether the program contains any [`Instr::Drop`] — i.e. whether the
    /// reclamation pass found dead qubits a compacting backend can release.
    #[must_use]
    pub fn reclaims_qubits(&self) -> bool {
        self.stats.dead_qubits_reclaimed > 0
    }

    /// The deterministic segmentation of the program: maximal runs of
    /// *unitary* instructions ([`Instr::Gate`] / [`Instr::Fused`]) cut at
    /// every non-unitary barrier (measurement, reset, drop, branch) and at
    /// every branch join target.
    ///
    /// Two properties make the segmentation the substrate of branch-tree
    /// execution:
    ///
    /// * **determinism** — a segment contains no instruction that consumes
    ///   randomness or classical state, so its effect on a given input
    ///   state is a fixed unitary: executing it once per *measurement
    ///   history* (instead of once per shot) is exact;
    /// * **alignment** — every program point the executor can land on (the
    ///   instruction after a barrier, or a branch's join target) is a
    ///   segment start, so a program-counter walk always enters segments
    ///   at their beginning and can apply a whole segment without
    ///   re-dispatching on control flow.
    #[must_use]
    pub fn segments(&self) -> Vec<Segment> {
        let n = self.instrs.len();
        // Branch join targets cut runs: the instructions before and after
        // a join execute under different guard conditions.
        let mut join = vec![false; n + 1];
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Instr::BranchUnless { skip, .. } = instr {
                join[pc + 1 + *skip as usize] = true;
            }
        }
        let mut segments = Vec::new();
        let mut start: Option<usize> = None;
        for (pc, instr) in self.instrs.iter().enumerate() {
            let unitary = matches!(instr, Instr::Gate(_) | Instr::Fused(_));
            if join[pc] || !unitary {
                if let Some(s) = start.take() {
                    segments.push(Segment { start: s, end: pc });
                }
            }
            if unitary && start.is_none() {
                start = Some(pc);
            }
        }
        if let Some(s) = start {
            segments.push(Segment { start: s, end: n });
        }
        segments
    }

    /// How many instructions of the program can fork an execution
    /// trajectory: measurements and resets (the only instructions that
    /// consume randomness). Branches and drops are deterministic given the
    /// classical record, so the branch tree has at most `2^fork_points`
    /// leaves.
    #[must_use]
    pub fn fork_points(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Measure { .. } | Instr::Reset(_)))
            .count()
    }
}

/// One deterministic segment of a compiled program: the instruction range
/// `start..end` holds only unitary instructions ([`Instr::Gate`] /
/// [`Instr::Fused`]). Produced by [`CompiledCircuit::segments`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Segment {
    /// First instruction of the run (inclusive).
    pub start: usize,
    /// One past the last instruction of the run (exclusive).
    pub end: usize,
}

impl fmt::Display for CompiledCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compiled: {} qubits, {} clbits, {} instrs ({})",
            self.num_qubits,
            self.num_clbits,
            self.instrs.len(),
            self.stats
        )?;
        // Indent instructions by their guard depth so conditional bodies
        // read like the interpreted tree.
        let mut guard_ends: Vec<usize> = Vec::new();
        for (pc, instr) in self.instrs.iter().enumerate() {
            guard_ends.retain(|&end| end > pc);
            let indent = 2 * guard_ends.len();
            match instr {
                Instr::Gate(g) => writeln!(f, "{pc:5}: {:indent$}{g}", "")?,
                Instr::Measure {
                    qubit,
                    basis,
                    clbit,
                } => writeln!(f, "{pc:5}: {:indent$}M{basis} {qubit} -> {clbit}", "")?,
                Instr::Reset(q) => writeln!(f, "{pc:5}: {:indent$}reset {q}", "")?,
                Instr::Drop(q) => writeln!(f, "{pc:5}: {:indent$}drop {q}", "")?,
                Instr::Fused(idx) => {
                    let fu = &self.fused[*idx as usize];
                    write!(f, "{pc:5}: {:indent$}fused[{idx}]", "")?;
                    for q in fu.qubits() {
                        write!(f, " {q}")?;
                    }
                    writeln!(f, " ({} gates)", fu.gates().len())?;
                }
                Instr::BranchUnless { clbit, skip } => {
                    let target = pc + 1 + *skip as usize;
                    writeln!(f, "{pc:5}: {:indent$}unless {clbit} jump {target}", "")?;
                    guard_ends.push(target);
                }
            }
        }
        // The representation planner's view of the program, one row per
        // deterministic segment, at the default thresholds.
        for (i, profile) in self.segment_profiles().iter().enumerate() {
            let repr = crate::plan::plan_segment(
                self.num_qubits,
                profile,
                &crate::plan::PlanConfig::default(),
            );
            writeln!(f, "segment[{i}]: {profile} \u{2192} {repr}")?;
        }
        Ok(())
    }
}

/// Recursively flattens an op tree into `out`, encoding conditionals as
/// relative branches over their (contiguous) bodies.
fn flatten(ops: &[Op], out: &mut Vec<Instr>) {
    for op in ops {
        match op {
            Op::Gate(g) => out.push(Instr::Gate(*g)),
            Op::Measure {
                qubit,
                basis,
                clbit,
            } => out.push(Instr::Measure {
                qubit: *qubit,
                basis: *basis,
                clbit: *clbit,
            }),
            Op::Reset(q) => out.push(Instr::Reset(*q)),
            Op::Conditional { clbit, ops } => {
                let at = out.len();
                out.push(Instr::BranchUnless {
                    clbit: *clbit,
                    skip: 0,
                });
                flatten(ops, out);
                let skip = u32::try_from(out.len() - at - 1)
                    .expect("conditional body exceeds u32::MAX instructions");
                out[at] = Instr::BranchUnless {
                    clbit: *clbit,
                    skip,
                };
            }
        }
    }
}

/// Whether `g` is its own inverse (so an identical adjacent copy cancels).
fn self_inverse(g: &Gate) -> bool {
    matches!(
        g,
        Gate::X(_)
            | Gate::Z(_)
            | Gate::H(_)
            | Gate::Cx(..)
            | Gate::Cz(..)
            | Gate::Ccx(..)
            | Gate::Ccz(..)
            | Gate::Swap(..)
    )
}

/// Whether `g` and `h` denote the same unitary, treating operand order of
/// symmetric gates (`CZ`, `CCZ`, `SWAP`, rotations controlled on a set, the
/// Toffoli control pair) as irrelevant.
fn same_unitary(g: &Gate, h: &Gate) -> bool {
    use Gate::{Ccx, Ccz, Cz, Swap};
    match (*g, *h) {
        (Cz(a1, b1), Cz(a2, b2)) | (Swap(a1, b1), Swap(a2, b2)) => {
            (a1, b1) == (a2, b2) || (a1, b1) == (b2, a2)
        }
        (Ccz(a1, b1, c1), Ccz(a2, b2, c2)) => set3(a1, b1, c1) == set3(a2, b2, c2),
        (Ccx(a1, b1, t1), Ccx(a2, b2, t2)) => {
            t1 == t2 && ((a1, b1) == (a2, b2) || (a1, b1) == (b2, a2))
        }
        _ => g == h,
    }
}

/// The three operands as a sorted triple (all-symmetric gates).
fn set3(a: QubitId, b: QubitId, c: QubitId) -> (QubitId, QubitId, QubitId) {
    let mut v = [a, b, c];
    v.sort_unstable();
    (v[0], v[1], v[2])
}

/// If `g` and `h` are rotations of the same family on the same qubit set,
/// the merged rotation (angles added exactly). Pairs whose exact sum does
/// not fit the dyadic representation (see [`Angle::checked_add`]) are left
/// unmerged rather than approximated.
fn merge_rotations(g: &Gate, h: &Gate) -> Option<Gate> {
    use Gate::{CPhase, CcPhase, Phase};
    match (*g, *h) {
        (Phase(q1, a1), Phase(q2, a2)) if q1 == q2 => a1.checked_add(a2).map(|a| Phase(q1, a)),
        (CPhase(c1, t1, a1), CPhase(c2, t2, a2))
            if (c1, t1) == (c2, t2) || (c1, t1) == (t2, c2) =>
        {
            a1.checked_add(a2).map(|a| CPhase(c1, t1, a))
        }
        (CcPhase(x1, y1, z1, a1), CcPhase(x2, y2, z2, a2))
            if set3(x1, y1, z1) == set3(x2, y2, z2) =>
        {
            a1.checked_add(a2).map(|a| CcPhase(x1, y1, z1, a))
        }
        _ => None,
    }
}

/// A rotation whose angle reduced to zero (the identity).
fn is_identity(g: &Gate) -> bool {
    matches!(
        g,
        Gate::Phase(_, a) | Gate::CPhase(_, _, a) | Gate::CcPhase(_, _, _, a) if a.is_zero()
    )
}

/// Whether the peephole scan may step over `f` while looking for a partner
/// of `g`: sound when the two commute, which we certify either by disjoint
/// qubit support or by both being diagonal.
fn commutes(f: &Gate, g: &Gate) -> bool {
    if f.is_diagonal() && g.is_diagonal() {
        return true;
    }
    let mut disjoint = true;
    f.for_each_qubit(&mut |qf| {
        g.for_each_qubit(&mut |qg| {
            if qf == qg {
                disjoint = false;
            }
        });
    });
    disjoint
}

/// Runs the enabled passes over the lowered stream.
fn run_passes(instrs: Vec<Instr>, config: &PassConfig, stats: &mut PassStats) -> Vec<Instr> {
    // Branch join points are barriers: a gate after the join executes on
    // every path, a gate inside the guarded block only sometimes, so the
    // peephole window must not span the boundary.
    let mut barrier = vec![false; instrs.len() + 1];
    for (pc, instr) in instrs.iter().enumerate() {
        if let Instr::BranchUnless { skip, .. } = instr {
            barrier[pc + 1 + *skip as usize] = true;
        }
    }

    // Slots: None = removed. Process straight-line gate segments.
    let mut slots: Vec<Option<Instr>> = instrs.into_iter().map(Some).collect();
    let mut start = 0;
    for pc in 0..=slots.len() {
        let is_gate = pc < slots.len() && matches!(slots[pc], Some(Instr::Gate(_)));
        if !is_gate || barrier[pc] {
            if pc > start {
                optimize_segment(&mut slots[start..pc], config, stats);
            }
            start = pc + 1;
            if is_gate && barrier[pc] {
                start = pc; // the gate at `pc` opens the next segment
            }
        }
    }

    if config.phase_dead_before_measure {
        eliminate_phase_dead(&mut slots, &barrier, stats);
    }

    compact_slots(&slots)
}

/// Compacts removed (`None`) slots, recomputing branch skips over the
/// surviving instructions (branches themselves are never removed, so
/// guarded regions stay contiguous and only shrink).
fn compact_slots(slots: &[Option<Instr>]) -> Vec<Instr> {
    let mut surviving = vec![0usize; slots.len() + 1];
    for (i, slot) in slots.iter().enumerate() {
        surviving[i + 1] = surviving[i] + usize::from(slot.is_some());
    }
    let mut out = Vec::with_capacity(surviving[slots.len()]);
    for (i, slot) in slots.iter().enumerate() {
        match slot {
            None => {}
            Some(Instr::BranchUnless { clbit, skip }) => {
                let end = i + 1 + *skip as usize;
                let new_skip = u32::try_from(surviving[end] - surviving[i + 1])
                    .expect("skip shrank below u32::MAX");
                out.push(Instr::BranchUnless {
                    clbit: *clbit,
                    skip: new_skip,
                });
            }
            Some(instr) => out.push(*instr),
        }
    }
    out
}

/// The estimated amplitude-array traffic of one unfused kernel sweep for
/// `g`, in eighths of a full read+write pass: `H` touches every
/// amplitude, a CNOT or SWAP half of them, a Toffoli a quarter; diagonal
/// sweeps touch their pinned subspace; `X` is a free bit-flip-frame
/// toggle in the compiled engine and costs nothing.
fn fusion_weight(g: &Gate) -> u32 {
    match g {
        Gate::X(_) => 0,
        Gate::H(_) => 8,
        Gate::Cx(..) | Gate::Swap(..) | Gate::Z(_) | Gate::Phase(..) => 4,
        Gate::Ccx(..) | Gate::Cz(..) | Gate::CPhase(..) => 2,
        Gate::Ccz(..) | Gate::CcPhase(..) => 1,
    }
}

/// Minimum summed [`fusion_weight`] for a dense block to be emitted: a
/// fused block costs one full read+write pass over the array (plus small
/// per-group overhead), so fusing only pays when the gates it replaces
/// would have cost measurably more — 12 eighths = 1.5 passes. Below the
/// bar the gates stay plain (individual subspace sweeps are cheap and
/// vectorised). An `H`+`CX` pair (1.5 passes) is exactly at the bar — the
/// Bell/MBU-correction shape fuses.
const FUSE_MIN_WEIGHT: u32 = 12;

/// Minimum summed [`fusion_weight`] for a *permutation* block: applying
/// the composed index map costs about one sequential write pass plus one
/// gathered read pass (≈ 2 full passes, 16 eighths) plus the remap-table
/// build, so the bar sits at 3 passes — a CDKPM `MAJ` ladder of three
/// `MAJ` cells (weight 30) clears it comfortably, a lone `MAJ` (weight
/// 10) stays unfused.
const PERM_FUSE_MIN_WEIGHT: u32 = 24;

/// One greedy fusion sweep over `slots`: merges maximal runs of adjacent
/// gates accepted by `admit` whose combined support fits in `window`
/// qubits into [`Instr::Fused`] blocks appended to `table`. Runs never
/// cross a `barrier[pc]`, a non-gate slot, or a gate `admit` rejects;
/// blocks below `min_weight` (summed [`fusion_weight`]) are left plain.
fn greedy_fuse(
    slots: &mut [Option<Instr>],
    barrier: &[bool],
    table: &mut Vec<FusedUnitary>,
    stats: &mut PassStats,
    window: usize,
    min_weight: u32,
    admit: impl Fn(&Gate) -> bool,
) {
    // The open block: member slot indices and their combined support.
    let mut block: Vec<usize> = Vec::new();
    let mut support: Vec<QubitId> = Vec::new();

    fn flush(
        slots: &mut [Option<Instr>],
        table: &mut Vec<FusedUnitary>,
        block: &mut Vec<usize>,
        support: &mut Vec<QubitId>,
        stats: &mut PassStats,
        min_weight: u32,
    ) {
        let gate_at = |i: usize| match slots[i] {
            Some(Instr::Gate(g)) => g,
            _ => unreachable!("fusion blocks hold gate slots"),
        };
        let weight: u32 = block.iter().map(|&i| fusion_weight(&gate_at(i))).sum();
        if block.len() >= 2 && weight >= min_weight {
            let gates: Vec<Gate> = block.iter().map(|&i| gate_at(i)).collect();
            support.sort_unstable();
            let idx = u32::try_from(table.len()).expect("fused table fits u32 indices");
            table.push(FusedUnitary::build(support.clone(), &gates));
            slots[block[0]] = Some(Instr::Fused(idx));
            for &i in &block[1..] {
                slots[i] = None;
            }
            stats.fused_blocks += 1;
            stats.fused_gates += block.len() as u64;
        }
        block.clear();
        support.clear();
    }

    for pc in 0..slots.len() {
        if barrier[pc] {
            flush(slots, table, &mut block, &mut support, stats, min_weight);
        }
        match slots[pc] {
            Some(Instr::Gate(g)) if admit(&g) => {
                let mut union = support.clone();
                g.for_each_qubit(&mut |q| {
                    if !union.contains(&q) {
                        union.push(q);
                    }
                });
                if union.len() <= window {
                    support = union;
                    block.push(pc);
                } else {
                    flush(slots, table, &mut block, &mut support, stats, min_weight);
                    g.for_each_qubit(&mut |q| {
                        if !support.contains(&q) {
                            support.push(q);
                        }
                    });
                    if support.len() <= window {
                        block.push(pc);
                    } else {
                        // Wider than the window on its own: leave plain.
                        support.clear();
                    }
                }
            }
            _ => flush(slots, table, &mut block, &mut support, stats, min_weight),
        }
    }
    flush(slots, table, &mut block, &mut support, stats, min_weight);
}

/// The gate-fusion pass, two greedy stages over the same stream:
///
/// 1. **Permutation runs** — maximal runs of adjacent basis-permutation
///    gates ([`Gate::is_permutation`]: `X`, `CX`, `CCX`, `SWAP`) whose
///    combined support fits in [`MAX_PERM_FUSED_QUBITS`] qubits. Adder
///    ladders (`MAJ`/`UMA` cells) are exactly this shape, and the block's
///    composed action is a reversible index map executors apply in a
///    single sweep with zero arithmetic — so the support cap is a table
///    size, not a dense-matrix arity.
/// 2. **Dense windows** — the remaining runs of adjacent gates (any
///    family) whose support fits in `max_qubits ≤` [`MAX_FUSED_QUBITS`]
///    qubits, applied by backends as gathered local `2^k` groups.
///
/// Like the peephole window, fusion never crosses a barrier (measurement,
/// reset, drop, branch or branch join), and it never reorders gates —
/// only contiguous runs merge, so each block's product unitary is exactly
/// the program's. Blocks that would not save array traffic (summed
/// [`fusion_weight`] below [`PERM_FUSE_MIN_WEIGHT`] /
/// [`FUSE_MIN_WEIGHT`]) are left unfused; light gates (diagonals in dense
/// blocks, `X` in either) ride along inside emitted blocks for free.
fn fuse_gates(
    instrs: Vec<Instr>,
    max_qubits: usize,
    stats: &mut PassStats,
) -> (Vec<Instr>, Vec<FusedUnitary>) {
    let mut barrier = vec![false; instrs.len() + 1];
    for (pc, instr) in instrs.iter().enumerate() {
        if let Instr::BranchUnless { skip, .. } = instr {
            barrier[pc + 1 + *skip as usize] = true;
        }
    }

    let mut slots: Vec<Option<Instr>> = instrs.into_iter().map(Some).collect();
    let mut table: Vec<FusedUnitary> = Vec::new();
    greedy_fuse(
        &mut slots,
        &barrier,
        &mut table,
        stats,
        MAX_PERM_FUSED_QUBITS,
        PERM_FUSE_MIN_WEIGHT,
        Gate::is_permutation,
    );
    greedy_fuse(
        &mut slots,
        &barrier,
        &mut table,
        stats,
        max_qubits.min(MAX_FUSED_QUBITS),
        FUSE_MIN_WEIGHT,
        |_| true,
    );

    (compact_slots(&slots), table)
}

/// Liveness analysis for qubit reclamation: for every qubit that is
/// measured (or reset) at least once and never touched after some program
/// point, emit an [`Instr::Drop`] at the earliest *top-level* point past
/// its last reference.
///
/// The measured-or-reset requirement is what ties the pass to the paper:
/// measurement is the compiler-visible signal that a qubit was put through
/// a collapse (MBU garbage, Gidney AND ancillas, comparison flags), after
/// which the MBU protocols leave it in a definite product state the
/// backend can verify and factor out. Dead qubits that were never measured
/// (e.g. unitarily uncomputed ancillas) get no drop — the compiler has no
/// evidence they are disentangled, which is exactly the qubit-release
/// asymmetry between §3's unitary and §4's measurement-based uncomputation.
///
/// Drops are only inserted at guard depth 0 so they execute on every
/// control-flow path, and a top-level insertion point never lies inside a
/// branch's skip region, so no branch offset needs fixing up.
fn reclaim_dead_qubits(
    instrs: Vec<Instr>,
    num_qubits: usize,
    stats: &mut PassStats,
    fused: &[FusedUnitary],
) -> Vec<Instr> {
    let n = instrs.len();
    // depth_at[i]: number of guarded regions containing the insertion
    // point *before* instruction i (i == n is the end of the program),
    // built as a difference array over branch skip regions.
    let mut depth_at = vec![0i64; n + 2];
    for (pc, instr) in instrs.iter().enumerate() {
        if let Instr::BranchUnless { skip, .. } = instr {
            let skip = *skip as usize;
            if skip > 0 {
                depth_at[pc + 1] += 1;
                depth_at[pc + 1 + skip] -= 1;
            }
        }
    }
    for i in 1..=n {
        depth_at[i] += depth_at[i - 1];
    }

    let mut last_touch = vec![None::<usize>; num_qubits];
    let mut collapsed = vec![false; num_qubits];
    for (pc, instr) in instrs.iter().enumerate() {
        match instr {
            Instr::Gate(g) => g.for_each_qubit(&mut |q| last_touch[q.index()] = Some(pc)),
            Instr::Fused(idx) => {
                for q in fused[*idx as usize].qubits() {
                    last_touch[q.index()] = Some(pc);
                }
            }
            Instr::Measure { qubit, .. } => {
                last_touch[qubit.index()] = Some(pc);
                collapsed[qubit.index()] = true;
            }
            Instr::Reset(q) => {
                last_touch[q.index()] = Some(pc);
                collapsed[q.index()] = true;
            }
            Instr::BranchUnless { .. } | Instr::Drop(_) => {}
        }
    }

    // drops_at[i]: qubits to release immediately before instruction i.
    let mut drops_at: Vec<Vec<QubitId>> = vec![Vec::new(); n + 1];
    for q in 0..num_qubits {
        if !collapsed[q] {
            continue;
        }
        let Some(last) = last_touch[q] else {
            continue;
        };
        let mut at = last + 1;
        // Branch regions always end within the program, so depth_at[n] is
        // 0 and this search terminates.
        while depth_at[at] != 0 {
            at += 1;
        }
        drops_at[at].push(QubitId(u32::try_from(q).expect("qubit id fits u32")));
        stats.dead_qubits_reclaimed += 1;
    }

    let extra = stats.dead_qubits_reclaimed as usize;
    let mut out = Vec::with_capacity(n + extra);
    for (i, instr) in instrs.into_iter().enumerate() {
        out.extend(drops_at[i].iter().map(|q| Instr::Drop(*q)));
        out.push(instr);
    }
    out.extend(drops_at[n].iter().map(|q| Instr::Drop(*q)));
    out
}

/// Cancellation, merging and identity elimination within one straight-line
/// run of gates.
fn optimize_segment(slots: &mut [Option<Instr>], config: &PassConfig, stats: &mut PassStats) {
    let gate_at = |slot: &Option<Instr>| match slot {
        Some(Instr::Gate(g)) => Some(*g),
        _ => None,
    };
    for i in 0..slots.len() {
        let Some(mut g) = gate_at(&slots[i]) else {
            continue;
        };
        // Walk backwards over removed slots and commuting gates, looking
        // for a cancellation partner or a mergeable rotation.
        let mut j = i;
        while j > 0 {
            j -= 1;
            let Some(h) = gate_at(&slots[j]) else {
                continue;
            };
            if config.cancel_self_inverse && self_inverse(&g) && same_unitary(&g, &h) {
                slots[i] = None;
                slots[j] = None;
                stats.cancelled += 2;
                break;
            }
            if config.merge_rotations {
                if let Some(merged) = merge_rotations(&g, &h) {
                    slots[j] = None;
                    stats.merged += 1;
                    g = merged;
                    slots[i] = Some(Instr::Gate(g));
                    continue; // keep scanning: more partners may commute up
                }
            }
            if !commutes(&h, &g) {
                break;
            }
        }
    }
    if config.remove_identities {
        for slot in slots.iter_mut() {
            if let Some(Instr::Gate(g)) = slot {
                if is_identity(g) {
                    *slot = None;
                    stats.identities_removed += 1;
                }
            }
        }
    }
}

/// Drops `Z`/`Phase` gates whose qubit is next consumed by a Z-basis
/// measurement or reset (global-phase-only effect on the collapsed state).
fn eliminate_phase_dead(slots: &mut [Option<Instr>], barrier: &[bool], stats: &mut PassStats) {
    for i in 0..slots.len() {
        let q = match slots[i] {
            Some(Instr::Gate(Gate::Z(q) | Gate::Phase(q, _))) => q,
            _ => continue,
        };
        // Scan forward for the next operation consuming `q`; stop at any
        // control-flow boundary. Diagonal gates commute past the candidate,
        // so they may be stepped over even when they touch `q`.
        let mut dead = false;
        for (j, slot) in slots.iter().enumerate().skip(i + 1) {
            if barrier[j] {
                break;
            }
            match slot {
                None => continue,
                Some(Instr::Gate(g)) => {
                    if g.is_diagonal() {
                        continue;
                    }
                    let mut touches = false;
                    g.for_each_qubit(&mut |qq| touches |= qq == q);
                    if touches {
                        break;
                    }
                }
                Some(Instr::Measure { qubit, basis, .. }) => {
                    if *qubit == q {
                        dead = *basis == Basis::Z;
                        break;
                    }
                }
                Some(Instr::Reset(qubit)) => {
                    if *qubit == q {
                        dead = true;
                        break;
                    }
                }
                // Drops never move amplitudes; stepping over is safe (and
                // the reclamation pass runs after this one anyway).
                Some(Instr::Drop(_)) => continue,
                // Fused blocks only appear after this pass; conservative.
                Some(Instr::Fused(_)) | Some(Instr::BranchUnless { .. }) => break,
            }
        }
        if dead {
            slots[i] = None;
            stats.phase_dead_removed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::Angle;
    use crate::builder::CircuitBuilder;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn gates(compiled: &CompiledCircuit) -> Vec<Gate> {
        compiled
            .instrs()
            .iter()
            .filter_map(|i| match i {
                Instr::Gate(g) => Some(*g),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lowering_flattens_nested_conditionals() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        let m0 = b.measure(r[0], Basis::Z);
        let (_, inner) = b.record(|b| b.x(r[1]));
        let (_, outer) = b.record(|b| {
            b.z(r[0]);
            b.emit_conditional(m0, &inner);
            b.h(r[1]);
        });
        b.emit_conditional(m0, &outer);
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let instrs = compiled.instrs();
        // Measure, outer branch (skip 4), Z, inner branch (skip 1), X, H.
        assert_eq!(instrs.len(), 6);
        assert!(matches!(instrs[1], Instr::BranchUnless { skip: 4, .. }));
        assert!(matches!(instrs[3], Instr::BranchUnless { skip: 1, .. }));
        assert_eq!(compiled.counts().x, 1);
        assert_eq!(compiled.counts().h, 1);
    }

    #[test]
    fn lowering_rejects_invalid_circuits() {
        let c = Circuit::from_ops(1, 0, vec![Op::Gate(Gate::Cx(q(0), q(5)))]);
        assert!(matches!(
            CompiledCircuit::lower(&c),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn adjacent_self_inverse_pairs_cancel() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.x(r[0]);
        b.x(r[0]);
        b.h(r[1]);
        b.ccx(r[0], r[1], r[2]);
        b.ccx(r[1], r[0], r[2]); // symmetric control pair still cancels
        b.h(r[1]);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        // Cancellation cascades: once the CCX pair vanishes, the H's become
        // adjacent and cancel too — the whole segment is the identity.
        assert_eq!(compiled.counts().total_gates(), 0);
        assert_eq!(compiled.stats().cancelled, 6);
    }

    #[test]
    fn cancellation_reaches_across_commuting_gates() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.x(r[0]);
        b.h(r[1]); // disjoint support: scan steps over it
        b.cz(r[1], r[2]); // disjoint from q0
        b.x(r[0]);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert_eq!(compiled.counts().x, 0);
        assert_eq!(compiled.counts().h, 1);
        assert_eq!(compiled.counts().cz, 1);
    }

    #[test]
    fn cancellation_blocked_by_shared_support() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.x(r[0]);
        b.h(r[0]); // same qubit, not diagonal: blocks
        b.x(r[0]);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert_eq!(compiled.counts().x, 2);
    }

    #[test]
    fn rotations_merge_exactly_and_identities_vanish() {
        let t = Angle::turn_over_power_of_two(3);
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.phase(r[0], t);
        b.cphase(r[0], r[1], t);
        b.phase(r[0], t); // merges with the first Phase (diagonal commute)
        b.cphase(r[1], r[0], -t); // merges to zero with the CPhase -> dropped
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        let g = gates(&compiled);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0], Gate::Phase(r[0], t + t));
        assert_eq!(compiled.stats().merged, 2);
        assert_eq!(compiled.stats().identities_removed, 1);
    }

    #[test]
    fn measurements_are_barriers() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        b.x(r[0]);
        b.measure(r[0], Basis::Z);
        b.x(r[0]);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert_eq!(compiled.counts().x, 2, "no cancellation across measure");
    }

    #[test]
    fn branch_joins_are_barriers() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        let m = b.measure(r[0], Basis::Z);
        let (_, block) = b.record(|b| b.x(r[0]));
        b.emit_conditional(m, &block);
        b.x(r[0]); // runs on every path; must not cancel the guarded X
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert_eq!(compiled.counts().x, 2);
    }

    #[test]
    fn passes_inside_conditional_bodies_still_run() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        let m = b.measure(r[0], Basis::Z);
        let (_, block) = b.record(|b| {
            b.x(r[0]);
            b.x(r[0]);
        });
        b.emit_conditional(m, &block);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert_eq!(compiled.counts().x, 0);
        assert!(matches!(
            compiled.instrs().last(),
            Some(Instr::BranchUnless { skip: 0, .. })
        ));
    }

    #[test]
    fn phase_dead_removal_is_opt_in() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.z(r[0]);
        b.h(r[1]); // other qubit: stepped over
        b.measure(r[0], Basis::Z);
        let circuit = b.finish();

        let exact = CompiledCircuit::compile(&circuit).unwrap();
        assert_eq!(exact.counts().z, 1, "default passes keep the Z");

        let aggressive = CompiledCircuit::with_config(&circuit, &PassConfig::aggressive()).unwrap();
        assert_eq!(aggressive.counts().z, 0);
        assert_eq!(aggressive.stats().phase_dead_removed, 1);
    }

    #[test]
    fn phase_dead_keeps_gates_feeding_x_measurements() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        b.z(r[0]);
        b.measure(r[0], Basis::X); // Z flips |+⟩ to |−⟩: not dead
        let compiled =
            CompiledCircuit::with_config(&b.finish(), &PassConfig::aggressive()).unwrap();
        assert_eq!(compiled.counts().z, 1);
    }

    #[test]
    fn stats_roundtrip_and_display() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.x(r[0]);
        b.x(r[0]);
        b.cx(r[0], r[1]);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        let stats = compiled.stats();
        assert_eq!(stats.lowered_instrs, 3);
        assert_eq!(stats.emitted_instrs, 1);
        assert_eq!(stats.removed(), 2);
        let dump = compiled.to_string();
        assert!(dump.contains("CX q0 q1"), "{dump}");
        assert!(dump.contains("cancelled 2"), "{dump}");
    }

    #[test]
    fn reclamation_drops_measured_dead_qubits_after_the_join() {
        // The MBU shape: measure, conditional correction that touches the
        // qubit again, then dead. The drop must land at the first top-level
        // point after the correction — never inside the guarded block.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        let m = b.measure(r[1], Basis::Z);
        let (_, fix) = b.record(|b| b.x(r[1]));
        b.emit_conditional(m, &fix);
        b.h(r[0]); // r0 is live to the end and never measured: no drop
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert!(compiled.reclaims_qubits());
        assert_eq!(compiled.stats().dead_qubits_reclaimed, 1);
        let drop_pc = compiled
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Drop(q) if q.0 == 1))
            .expect("q1 reclaimed");
        // Measure(0), branch(1), X(2, guarded), Drop(3), H(4).
        assert_eq!(drop_pc, 3, "{compiled}");
        assert!(
            !compiled
                .instrs()
                .iter()
                .any(|i| matches!(i, Instr::Drop(q) if q.0 == 0)),
            "unmeasured qubits are never reclaimed"
        );
        assert!(compiled.to_string().contains("drop q1"));
    }

    #[test]
    fn reclamation_covers_resets_and_respects_later_reuse() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.reset(r[0]); // reset counts as collapsed
        b.measure(r[1], Basis::Z);
        b.cx(r[1], r[2]); // r1 reused after its measurement
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert_eq!(compiled.stats().dead_qubits_reclaimed, 2, "{compiled}");
        let drops: Vec<u32> = compiled
            .instrs()
            .iter()
            .filter_map(|i| match i {
                Instr::Drop(q) => Some(q.0),
                _ => None,
            })
            .collect();
        // r0 right after its reset; r1 only after the CX that reuses it;
        // r2 never measured, never dropped.
        assert_eq!(drops, vec![0, 1]);
        let pc_of = |target: u32| {
            compiled
                .instrs()
                .iter()
                .position(|i| matches!(i, Instr::Drop(q) if q.0 == target))
                .unwrap()
        };
        assert_eq!(pc_of(0), 1);
        assert_eq!(pc_of(1), 4, "drop deferred past the reuse");
    }

    #[test]
    fn reclamation_is_off_for_lowering_and_opt_out_configs() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        b.measure(r[0], Basis::Z);
        let circuit = b.finish();
        for compiled in [
            CompiledCircuit::lower(&circuit).unwrap(),
            CompiledCircuit::with_config(&circuit, &PassConfig::none()).unwrap(),
        ] {
            assert!(!compiled.reclaims_qubits());
            assert!(!compiled
                .instrs()
                .iter()
                .any(|i| matches!(i, Instr::Drop(_))));
        }
        let no_reclaim = PassConfig {
            reclaim_dead_qubits: false,
            ..PassConfig::default()
        };
        let compiled = CompiledCircuit::with_config(&circuit, &no_reclaim).unwrap();
        assert_eq!(compiled.stats().dead_qubits_reclaimed, 0);
    }

    #[test]
    fn drop_insertion_preserves_branch_targets() {
        // A drop inserted before a top-level branch must shift the branch
        // and its whole region together, leaving the rendered jump target
        // consistent with the region contents.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        let m = b.measure(r[0], Basis::Z);
        let (_, block) = b.record(|b| b.z(r[1]));
        b.emit_conditional(m, &block);
        b.h(r[1]);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        // Measure(0), Drop q0(1), branch(2) skip 1, Z(3), H(4).
        assert!(matches!(compiled.instrs()[1], Instr::Drop(q) if q.0 == 0));
        assert!(
            matches!(compiled.instrs()[2], Instr::BranchUnless { skip: 1, .. }),
            "{compiled}"
        );
        assert!(
            compiled.to_string().contains("unless c0 jump 4"),
            "{compiled}"
        );
    }

    /// Default passes with the fusion window pinned on, so these tests
    /// hold under a `MBU_FUSION=0` environment (the CI leg that disables
    /// fusion process-wide).
    fn fused_config() -> PassConfig {
        PassConfig {
            fuse_max_qubits: 3,
            ..PassConfig::default()
        }
    }

    /// All gates of `compiled`, fused blocks expanded back to their
    /// global-operand constituents, in program order.
    fn effective_gates(compiled: &CompiledCircuit) -> Vec<Gate> {
        let mut out = Vec::new();
        for i in compiled.instrs() {
            match i {
                Instr::Gate(g) => out.push(*g),
                Instr::Fused(idx) => {
                    out.extend(compiled.fused_unitaries()[*idx as usize].global_gates());
                }
                _ => {}
            }
        }
        out
    }

    #[test]
    fn fusion_merges_adjacent_overlapping_runs() {
        // The Gidney-AND compute shape: CCX, H, CX on a 3-qubit support —
        // one dense block, with the trailing diagonal riding along.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.ccx(r[0], r[1], r[2]);
        b.h(r[2]);
        b.cx(r[0], r[2]);
        b.cz(r[0], r[1]);
        let source = b.finish();
        let compiled = CompiledCircuit::with_config(&source, &fused_config()).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 1, "{compiled}");
        assert_eq!(compiled.stats().fused_gates, 4);
        assert_eq!(compiled.instrs().len(), 1);
        let fu = &compiled.fused_unitaries()[0];
        assert_eq!(fu.num_qubits(), 3);
        assert_eq!(fu.qubits(), &[r[0], r[1], r[2]]);
        // Local operands stay in gate order; global reconstruction round-trips.
        let globals: Vec<Gate> = fu.global_gates().collect();
        assert_eq!(
            globals,
            vec![
                Gate::Ccx(r[0], r[1], r[2]),
                Gate::H(r[2]),
                Gate::Cx(r[0], r[2]),
                Gate::Cz(r[0], r[1]),
            ]
        );
        // Worst-case counts are untouched by fusion.
        assert_eq!(compiled.counts(), source.counts());
        // And the dump names the block.
        assert!(compiled.to_string().contains("fused[0] q0 q1 q2 (4 gates)"));
    }

    #[test]
    fn fusion_respects_the_qubit_window() {
        // Two disjoint 2-qubit runs with a 4-qubit combined support: with
        // the default window of 3 they cannot merge into one block.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 4);
        b.h(r[0]);
        b.cx(r[0], r[1]);
        b.h(r[2]);
        b.cx(r[2], r[3]);
        let compiled = CompiledCircuit::with_config(&b.finish(), &fused_config()).unwrap();
        // Greedy: the first block absorbs H q2 (support {0,1,2} still fits)
        // but must close before CX q2 q3 would push it to four qubits; the
        // leftover lone CX stays plain (only one heavy gate).
        assert_eq!(compiled.stats().fused_blocks, 1, "{compiled}");
        assert_eq!(compiled.stats().fused_gates, 3);
        for fu in compiled.fused_unitaries() {
            assert!(fu.num_qubits() <= 3);
        }
        assert_eq!(effective_gates(&compiled).len(), 4, "no gate lost");
        assert!(
            matches!(compiled.instrs().last(), Some(Instr::Gate(Gate::Cx(..)))),
            "{compiled}"
        );
    }

    #[test]
    fn fusion_skips_blocks_that_save_no_sweep() {
        // Diagonal-only runs (cheap subspace sweeps) and X gates (frame
        // toggles in the compiled engine) are not worth a dense sweep.
        let t = Angle::turn_over_power_of_two(4);
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.cphase(r[0], r[1], t);
        b.cz(r[1], r[2]);
        b.x(r[0]);
        b.ccz(r[0], r[1], r[2]);
        let compiled = CompiledCircuit::with_config(&b.finish(), &fused_config()).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 0, "{compiled}");
        assert_eq!(compiled.counts().total_gates(), 4);
    }

    #[test]
    fn fusion_stops_at_barriers_and_fixes_branch_targets() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.h(r[0]);
        b.cx(r[0], r[1]);
        let m = b.measure(r[0], Basis::Z);
        let (_, fix) = b.record(|b| {
            b.h(r[1]);
            b.cx(r[1], r[0]);
        });
        b.emit_conditional(m, &fix);
        b.h(r[0]);
        b.cx(r[0], r[1]);
        let no_reclaim = PassConfig {
            reclaim_dead_qubits: false,
            ..fused_config()
        };
        let compiled = CompiledCircuit::with_config(&b.finish(), &no_reclaim).unwrap();
        // Three separate blocks: before the measurement, inside the guarded
        // body, after the join — never across.
        assert_eq!(compiled.stats().fused_blocks, 3, "{compiled}");
        // Fused(0), Measure, Branch(skip 1), Fused(1), Fused(2).
        assert_eq!(compiled.instrs().len(), 5, "{compiled}");
        assert!(
            matches!(compiled.instrs()[2], Instr::BranchUnless { skip: 1, .. }),
            "{compiled}"
        );
        assert_eq!(effective_gates(&compiled).len(), 6);
    }

    #[test]
    fn fusion_is_disabled_by_config() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.h(r[0]);
        b.cx(r[0], r[1]);
        let circuit = b.finish();
        let off = PassConfig {
            fuse_max_qubits: 0,
            ..PassConfig::default()
        };
        let compiled = CompiledCircuit::with_config(&circuit, &off).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 0);
        assert!(compiled.fused_unitaries().is_empty());
        assert!(!CompiledCircuit::lower(&circuit)
            .unwrap()
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Fused(_))));
    }

    #[test]
    fn fusion_window_is_clamped_to_the_dense_limit() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 6);
        for w in r.qubits().windows(2) {
            b.h(w[0]);
            b.cx(w[0], w[1]);
        }
        let wide = PassConfig {
            fuse_max_qubits: 64,
            ..PassConfig::default()
        };
        let compiled = CompiledCircuit::with_config(&b.finish(), &wide).unwrap();
        assert!(compiled.stats().fused_blocks > 0);
        for fu in compiled.fused_unitaries() {
            assert!(fu.num_qubits() <= MAX_FUSED_QUBITS, "{}", fu.num_qubits());
        }
    }

    #[test]
    fn permutation_runs_fuse_beyond_the_dense_window() {
        // A CX ladder across 8 qubits: weight 7 x 4 = 28 clears the
        // permutation bar, and the 8-qubit support exceeds the dense
        // arity cap -- only the permutation stage can merge it.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 8);
        for i in 0..7 {
            b.cx(r[i], r[i + 1]);
        }
        let source = b.finish();
        let compiled = CompiledCircuit::with_config(&source, &fused_config()).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 1, "{compiled}");
        assert_eq!(compiled.stats().fused_gates, 7);
        assert_eq!(compiled.instrs().len(), 1);
        let fu = &compiled.fused_unitaries()[0];
        assert!(fu.is_permutation());
        assert_eq!(fu.num_qubits(), 8);
        assert!(fu.num_qubits() > MAX_FUSED_QUBITS);
        // Constituents round-trip in order with global operands.
        let globals: Vec<Gate> = fu.global_gates().collect();
        let original: Vec<Gate> = source
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Gate(g) => Some(*g),
                _ => None,
            })
            .collect();
        assert_eq!(globals, original);
        // Worst-case counts are untouched by fusion.
        assert_eq!(compiled.counts(), source.counts());
    }

    #[test]
    fn light_permutation_runs_stay_plain() {
        // Five CX over six qubits: weight 20 is under the permutation bar
        // (24), and no 3-qubit dense window reaches the dense bar (12), so
        // the stream stays gate-by-gate.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 6);
        for i in 0..5 {
            b.cx(r[i], r[i + 1]);
        }
        let compiled = CompiledCircuit::with_config(&b.finish(), &fused_config()).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 0, "{compiled}");
        assert_eq!(compiled.instrs().len(), 5);
    }

    #[test]
    fn permutation_runs_split_at_non_permutation_gates() {
        // An H in the middle of a long CCX/CX ladder: each side fuses on
        // its own (weights 28), the H stays a plain instruction between
        // the two permutation blocks.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 8);
        for i in 0..7 {
            b.cx(r[i], r[i + 1]);
        }
        b.h(r[0]);
        for i in 0..7 {
            b.cx(r[i + 1], r[i]);
        }
        let compiled = CompiledCircuit::with_config(&b.finish(), &fused_config()).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 2, "{compiled}");
        assert_eq!(compiled.stats().fused_gates, 14);
        assert!(compiled
            .fused_unitaries()
            .iter()
            .all(FusedUnitary::is_permutation));
        assert_eq!(compiled.instrs().len(), 3);
        assert!(matches!(compiled.instrs()[1], Instr::Gate(Gate::H(_))));
    }

    #[test]
    fn fused_matrix_is_the_ordered_product() {
        // H then CX (the Bell-pair preparation): the dense 4×4 matrix must
        // send |00⟩ to (|00⟩ + |11⟩)/√2.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.h(r[0]);
        b.cx(r[0], r[1]);
        let compiled = CompiledCircuit::with_config(&b.finish(), &fused_config()).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 1);
        let m = compiled.fused_unitaries()[0].matrix();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        // Column 0 (input |00⟩): rows 00 and 11 get 1/√2.
        assert!((m[0][0] - s).abs() < 1e-15, "{:?}", m[0]);
        assert!((m[3 * 4][0] - s).abs() < 1e-15);
        assert!(m[4][0].abs() < 1e-15 && m[2 * 4][0].abs() < 1e-15);
        // Unitarity: every column has unit norm.
        for c in 0..4 {
            let norm: f64 = (0..4)
                .map(|r| m[r * 4 + c][0].powi(2) + m[r * 4 + c][1].powi(2))
                .sum();
            assert!((norm - 1.0).abs() < 1e-12, "column {c}: {norm}");
        }
    }

    #[test]
    fn fused_blocks_participate_in_reclamation_liveness() {
        // The fused block is the last touch of q1; q0 is measured before
        // it, so its drop must defer past the block.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        let _ = b.measure(r[0], Basis::Z);
        b.h(r[1]);
        b.cx(r[0], r[1]);
        let compiled = CompiledCircuit::with_config(&b.finish(), &fused_config()).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 1, "{compiled}");
        let drop_pc = compiled
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Drop(q) if q.0 == 0))
            .expect("q0 reclaimed");
        let fused_pc = compiled
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Fused(_)))
            .unwrap();
        assert!(
            drop_pc > fused_pc,
            "drop deferred past the block: {compiled}"
        );
    }

    #[test]
    fn display_indents_guarded_blocks() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        let m = b.measure(r[0], Basis::X);
        let (_, block) = b.record(|b| b.cz(r[0], r[1]));
        b.emit_conditional(m, &block);
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let dump = compiled.to_string();
        assert!(dump.contains("unless c0 jump 3"), "{dump}");
        assert!(dump.contains("  CZ q0 q1"), "{dump}");
    }

    #[test]
    fn segmentation_cuts_at_barriers_and_joins() {
        // H X | MZ | CZ (guarded) || H  — the guarded CZ and the
        // post-join H sit in different segments even though they are
        // adjacent unitary instructions.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.h(r[0]);
        b.x(r[1]);
        let m = b.measure(r[0], Basis::Z);
        let (_, block) = b.record(|b| b.cz(r[0], r[1]));
        b.emit_conditional(m, &block);
        b.h(r[1]);
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        // Program: 0:H 1:X 2:MZ 3:unless 4:CZ 5:H
        let segments = compiled.segments();
        assert_eq!(
            segments,
            vec![
                Segment { start: 0, end: 2 },
                Segment { start: 4, end: 5 },
                Segment { start: 5, end: 6 },
            ]
        );
        assert_eq!(compiled.fork_points(), 1);
        assert_eq!(compiled.stats().segments, 3);
        assert_eq!(compiled.stats().fork_points, 1);
        // Every segment holds only unitary instructions.
        for seg in &segments {
            for instr in &compiled.instrs()[seg.start..seg.end] {
                assert!(
                    matches!(instr, Instr::Gate(_) | Instr::Fused(_)),
                    "{instr:?} in segment {seg:?}"
                );
            }
        }
    }

    #[test]
    fn segmentation_counts_resets_and_drops() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.h(r[0]);
        b.reset(r[0]);
        b.h(r[0]);
        let _ = b.measure(r[1], Basis::Z);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        // Reset + measure fork; drops cut segments but never fork.
        assert_eq!(compiled.fork_points(), 2);
        assert!(compiled.reclaims_qubits());
        let segments = compiled.segments();
        assert!(segments.len() >= 2, "{compiled}");
        // Drops are not inside any segment.
        for seg in &segments {
            for instr in &compiled.instrs()[seg.start..seg.end] {
                assert!(!matches!(instr, Instr::Drop(_)));
            }
        }
    }

    #[test]
    fn empty_programs_have_no_segments() {
        let compiled = CompiledCircuit::lower(&Circuit::from_ops(1, 0, vec![])).unwrap();
        assert!(compiled.segments().is_empty());
        assert_eq!(compiled.fork_points(), 0);
    }
}
