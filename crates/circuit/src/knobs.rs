//! Shared resolution of `MBU_*` environment knobs.
//!
//! Every tunable in the workspace is an environment variable (`MBU_FUSION`,
//! `MBU_RECLAIM`, `MBU_SHOT_THREADS`, `MBU_AMP_THREADS`,
//! `MBU_BRANCH_EPS`), and each used to parse itself: the thread knobs
//! warned once on garbage and fell back, while `MBU_FUSION` and
//! `MBU_RECLAIM` silently swallowed unparsable values — `MBU_RECLAIM=flase`
//! quietly behaved like "on". This module is the single resolver all of
//! them route through: one tokenisation policy, one warn-once channel, and
//! pure functions over *injected* raw values so every policy is testable
//! without mutating process-global environment state.
//!
//! The resolvers never read the environment themselves; call sites do the
//! `std::env::var` (usually once, behind a `OnceLock`, because knob
//! resolution sits in per-shot hot paths) and hand the raw value in.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Emits `message` to stderr exactly once per process for each distinct
/// `key`; later calls with the same key stay silent. The channel behind
/// [`warn_invalid`], also usable directly for advisory diagnostics that
/// are not parse failures — e.g. a knob combination that is legal but
/// defeats its own purpose (`MBU_BACKEND=auto` on a circuit too small for
/// planning to pay). Key the call by the *condition*, not the message, so
/// a hot loop hitting the condition every shot warns once.
pub fn warn_once(key: &str, message: &str) {
    static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let mut warned = WARNED.lock().expect("knob warning registry");
    if warned.insert(key.to_string()) {
        eprintln!("warning: {message}");
    }
}

/// Warns exactly once per knob name that `raw` was not understood and which
/// fallback the knob resolved to. Later invalid values of the *same* knob
/// stay silent (the process-wide setting has already been reported);
/// different knobs each get their own warning.
pub fn warn_invalid(name: &str, raw: &str, fallback: &str) {
    warn_once(
        name,
        &format!("{name}={raw:?} is not a valid value; falling back to {fallback}"),
    );
}

/// The canonical boolean tokens: `1`/`on`/`true`/`yes` and
/// `0`/`off`/`false`/`no`, case-insensitive, surrounding whitespace
/// ignored. `None` for anything else.
fn parse_switch_token(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Some(true),
        "0" | "off" | "false" | "no" => Some(false),
        _ => None,
    }
}

/// Resolves an on/off knob (`MBU_RECLAIM`): unset keeps `default`,
/// recognised tokens pin, anything else warns once and keeps `default` —
/// garbage can no longer masquerade as either setting.
#[must_use]
pub fn switch(name: &str, raw: Option<&str>, default: bool) -> bool {
    match raw {
        None => default,
        Some(raw) => parse_switch_token(raw).unwrap_or_else(|| {
            warn_invalid(name, raw, if default { "on" } else { "off" });
            default
        }),
    }
}

/// Resolves a size-window knob (`MBU_FUSION`): unset keeps `default`, a
/// non-negative integer pins (clamped to `max`), the off tokens disable
/// (`0`), the on tokens keep the default window enabled, and anything
/// else warns once and keeps `default`. Numbers win over tokens, so `1`
/// means a window of 1, not "enabled".
#[must_use]
pub fn window(name: &str, raw: Option<&str>, default: usize, max: usize) -> usize {
    match raw {
        None => default.min(max),
        Some(raw) => {
            if let Ok(k) = raw.trim().parse::<usize>() {
                return k.min(max);
            }
            match parse_switch_token(raw) {
                Some(true) => default.min(max),
                Some(false) => 0,
                None => {
                    warn_invalid(name, raw, "the default window");
                    default.min(max)
                }
            }
        }
    }
}

/// Resolves a probability-like knob (`MBU_BRANCH_EPS`): unset keeps
/// `default`, a finite value in `[0, 1]` pins, anything else warns once
/// and keeps `default`.
#[must_use]
pub fn fraction(name: &str, raw: Option<&str>, default: f64) -> f64 {
    match raw {
        None => default,
        Some(raw) => match raw.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && (0.0..=1.0).contains(&v) => v,
            _ => {
                warn_invalid(name, raw, "the default floor");
                default
            }
        },
    }
}

/// Resolves a thread/lane-count knob (`MBU_SHOT_THREADS`,
/// `MBU_AMP_THREADS`): unset is `None` (the caller picks its own default),
/// a positive integer pins, and `0` or garbage warns once and resolves to
/// the caller-supplied `fallback` (described by `fallback_desc` in the
/// warning) — `0` has no meaning for either knob and would deadlock a
/// worker pool if honoured.
#[must_use]
pub fn positive_count(
    name: &str,
    raw: Option<&str>,
    fallback: usize,
    fallback_desc: &str,
) -> Option<usize> {
    match raw {
        None => None,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(threads) if threads >= 1 => Some(threads),
            _ => {
                warn_invalid(name, raw, fallback_desc);
                Some(fallback)
            }
        },
    }
}

/// Resolves a named-choice knob (`MBU_BACKEND`): unset keeps `default`, a
/// recognised option (case-insensitive, surrounding whitespace ignored)
/// pins that option, and anything else warns once and keeps `default` — a
/// typo like `MBU_BACKEND=spares` can never silently select a backend.
///
/// `options` lists every accepted token in canonical (lowercase) form; the
/// returned value is always one of `options` (or `default`), so callers
/// can match on it exhaustively.
#[must_use]
pub fn choice<'a>(name: &str, raw: Option<&str>, options: &[&'a str], default: &'a str) -> &'a str {
    match raw {
        None => default,
        Some(raw) => {
            let token = raw.trim().to_ascii_lowercase();
            match options.iter().find(|opt| **opt == token) {
                Some(opt) => opt,
                None => {
                    warn_invalid(name, raw, default);
                    default
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_accepts_canonical_tokens() {
        for (raw, expect) in [
            ("1", true),
            ("on", true),
            ("TRUE", true),
            (" yes ", true),
            ("0", false),
            ("off", false),
            ("False", false),
            ("no", false),
        ] {
            assert_eq!(
                switch("MBU_TEST_SWITCH", Some(raw), !expect),
                expect,
                "{raw}"
            );
        }
    }

    #[test]
    fn switch_garbage_keeps_the_default() {
        assert!(switch("MBU_TEST_SWITCH_G1", Some("flase"), true));
        assert!(!switch("MBU_TEST_SWITCH_G2", Some("2"), false));
        assert!(switch("MBU_TEST_SWITCH_G3", None, true));
    }

    #[test]
    fn window_pins_clamps_and_disables() {
        assert_eq!(window("MBU_TEST_WIN", None, 3, 4), 3);
        assert_eq!(window("MBU_TEST_WIN", Some("2"), 3, 4), 2);
        assert_eq!(window("MBU_TEST_WIN", Some("9"), 3, 4), 4, "clamped");
        assert_eq!(window("MBU_TEST_WIN", Some("0"), 3, 4), 0);
        assert_eq!(window("MBU_TEST_WIN", Some("off"), 3, 4), 0);
        assert_eq!(window("MBU_TEST_WIN", Some("no"), 3, 4), 0);
        // The on tokens share the switch tokenisation: enabled at the
        // default window, without a bogus "not a valid value" warning.
        assert_eq!(window("MBU_TEST_WIN", Some("on"), 3, 4), 3);
        assert_eq!(window("MBU_TEST_WIN", Some("TRUE"), 3, 4), 3);
        assert_eq!(window("MBU_TEST_WIN", Some("yes"), 3, 4), 3);
        // Numbers beat tokens: "1" is a window of 1, not "enabled".
        assert_eq!(window("MBU_TEST_WIN", Some("1"), 3, 4), 1);
        assert_eq!(window("MBU_TEST_WIN", Some("lots"), 3, 4), 3, "garbage");
    }

    #[test]
    fn fraction_requires_a_unit_interval_value() {
        assert_eq!(fraction("MBU_TEST_EPS", None, 1e-12), 1e-12);
        assert_eq!(fraction("MBU_TEST_EPS", Some("0"), 1e-12), 0.0);
        assert_eq!(fraction("MBU_TEST_EPS", Some("1e-6"), 1e-12), 1e-6);
        assert_eq!(fraction("MBU_TEST_EPS", Some("2.5"), 1e-12), 1e-12);
        assert_eq!(fraction("MBU_TEST_EPS", Some("-0.1"), 1e-12), 1e-12);
        assert_eq!(fraction("MBU_TEST_EPS", Some("NaN"), 1e-12), 1e-12);
        assert_eq!(fraction("MBU_TEST_EPS", Some("much"), 1e-12), 1e-12);
    }

    #[test]
    fn positive_count_policy_matches_the_thread_knobs() {
        assert_eq!(positive_count("MBU_TEST_N", None, 7, "d"), None);
        assert_eq!(positive_count("MBU_TEST_N", Some("3"), 7, "d"), Some(3));
        assert_eq!(positive_count("MBU_TEST_N", Some(" 8 "), 7, "d"), Some(8));
        assert_eq!(positive_count("MBU_TEST_N", Some("0"), 7, "d"), Some(7));
        assert_eq!(positive_count("MBU_TEST_N", Some("-2"), 7, "d"), Some(7));
        assert_eq!(positive_count("MBU_TEST_N", Some("zero"), 7, "d"), Some(7));
    }

    #[test]
    fn choice_matches_case_insensitively_and_falls_back() {
        const OPTIONS: &[&str] = &["dense", "sparse", "tracker"];
        assert_eq!(choice("MBU_TEST_CHOICE", None, OPTIONS, "dense"), "dense");
        assert_eq!(
            choice("MBU_TEST_CHOICE", Some("sparse"), OPTIONS, "dense"),
            "sparse"
        );
        assert_eq!(
            choice("MBU_TEST_CHOICE", Some(" TRACKER "), OPTIONS, "dense"),
            "tracker"
        );
        assert_eq!(
            choice("MBU_TEST_CHOICE", Some("Dense"), OPTIONS, "sparse"),
            "dense"
        );
        assert_eq!(
            choice("MBU_TEST_CHOICE", Some("spares"), OPTIONS, "dense"),
            "dense",
            "garbage keeps the default"
        );
        assert_eq!(
            choice("MBU_TEST_CHOICE", Some(""), OPTIONS, "sparse"),
            "sparse"
        );
    }

    #[test]
    fn warnings_fire_once_per_knob() {
        // Purely exercises the registry path; output is on stderr and not
        // captured here — the contract is "no panic, idempotent".
        warn_invalid("MBU_TEST_WARN", "garbage", "the default");
        warn_invalid("MBU_TEST_WARN", "garbage2", "the default");
    }
}
