//! ASCII circuit diagrams.
//!
//! Renders circuits in the style of the paper's figures: one row per qubit,
//! time flowing left to right, controls drawn as `●`, X-targets as `⊕`,
//! with vertical connectors between operands. Classically-controlled gates
//! are annotated with `?cN`, and measurements as `Mz→cN` / `Mx→cN`.
//!
//! # Examples
//!
//! ```
//! use mbu_circuit::CircuitBuilder;
//! use mbu_circuit::diagram::render;
//!
//! let mut b = CircuitBuilder::new();
//! let q = b.qreg("q", 3);
//! b.ccx(q[0], q[1], q[2]);
//! let art = render(&b.finish(), &["c", "x", "y"]);
//! assert!(art.contains("⊕"));
//! ```

use crate::circuit::Circuit;
use crate::gate::{Basis, Gate};
use crate::op::{ClbitId, Op};

/// One drawable item: symbols on operand rows, connectors between them.
struct Item {
    /// `(row, symbol)` for operand rows.
    cells: Vec<(usize, String)>,
    /// Full vertical extent `[lo, hi]` the item occupies.
    lo: usize,
    hi: usize,
}

fn gate_item(gate: &Gate, cond: Option<ClbitId>) -> Item {
    let sym = |s: &str| s.to_string();
    let mut cells: Vec<(usize, String)> = match *gate {
        Gate::X(q) => vec![(q.index(), sym("X"))],
        Gate::Z(q) => vec![(q.index(), sym("Z"))],
        Gate::H(q) => vec![(q.index(), sym("H"))],
        Gate::Phase(q, _) => vec![(q.index(), sym("R"))],
        Gate::Cx(c, t) => vec![(c.index(), sym("●")), (t.index(), sym("⊕"))],
        Gate::Cz(a, b) => vec![(a.index(), sym("●")), (b.index(), sym("●"))],
        Gate::Ccx(c1, c2, t) => vec![
            (c1.index(), sym("●")),
            (c2.index(), sym("●")),
            (t.index(), sym("⊕")),
        ],
        Gate::Ccz(a, b, c) => vec![
            (a.index(), sym("●")),
            (b.index(), sym("●")),
            (c.index(), sym("●")),
        ],
        Gate::CPhase(c, t, _) => vec![(c.index(), sym("●")), (t.index(), sym("R"))],
        Gate::CcPhase(c1, c2, t, _) => vec![
            (c1.index(), sym("●")),
            (c2.index(), sym("●")),
            (t.index(), sym("R")),
        ],
        Gate::Swap(a, b) => vec![(a.index(), sym("✕")), (b.index(), sym("✕"))],
    };
    if let Some(c) = cond {
        // Annotate the first operand row with the classical condition.
        let (_, s) = &mut cells[0];
        s.push_str(&format!("?c{}", c.0));
    }
    let lo = cells.iter().map(|(r, _)| *r).min().unwrap_or(0);
    let hi = cells.iter().map(|(r, _)| *r).max().unwrap_or(0);
    Item { cells, lo, hi }
}

fn flatten(ops: &[Op], cond: Option<ClbitId>, items: &mut Vec<Item>) {
    for op in ops {
        match op {
            Op::Gate(g) => items.push(gate_item(g, cond)),
            Op::Measure {
                qubit,
                basis,
                clbit,
            } => {
                let label = match basis {
                    Basis::Z => format!("Mz→c{}", clbit.0),
                    Basis::X => format!("Mx→c{}", clbit.0),
                };
                items.push(Item {
                    cells: vec![(qubit.index(), label)],
                    lo: qubit.index(),
                    hi: qubit.index(),
                });
            }
            Op::Conditional { clbit, ops } => flatten(ops, Some(*clbit), items),
            Op::Reset(qubit) => items.push(Item {
                cells: vec![(qubit.index(), "|0⟩".to_string())],
                lo: qubit.index(),
                hi: qubit.index(),
            }),
        }
    }
}

/// Renders `circuit` as ASCII art with the given per-qubit row labels.
///
/// Missing labels default to `q{i}`; extra labels are ignored.
#[must_use]
pub fn render<S: AsRef<str>>(circuit: &Circuit, labels: &[S]) -> String {
    render_ops(circuit.ops(), circuit.num_qubits(), labels)
}

/// Renders a raw op list over `num_qubits` rows.
#[must_use]
pub fn render_ops<S: AsRef<str>>(ops: &[Op], num_qubits: usize, labels: &[S]) -> String {
    let mut items = Vec::new();
    flatten(ops, None, &mut items);

    // ASAP layering: each item lands in the first column where its whole
    // vertical span is free.
    let mut row_time = vec![0usize; num_qubits];
    let mut placed: Vec<(usize, Item)> = Vec::new(); // (column, item)
    let mut num_cols = 0;
    for item in items {
        let col = row_time[item.lo..=item.hi]
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        for t in &mut row_time[item.lo..=item.hi] {
            *t = col + 1;
        }
        num_cols = num_cols.max(col + 1);
        placed.push((col, item));
    }

    // Cell contents: grid[row][col] = Some(symbol) or None (wire).
    let mut grid: Vec<Vec<Option<String>>> = vec![vec![None; num_cols]; num_qubits];
    for (col, item) in &placed {
        for row in &mut grid[item.lo..=item.hi] {
            row[*col] = Some("│".to_string());
        }
        for (r, s) in &item.cells {
            grid[*r][*col] = Some(s.clone());
        }
    }

    let col_width: Vec<usize> = (0..num_cols)
        .map(|c| {
            grid.iter()
                .filter_map(|row| row[c].as_ref())
                .map(|s| s.chars().count())
                .max()
                .unwrap_or(1)
        })
        .collect();

    let label_of = |i: usize| -> String {
        labels
            .get(i)
            .map(|s| s.as_ref().to_string())
            .unwrap_or_else(|| format!("q{i}"))
    };
    let label_width = (0..num_qubits)
        .map(|i| label_of(i).chars().count())
        .max()
        .unwrap_or(0);

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = label_of(r);
        let pad = label_width - label.chars().count();
        out.push_str(&label);
        out.push_str(&" ".repeat(pad));
        out.push_str(": ");
        for c in 0..num_cols {
            out.push('─');
            let w = col_width[c];
            match &row[c] {
                Some(s) => {
                    let len = s.chars().count();
                    let left = (w - len) / 2;
                    let right = w - len - left;
                    out.push_str(&"─".repeat(left));
                    out.push_str(s);
                    out.push_str(&"─".repeat(right));
                }
                None => out.push_str(&"─".repeat(w)),
            }
            out.push('─');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn renders_toffoli_with_connectors() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 4);
        b.ccx(q[0], q[2], q[3]);
        let art = render(&b.finish(), &["a", "b", "c", "d"]);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('●'));
        assert!(lines[1].contains('│'), "pass-through row gets a connector");
        assert!(lines[2].contains('●'));
        assert!(lines[3].contains('⊕'));
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.h(q[0]);
        b.h(q[1]);
        let art = render(&b.finish(), &["x", "y"]);
        let width0 = art.lines().next().unwrap().chars().count();
        let mut b2 = CircuitBuilder::new();
        let q2 = b2.qreg("q", 2);
        b2.h(q2[0]);
        b2.cx(q2[0], q2[1]);
        let art2 = render(&b2.finish(), &["x", "y"]);
        let width2 = art2.lines().next().unwrap().chars().count();
        assert!(width0 < width2, "independent gates pack into one column");
    }

    #[test]
    fn conditional_gates_are_annotated() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        let (_, fix) = b.record(|b| b.cz(q[0], q[1]));
        let m = b.measure(q[1], crate::Basis::X);
        b.emit_conditional(m, &fix);
        let art = render(&b.finish(), &["x", "g"]);
        assert!(art.contains("Mx→c0"));
        assert!(art.contains("?c0"));
    }

    #[test]
    fn default_labels_when_none_given() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        b.x(q[0]);
        let art = render(&b.finish(), &[] as &[&str]);
        assert!(art.starts_with("q0"));
    }
}
