//! Resource accounting: exact and expected gate counts.

use std::fmt;
use std::ops::Add;

use crate::gate::{Basis, Gate};
use crate::op::Op;

/// Exact gate counts of a circuit, one field per gate family.
///
/// Operations inside [`Op::Conditional`] blocks are counted at full weight —
/// this is the *worst-case* count. For the paper's "in expectation" columns
/// (where classically-controlled corrections execute with probability ½) use
/// [`ExpectedCounts`].
///
/// # Examples
///
/// ```
/// use mbu_circuit::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 3);
/// b.ccx(q[0], q[1], q[2]);
/// b.cx(q[0], q[1]);
/// let counts = b.finish().counts();
/// assert_eq!(counts.toffoli, 1);
/// assert_eq!(counts.cx, 1);
/// assert_eq!(counts.total_gates(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct GateCounts {
    /// Pauli X (NOT) gates.
    pub x: u64,
    /// Pauli Z gates.
    pub z: u64,
    /// Hadamard gates.
    pub h: u64,
    /// Single-qubit phase rotations `R(θ)`.
    pub phase: u64,
    /// CNOT gates.
    pub cx: u64,
    /// CZ gates.
    pub cz: u64,
    /// Toffoli (CCX) gates.
    pub toffoli: u64,
    /// Doubly-controlled Z gates.
    pub ccz: u64,
    /// Controlled rotations `C-R(θ)`.
    pub cphase: u64,
    /// Doubly-controlled rotations `CC-R(θ)`.
    pub ccphase: u64,
    /// Swap gates.
    pub swap: u64,
    /// Computational-basis measurements.
    pub measure_z: u64,
    /// X-basis measurements (the MBU primitive).
    pub measure_x: u64,
    /// Qubit resets (classical feed-forward; free in the paper's counting).
    pub reset: u64,
}

impl GateCounts {
    /// Counts every operation in `ops`, weighting conditional bodies fully.
    #[must_use]
    pub fn from_ops(ops: &[Op]) -> Self {
        let mut counts = Self::default();
        counts.record_ops(ops);
        counts
    }

    fn record_ops(&mut self, ops: &[Op]) {
        for op in ops {
            match op {
                Op::Gate(g) => self.record_gate(g),
                Op::Measure { basis, .. } => self.record_measurement(*basis),
                Op::Conditional { ops, .. } => self.record_ops(ops),
                Op::Reset(_) => self.reset += 1,
            }
        }
    }

    /// Adds one gate to the tally.
    pub fn record_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::X(_) => self.x += 1,
            Gate::Z(_) => self.z += 1,
            Gate::H(_) => self.h += 1,
            Gate::Phase(..) => self.phase += 1,
            Gate::Cx(..) => self.cx += 1,
            Gate::Cz(..) => self.cz += 1,
            Gate::Ccx(..) => self.toffoli += 1,
            Gate::Ccz(..) => self.ccz += 1,
            Gate::CPhase(..) => self.cphase += 1,
            Gate::CcPhase(..) => self.ccphase += 1,
            Gate::Swap(..) => self.swap += 1,
        }
    }

    /// Adds one measurement to the tally.
    pub fn record_measurement(&mut self, basis: Basis) {
        match basis {
            Basis::Z => self.measure_z += 1,
            Basis::X => self.measure_x += 1,
        }
    }

    /// The paper's "CNOT, CZ" column: CNOT plus (classically controlled or
    /// not) CZ gates.
    #[must_use]
    pub fn cnot_cz(&self) -> u64 {
        self.cx + self.cz
    }

    /// Total unitary gates (measurements excluded).
    #[must_use]
    pub fn total_gates(&self) -> u64 {
        self.x
            + self.z
            + self.h
            + self.phase
            + self.cx
            + self.cz
            + self.toffoli
            + self.ccz
            + self.cphase
            + self.ccphase
            + self.swap
    }

    /// Total measurements, either basis.
    #[must_use]
    pub fn measurements(&self) -> u64 {
        self.measure_z + self.measure_x
    }
}

impl Add for GateCounts {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            x: self.x + rhs.x,
            z: self.z + rhs.z,
            h: self.h + rhs.h,
            phase: self.phase + rhs.phase,
            cx: self.cx + rhs.cx,
            cz: self.cz + rhs.cz,
            toffoli: self.toffoli + rhs.toffoli,
            ccz: self.ccz + rhs.ccz,
            cphase: self.cphase + rhs.cphase,
            ccphase: self.ccphase + rhs.ccphase,
            swap: self.swap + rhs.swap,
            measure_z: self.measure_z + rhs.measure_z,
            measure_x: self.measure_x + rhs.measure_x,
            reset: self.reset + rhs.reset,
        }
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tof={} CX={} CZ={} X={} H={} Z={} R={} CR={} CCR={} CCZ={} SWAP={} Mz={} Mx={}",
            self.toffoli,
            self.cx,
            self.cz,
            self.x,
            self.h,
            self.z,
            self.phase,
            self.cphase,
            self.ccphase,
            self.ccz,
            self.swap,
            self.measure_z,
            self.measure_x,
        )
    }
}

/// Expected gate counts over the circuit's measurement randomness.
///
/// Each [`Op::Conditional`] block is weighted by ½ per nesting level,
/// matching the paper's convention: MBU corrections (Lemma 4.1) and Gidney's
/// AND-uncompute CZ both fire on a uniformly random X-measurement outcome,
/// so their gates cost half "in expectation".
///
/// This weighting is exact precisely when every conditioning bit is the
/// outcome of an X-basis measurement of a `{|0⟩,|1⟩}`-valued garbage qubit,
/// which holds for every construction in this workspace.
///
/// # Examples
///
/// ```
/// use mbu_circuit::{Basis, CircuitBuilder, ExpectedCounts};
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 2);
/// let (_, cz_block) = b.record(|b| b.cz(q[0], q[1]));
/// let outcome = b.measure(q[1], Basis::X);
/// b.emit_conditional(outcome, &cz_block);
/// let expected = b.finish().expected_counts();
/// assert_eq!(expected.cz, 0.5);
/// ```
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct ExpectedCounts {
    /// Expected Pauli X gates.
    pub x: f64,
    /// Expected Pauli Z gates.
    pub z: f64,
    /// Expected Hadamard gates.
    pub h: f64,
    /// Expected phase rotations.
    pub phase: f64,
    /// Expected CNOT gates.
    pub cx: f64,
    /// Expected CZ gates.
    pub cz: f64,
    /// Expected Toffoli gates.
    pub toffoli: f64,
    /// Expected CCZ gates.
    pub ccz: f64,
    /// Expected controlled rotations.
    pub cphase: f64,
    /// Expected doubly-controlled rotations.
    pub ccphase: f64,
    /// Expected swaps.
    pub swap: f64,
    /// Expected Z-basis measurements.
    pub measure_z: f64,
    /// Expected X-basis measurements.
    pub measure_x: f64,
    /// Expected resets.
    pub reset: f64,
}

impl ExpectedCounts {
    /// Counts `ops` weighting each conditional nesting level by ½.
    #[must_use]
    pub fn from_ops(ops: &[Op]) -> Self {
        let mut counts = Self::default();
        counts.record_ops(ops, 1.0);
        counts
    }

    fn record_ops(&mut self, ops: &[Op], weight: f64) {
        for op in ops {
            match op {
                Op::Gate(g) => self.record_gate(g, weight),
                Op::Measure { basis, .. } => match basis {
                    Basis::Z => self.measure_z += weight,
                    Basis::X => self.measure_x += weight,
                },
                Op::Conditional { ops, .. } => self.record_ops(ops, weight / 2.0),
                Op::Reset(_) => self.reset += weight,
            }
        }
    }

    fn record_gate(&mut self, gate: &Gate, weight: f64) {
        match gate {
            Gate::X(_) => self.x += weight,
            Gate::Z(_) => self.z += weight,
            Gate::H(_) => self.h += weight,
            Gate::Phase(..) => self.phase += weight,
            Gate::Cx(..) => self.cx += weight,
            Gate::Cz(..) => self.cz += weight,
            Gate::Ccx(..) => self.toffoli += weight,
            Gate::Ccz(..) => self.ccz += weight,
            Gate::CPhase(..) => self.cphase += weight,
            Gate::CcPhase(..) => self.ccphase += weight,
            Gate::Swap(..) => self.swap += weight,
        }
    }

    /// The paper's "CNOT, CZ" column in expectation.
    #[must_use]
    pub fn cnot_cz(&self) -> f64 {
        self.cx + self.cz
    }

    /// Total expected unitary gates.
    #[must_use]
    pub fn total_gates(&self) -> f64 {
        self.x
            + self.z
            + self.h
            + self.phase
            + self.cx
            + self.cz
            + self.toffoli
            + self.ccz
            + self.cphase
            + self.ccphase
            + self.swap
    }
}

impl From<GateCounts> for ExpectedCounts {
    fn from(c: GateCounts) -> Self {
        Self {
            x: c.x as f64,
            z: c.z as f64,
            h: c.h as f64,
            phase: c.phase as f64,
            cx: c.cx as f64,
            cz: c.cz as f64,
            toffoli: c.toffoli as f64,
            ccz: c.ccz as f64,
            cphase: c.cphase as f64,
            ccphase: c.ccphase as f64,
            swap: c.swap as f64,
            measure_z: c.measure_z as f64,
            measure_x: c.measure_x as f64,
            reset: c.reset as f64,
        }
    }
}

impl Add for ExpectedCounts {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            x: self.x + rhs.x,
            z: self.z + rhs.z,
            h: self.h + rhs.h,
            phase: self.phase + rhs.phase,
            cx: self.cx + rhs.cx,
            cz: self.cz + rhs.cz,
            toffoli: self.toffoli + rhs.toffoli,
            ccz: self.ccz + rhs.ccz,
            cphase: self.cphase + rhs.cphase,
            ccphase: self.ccphase + rhs.ccphase,
            swap: self.swap + rhs.swap,
            measure_z: self.measure_z + rhs.measure_z,
            measure_x: self.measure_x + rhs.measure_x,
            reset: self.reset + rhs.reset,
        }
    }
}

impl fmt::Display for ExpectedCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tof={:.2} CX={:.2} CZ={:.2} X={:.2} H={:.2} R={:.2} CR={:.2}",
            self.toffoli, self.cx, self.cz, self.x, self.h, self.phase, self.cphase,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ClbitId, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn worst_case_counts_conditionals_fully() {
        let ops = vec![
            Op::Gate(Gate::Ccx(q(0), q(1), q(2))),
            Op::Conditional {
                clbit: ClbitId(0),
                ops: vec![Op::Gate(Gate::Cz(q(0), q(1)))],
            },
        ];
        let counts = GateCounts::from_ops(&ops);
        assert_eq!(counts.toffoli, 1);
        assert_eq!(counts.cz, 1);
        assert_eq!(counts.cnot_cz(), 1);
    }

    #[test]
    fn expected_counts_halve_per_nesting_level() {
        let inner = Op::Conditional {
            clbit: ClbitId(1),
            ops: vec![Op::Gate(Gate::X(q(0)))],
        };
        let ops = vec![
            Op::Gate(Gate::X(q(0))),
            Op::Conditional {
                clbit: ClbitId(0),
                ops: vec![Op::Gate(Gate::X(q(0))), inner],
            },
        ];
        let expected = ExpectedCounts::from_ops(&ops);
        assert_eq!(expected.x, 1.0 + 0.5 + 0.25);
    }

    #[test]
    fn adding_counts_is_fieldwise() {
        let a = GateCounts {
            toffoli: 2,
            cx: 3,
            ..GateCounts::default()
        };
        let b = GateCounts {
            toffoli: 5,
            measure_x: 1,
            ..GateCounts::default()
        };
        let sum = a + b;
        assert_eq!(sum.toffoli, 7);
        assert_eq!(sum.cx, 3);
        assert_eq!(sum.measure_x, 1);
    }

    #[test]
    fn conversion_from_exact_counts() {
        let c = GateCounts {
            h: 4,
            measure_x: 2,
            ..GateCounts::default()
        };
        let e = ExpectedCounts::from(c);
        assert_eq!(e.h, 4.0);
        assert_eq!(e.measure_x, 2.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!GateCounts::default().to_string().is_empty());
        assert!(!ExpectedCounts::default().to_string().is_empty());
    }
}
