//! Errors for circuit construction and manipulation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or transforming circuits.
///
/// # Examples
///
/// ```
/// use mbu_circuit::{Basis, CircuitBuilder, CircuitError};
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 1);
/// b.measure(q[0], Basis::X);
/// let circuit = b.finish();
/// assert!(matches!(circuit.adjoint(), Err(CircuitError::AdjointOfMeasurement)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// Tried to take the adjoint of an operation containing a measurement.
    ///
    /// Measurement is irreversible; as the paper observes (Remark 2.23),
    /// circuits with measurement-based uncomputation must be inverted by
    /// swapping the roles of computation and uncomputation instead.
    AdjointOfMeasurement,
    /// An operation references a qubit index outside the circuit.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// An operation references a classical bit index outside the circuit.
    ClbitOutOfRange {
        /// The offending classical bit index.
        clbit: u32,
        /// Number of classical bits in the circuit.
        num_clbits: usize,
    },
    /// A gate uses the same qubit for two different operands.
    DuplicateOperand {
        /// The duplicated qubit index.
        qubit: u32,
    },
    /// The careful-profile static verifier found a malformed instruction
    /// stream after a compiler pass (see `mbu_circuit::verify`). This is
    /// always a compiler bug, never a property of the input circuit: the
    /// pass named in `pass` emitted a program that fails well-formedness.
    VerificationFailed {
        /// Which pipeline stage produced the rejected stream.
        pass: &'static str,
        /// The first finding, rendered for display.
        finding: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::AdjointOfMeasurement => {
                write!(f, "cannot take the adjoint of a measurement")
            }
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit q{qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => write!(
                f,
                "classical bit c{clbit} out of range for {num_clbits} classical bits"
            ),
            CircuitError::DuplicateOperand { qubit } => {
                write!(f, "gate uses qubit q{qubit} for more than one operand")
            }
            CircuitError::VerificationFailed { pass, finding } => {
                write!(f, "static verification failed after {pass}: {finding}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CircuitError::AdjointOfMeasurement.to_string(),
            "cannot take the adjoint of a measurement"
        );
        assert!(CircuitError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 3
        }
        .to_string()
        .contains("q9"));
        assert!(CircuitError::DuplicateOperand { qubit: 2 }
            .to_string()
            .contains("q2"));
    }
}
