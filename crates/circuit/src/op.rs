//! Operations: gates, measurements and classically-controlled blocks.

use std::fmt;

use crate::error::CircuitError;
use crate::gate::{Basis, Gate};

/// Identifier of a qubit within a [`Circuit`](crate::Circuit).
///
/// # Examples
///
/// ```
/// use mbu_circuit::QubitId;
///
/// let q = QubitId(3);
/// assert_eq!(q.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QubitId(pub u32);

impl QubitId {
    /// The qubit's index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a classical bit (a measurement record slot).
///
/// # Examples
///
/// ```
/// use mbu_circuit::ClbitId;
///
/// assert_eq!(ClbitId(0).index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClbitId(pub u32);

impl ClbitId {
    /// The classical bit's index as a `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClbitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One step of an adaptive quantum circuit.
///
/// Besides unitary [`Gate`]s, circuits may measure qubits mid-circuit
/// (writing the outcome to a classical bit) and execute blocks of operations
/// conditioned on a classical bit being 1. These two non-unitary operations
/// are exactly what the MBU lemma (Lemma 4.1) and Gidney's logical-AND
/// uncomputation (Figure 11) require.
///
/// # Examples
///
/// ```
/// use mbu_circuit::{Basis, Gate, Op, ClbitId, QubitId};
///
/// // Gidney's AND uncompute: measure in X, then CZ under classical control.
/// let ops = vec![
///     Op::Measure { qubit: QubitId(2), basis: Basis::X, clbit: ClbitId(0) },
///     Op::Conditional {
///         clbit: ClbitId(0),
///         ops: vec![Op::Gate(Gate::Cz(QubitId(0), QubitId(1)))],
///     },
/// ];
/// assert_eq!(ops.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// A unitary gate.
    Gate(Gate),
    /// Measure `qubit` in `basis`; store the outcome in `clbit` and leave
    /// the qubit in the corresponding post-measurement basis state.
    Measure {
        /// The measured qubit.
        qubit: QubitId,
        /// Measurement basis (`Z` computational, `X` Hadamard).
        basis: Basis,
        /// Classical record slot receiving the outcome.
        clbit: ClbitId,
    },
    /// Execute `ops` if the classical bit `clbit` holds 1, else skip.
    Conditional {
        /// The controlling classical bit.
        clbit: ClbitId,
        /// The conditioned block.
        ops: Vec<Op>,
    },
    /// Return `qubit` to `|0⟩` (measure and classically flip).
    ///
    /// Used after measurement-based uncomputation to recycle the measured
    /// ancilla — the qubit is already in a known computational state, so
    /// hardware performs this with classical feed-forward rather than
    /// quantum gates, and the paper's gate counts exclude it.
    Reset(QubitId),
}

impl Op {
    /// The adjoint of this operation.
    ///
    /// Conditional blocks invert to conditional blocks over the adjoint body
    /// (conditioning on an already-written classical bit commutes with
    /// unitaries on other qubits).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::AdjointOfMeasurement`] if the operation is or
    /// contains a measurement: measurement is irreversible, as the paper
    /// notes for the logical-AND adder (Remark 2.23).
    pub fn adjoint(&self) -> Result<Op, CircuitError> {
        match self {
            Op::Gate(g) => Ok(Op::Gate(g.adjoint())),
            Op::Measure { .. } | Op::Reset(_) => Err(CircuitError::AdjointOfMeasurement),
            Op::Conditional { clbit, ops } => {
                let mut inverted = Vec::with_capacity(ops.len());
                for op in ops.iter().rev() {
                    inverted.push(op.adjoint()?);
                }
                Ok(Op::Conditional {
                    clbit: *clbit,
                    ops: inverted,
                })
            }
        }
    }

    /// Whether the operation (recursively) contains a measurement.
    #[must_use]
    pub fn contains_measurement(&self) -> bool {
        match self {
            Op::Gate(_) => false,
            Op::Measure { .. } | Op::Reset(_) => true,
            Op::Conditional { ops, .. } => ops.iter().any(Op::contains_measurement),
        }
    }

    /// Calls `visit` for every qubit the operation touches (recursively).
    pub fn for_each_qubit(&self, visit: &mut impl FnMut(QubitId)) {
        match self {
            Op::Gate(g) => g.for_each_qubit(visit),
            Op::Measure { qubit, .. } => visit(*qubit),
            Op::Reset(qubit) => visit(*qubit),
            Op::Conditional { ops, .. } => {
                for op in ops {
                    op.for_each_qubit(visit);
                }
            }
        }
    }

    /// The largest classical-bit index referenced, if any.
    #[must_use]
    pub fn max_clbit(&self) -> Option<u32> {
        match self {
            Op::Gate(_) | Op::Reset(_) => None,
            Op::Measure { clbit, .. } => Some(clbit.0),
            Op::Conditional { clbit, ops } => {
                let inner = ops.iter().filter_map(Op::max_clbit).max();
                Some(inner.map_or(clbit.0, |m| m.max(clbit.0)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Angle;

    #[test]
    fn adjoint_of_gate_op() {
        let op = Op::Gate(Gate::Phase(QubitId(0), Angle::turn_over_power_of_two(3)));
        let adj = op.adjoint().unwrap();
        let Op::Gate(Gate::Phase(_, theta)) = adj else {
            panic!("expected phase gate");
        };
        assert_eq!(theta, -Angle::turn_over_power_of_two(3));
    }

    #[test]
    fn adjoint_of_measurement_is_an_error() {
        let op = Op::Measure {
            qubit: QubitId(0),
            basis: Basis::X,
            clbit: ClbitId(0),
        };
        assert!(matches!(
            op.adjoint(),
            Err(CircuitError::AdjointOfMeasurement)
        ));
    }

    #[test]
    fn adjoint_of_conditional_reverses_body() {
        let body = vec![
            Op::Gate(Gate::X(QubitId(0))),
            Op::Gate(Gate::Cx(QubitId(0), QubitId(1))),
        ];
        let op = Op::Conditional {
            clbit: ClbitId(1),
            ops: body,
        };
        let Op::Conditional { clbit, ops } = op.adjoint().unwrap() else {
            panic!("expected conditional");
        };
        assert_eq!(clbit, ClbitId(1));
        assert_eq!(ops[0], Op::Gate(Gate::Cx(QubitId(0), QubitId(1))));
        assert_eq!(ops[1], Op::Gate(Gate::X(QubitId(0))));
    }

    #[test]
    fn contains_measurement_recurses() {
        let op = Op::Conditional {
            clbit: ClbitId(0),
            ops: vec![Op::Measure {
                qubit: QubitId(1),
                basis: Basis::Z,
                clbit: ClbitId(1),
            }],
        };
        assert!(op.contains_measurement());
        assert_eq!(op.max_clbit(), Some(1));
    }
}
