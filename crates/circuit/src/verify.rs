//! Static verification of compiled programs: a linear IR validator and a
//! symbolic equivalence checker, both running *without* simulating a
//! single amplitude.
//!
//! The compile pipeline stacks six semantics-critical passes (peephole
//! cancellation/merging, dense-block fusion, permutation-run fusion,
//! liveness/`Drop` reclamation, segmentation, representation planning).
//! The paper's contribution — measurement-based uncomputation is *exactly*
//! equivalent to unitary uncomputation — makes a miscompile that silently
//! drops a phase correction or reorders a `Drop` past a live use the worst
//! possible bug class, and differential simulation cannot pin it at the
//! cryptographic widths (n = 64…1024) the circuits target. This module
//! proves compiles safe statically, in two layers:
//!
//! # Layer 1 — the IR validator
//!
//! [`validate`] is a linear well-formedness checker over any instruction
//! stream (wrapped in a [`ProgramView`]), and
//! [`CompiledCircuit::verify`] additionally cross-checks a finished
//! program against its own [`PassStats`](crate::PassStats) and
//! representation plan. It checks:
//!
//! * operand ranges and duplicate operands, for plain gates and for the
//!   local operands inside fused blocks;
//! * branch target validity and well-nestedness of guarded regions;
//! * fused-block table consistency: sorted support, width caps
//!   ([`MAX_FUSED_QUBITS`] dense / [`MAX_PERM_FUSED_QUBITS`] permutation),
//!   local indices in range, and — at the program level — the
//!   block/constituent tallies recorded in the stats;
//! * `Drop` safety via a def-use dataflow walk: no instruction touches a
//!   qubit after its `Drop`, every dropped qubit was collapsed (measured
//!   or reset) beforehand, and drops sit at guard depth zero — exactly
//!   the invariants the reclamation pass promises;
//! * segment-profile and plan coherence: the verifier re-derives every
//!   [`SegmentProfile`] with its own independent walk and re-checks that
//!   each segment the planner mapped to
//!   [`PlannedRepr::Phase`](crate::PlannedRepr) really has the
//!   diagonal-heavy structure ([`SegmentProfile::phase_suitable`]) the
//!   plan claims.
//!
//! Under the `careful` profile (more precisely: whenever
//! `debug_assertions` are on, which the workspace's `careful` profile
//! enables on top of release codegen), [`CompiledCircuit::with_config`]
//! runs the validator automatically after **every** pipeline stage and
//! fails the compile with
//! [`CircuitError::VerificationFailed`] on the first finding — a compiler
//! bug surfaces at the pass that introduced it, not at execution time. In
//! plain release builds the checks are skipped and the program's stats
//! record [`verify_skipped`](crate::PassStats::verify_skipped) instead.
//!
//! # Layer 2 — the symbolic equivalence checker
//!
//! [`check_equivalence`] proves a pre-pass and a post-pass stream equal as
//! state functions. The abstract domain is the one the backends already
//! exploit: compiled differences are tracked as one small **difference
//! operator** `D = (pre prefix) · (post prefix)†` over the few qubits on
//! which the streams currently disagree, with entries in the exact ring
//! `Z[e^{2πiθ}, 1/√2]` of dyadic phases ([`Angle`]) and half-powers of
//! two. Identical gate fronts whose operands avoid `D`'s support pop in
//! O(1); everything else is absorbed into `D` by exact symbolic matrix
//! update, and `D` is pruned back to its minimal support after every
//! step. Non-unitary instructions are hard barriers: both streams must
//! present the same measurement/reset/branch and `D` must have returned
//! to the identity (passes never move gates across barriers), guarded
//! regions are compared recursively, and fused blocks are transparently
//! expanded to their constituents. On mismatch the checker reports the
//! **first diverging instruction** on each side — the point where `D`
//! left the identity and never recovered.
//!
//! ## Completeness boundary
//!
//! The checker is *sound, not complete*: [`Equivalence::Equal`] is a
//! proof, but a transformation outside the passes' repertoire can yield
//! [`Equivalence::Diverged`] for observably equal streams (term-set
//! equality in the ring is syntactic), and
//! [`Equivalence::Inconclusive`] when the difference operator leaves the
//! abstract domain: support wider than [`EquivOptions::max_support`],
//! or phase arithmetic past the `2^128` dyadic range (e.g. folding
//! `θ − π` for the `2^{-1025}`-turn rotations of a width-1024 QFT adder —
//! such programs fall back to validator-only coverage). All Table 1–6
//! adder circuits at n = 64 sit comfortably inside the domain: their
//! angles are `2π/2^k` with `k ≤ 66` and pass-induced differences stay
//! within a three-qubit window.

use std::collections::VecDeque;
use std::fmt;

use crate::angle::Angle;
use crate::compile::{
    CompiledCircuit, FusedUnitary, Instr, Segment, MAX_FUSED_QUBITS, MAX_PERM_FUSED_QUBITS,
};
use crate::error::CircuitError;
use crate::gate::{Basis, Gate};
use crate::op::QubitId;
use crate::plan::{PlanConfig, PlannedRepr, SegmentProfile};

/// A borrowed, possibly untrusted instruction stream plus the register
/// shape it claims — the validator's input. Obtain one from a finished
/// program via [`CompiledCircuit::view`], or build one with
/// [`ProgramView::new`] to check a hand-assembled (or deliberately
/// mutated) stream.
#[derive(Clone, Copy, Debug)]
pub struct ProgramView<'a> {
    num_qubits: usize,
    num_clbits: usize,
    instrs: &'a [Instr],
    fused: &'a [FusedUnitary],
}

impl<'a> ProgramView<'a> {
    /// Wraps a raw stream and its fused-block table.
    #[must_use]
    pub fn new(
        num_qubits: usize,
        num_clbits: usize,
        instrs: &'a [Instr],
        fused: &'a [FusedUnitary],
    ) -> Self {
        Self {
            num_qubits,
            num_clbits,
            instrs,
            fused,
        }
    }

    /// The claimed qubit count.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The claimed classical-bit count.
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The instruction stream.
    #[must_use]
    pub fn instrs(&self) -> &'a [Instr] {
        self.instrs
    }

    /// The fused-block table referenced by [`Instr::Fused`] payloads.
    #[must_use]
    pub fn fused(&self) -> &'a [FusedUnitary] {
        self.fused
    }
}

/// One well-formedness violation found by the Layer-1 validator, with
/// enough position information to localise the fault to an exact
/// instruction or fused block.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Finding {
    /// An instruction references a qubit outside the register.
    QubitOutOfRange {
        /// Offending instruction.
        pc: usize,
        /// Offending qubit index.
        qubit: u32,
    },
    /// An instruction references a classical bit outside the record.
    ClbitOutOfRange {
        /// Offending instruction.
        pc: usize,
        /// Offending classical-bit index.
        clbit: u32,
    },
    /// A gate uses one qubit for two operands.
    DuplicateOperand {
        /// Offending instruction.
        pc: usize,
        /// The duplicated qubit.
        qubit: u32,
    },
    /// A branch's join target lies past the end of the stream.
    BranchTargetOutOfRange {
        /// Offending branch instruction.
        pc: usize,
        /// Its (out-of-range) join target.
        target: usize,
    },
    /// A branch's guarded region crosses the end of an enclosing guard.
    BranchNotNested {
        /// Offending branch instruction.
        pc: usize,
        /// Its join target.
        target: usize,
        /// End of the enclosing guarded region it escapes.
        enclosing_end: usize,
    },
    /// An [`Instr::Fused`] payload indexes past the fused-block table.
    FusedIndexOutOfRange {
        /// Offending instruction.
        pc: usize,
        /// The out-of-range table index.
        index: u32,
    },
    /// A fused block's global support is not strictly ascending.
    FusedSupportUnsorted {
        /// Offending block (table index).
        block: usize,
    },
    /// A fused block's support contains a qubit outside the register.
    FusedSupportOutOfRange {
        /// Offending block (table index).
        block: usize,
        /// Offending qubit index.
        qubit: u32,
    },
    /// A constituent gate of a fused block uses a local operand at or
    /// past the block width.
    FusedLocalOperandOutOfRange {
        /// Offending block (table index).
        block: usize,
        /// Constituent gate position within the block.
        gate: usize,
        /// The out-of-range local operand.
        operand: u32,
    },
    /// A constituent gate of a fused block repeats a local operand.
    FusedLocalDuplicate {
        /// Offending block (table index).
        block: usize,
        /// Constituent gate position within the block.
        gate: usize,
        /// The duplicated local operand.
        operand: u32,
    },
    /// A fused block holds fewer constituents than the fusion pass ever
    /// emits (empty blocks break every consumer; singletons mean the pass
    /// fused nothing and miscounted its stats).
    FusedBlockTrivial {
        /// Offending block (table index).
        block: usize,
        /// Its constituent-gate count.
        gates: usize,
    },
    /// A fused block is wider than its kind allows.
    FusedBlockTooWide {
        /// Offending block (table index).
        block: usize,
        /// Its support width.
        width: usize,
        /// The applicable cap ([`MAX_FUSED_QUBITS`] for dense blocks,
        /// [`MAX_PERM_FUSED_QUBITS`] for permutation blocks).
        max: usize,
    },
    /// An instruction touches a qubit after the qubit's [`Instr::Drop`].
    UseAfterDrop {
        /// The instruction touching the dead qubit.
        pc: usize,
        /// The dropped qubit.
        qubit: u32,
        /// Where the qubit was dropped.
        drop_pc: usize,
    },
    /// A qubit is dropped without a preceding measurement or reset.
    DropWithoutCollapse {
        /// Offending drop instruction.
        pc: usize,
        /// The dropped qubit.
        qubit: u32,
    },
    /// A drop sits inside a guarded region (the reclamation pass only
    /// releases qubits unconditionally, at guard depth zero).
    DropInsideGuard {
        /// Offending drop instruction.
        pc: usize,
        /// The dropped qubit.
        qubit: u32,
    },
    /// A recorded [`PassStats`](crate::PassStats) counter disagrees with
    /// the program it describes.
    StatsMismatch {
        /// Which counter.
        field: &'static str,
        /// What the stats recorded.
        recorded: u64,
        /// What the program actually contains.
        actual: u64,
    },
    /// The recorded segment profiles or representation plan disagree with
    /// the verifier's independent re-derivation.
    PlanIncoherent {
        /// Segment index (position in [`CompiledCircuit::segments`]).
        segment: usize,
        /// What disagrees.
        why: String,
    },
}

impl Finding {
    /// The instruction the finding localises to, when it concerns one
    /// (table- and stats-level findings return `None`).
    #[must_use]
    pub fn pc(&self) -> Option<usize> {
        match self {
            Finding::QubitOutOfRange { pc, .. }
            | Finding::ClbitOutOfRange { pc, .. }
            | Finding::DuplicateOperand { pc, .. }
            | Finding::BranchTargetOutOfRange { pc, .. }
            | Finding::BranchNotNested { pc, .. }
            | Finding::FusedIndexOutOfRange { pc, .. }
            | Finding::UseAfterDrop { pc, .. }
            | Finding::DropWithoutCollapse { pc, .. }
            | Finding::DropInsideGuard { pc, .. } => Some(*pc),
            _ => None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::QubitOutOfRange { pc, qubit } => {
                write!(f, "pc {pc}: qubit q{qubit} out of range")
            }
            Finding::ClbitOutOfRange { pc, clbit } => {
                write!(f, "pc {pc}: classical bit c{clbit} out of range")
            }
            Finding::DuplicateOperand { pc, qubit } => {
                write!(f, "pc {pc}: qubit q{qubit} used for more than one operand")
            }
            Finding::BranchTargetOutOfRange { pc, target } => {
                write!(f, "pc {pc}: branch target {target} past end of program")
            }
            Finding::BranchNotNested {
                pc,
                target,
                enclosing_end,
            } => write!(
                f,
                "pc {pc}: branch target {target} escapes enclosing guard ending at {enclosing_end}"
            ),
            Finding::FusedIndexOutOfRange { pc, index } => {
                write!(f, "pc {pc}: fused index {index} past table end")
            }
            Finding::FusedSupportUnsorted { block } => {
                write!(f, "fused[{block}]: support not strictly ascending")
            }
            Finding::FusedSupportOutOfRange { block, qubit } => {
                write!(f, "fused[{block}]: support qubit q{qubit} out of range")
            }
            Finding::FusedLocalOperandOutOfRange {
                block,
                gate,
                operand,
            } => write!(
                f,
                "fused[{block}] gate {gate}: local operand q{operand} outside block width"
            ),
            Finding::FusedLocalDuplicate {
                block,
                gate,
                operand,
            } => write!(
                f,
                "fused[{block}] gate {gate}: local operand q{operand} duplicated"
            ),
            Finding::FusedBlockTrivial { block, gates } => {
                write!(f, "fused[{block}]: only {gates} constituent gates")
            }
            Finding::FusedBlockTooWide { block, width, max } => {
                write!(f, "fused[{block}]: spans {width} qubits (cap {max})")
            }
            Finding::UseAfterDrop { pc, qubit, drop_pc } => {
                write!(f, "pc {pc}: touches qubit q{qubit} dropped at pc {drop_pc}")
            }
            Finding::DropWithoutCollapse { pc, qubit } => write!(
                f,
                "pc {pc}: drop of q{qubit} without a preceding measurement or reset"
            ),
            Finding::DropInsideGuard { pc, qubit } => {
                write!(f, "pc {pc}: drop of q{qubit} inside a guarded region")
            }
            Finding::StatsMismatch {
                field,
                recorded,
                actual,
            } => write!(
                f,
                "stats record {field} = {recorded} but the program has {actual}"
            ),
            Finding::PlanIncoherent { segment, why } => {
                write!(f, "segment {segment}: {why}")
            }
        }
    }
}

/// The error [`CompiledCircuit::verify`] returns: every Layer-1 finding,
/// most localised first.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    findings: Vec<Finding>,
}

impl VerifyError {
    /// All findings, in discovery order.
    #[must_use]
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self.findings.first().expect("at least one finding");
        if self.findings.len() == 1 {
            write!(f, "program fails verification: {first}")
        } else {
            write!(
                f,
                "program fails verification with {} findings, first: {first}",
                self.findings.len()
            )
        }
    }
}

impl std::error::Error for VerifyError {}

/// The operand qubits an instruction touches (gate operands, fused-block
/// global support, measured/reset/dropped qubit). Duplicates are kept so
/// callers can detect them.
fn touched_qubits(instr: &Instr, fused: &[FusedUnitary], out: &mut Vec<u32>) {
    out.clear();
    match instr {
        Instr::Gate(g) => g.for_each_qubit(&mut |q| out.push(q.0)),
        Instr::Measure { qubit, .. } | Instr::Reset(qubit) | Instr::Drop(qubit) => {
            out.push(qubit.0);
        }
        Instr::Fused(idx) => {
            if let Some(block) = fused.get(*idx as usize) {
                out.extend(block.qubits().iter().map(|q| q.0));
            }
        }
        Instr::BranchUnless { .. } => {}
    }
}

/// Layer-1 validation of an arbitrary instruction stream: every
/// well-formedness finding, in discovery order (fused-table findings
/// first, then a single forward pass over the instructions). An empty
/// result means the stream is safe to execute on any backend.
#[must_use]
pub fn validate(view: &ProgramView<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let num_qubits = u32::try_from(view.num_qubits).unwrap_or(u32::MAX);
    let num_clbits = u32::try_from(view.num_clbits).unwrap_or(u32::MAX);
    let len = view.instrs.len();

    for (bi, block) in view.fused.iter().enumerate() {
        if block.gates().is_empty() {
            findings.push(Finding::FusedBlockTrivial {
                block: bi,
                gates: 0,
            });
        }
        let width = block.num_qubits();
        if !block.qubits().windows(2).all(|w| w[0] < w[1]) {
            findings.push(Finding::FusedSupportUnsorted { block: bi });
        }
        for q in block.qubits() {
            if q.0 >= num_qubits {
                findings.push(Finding::FusedSupportOutOfRange {
                    block: bi,
                    qubit: q.0,
                });
            }
        }
        let max = if block.is_permutation() {
            MAX_PERM_FUSED_QUBITS
        } else {
            MAX_FUSED_QUBITS
        };
        if width > max {
            findings.push(Finding::FusedBlockTooWide {
                block: bi,
                width,
                max,
            });
        }
        let local_width = u32::try_from(width).unwrap_or(u32::MAX);
        let mut ops = Vec::new();
        for (gi, gate) in block.gates().iter().enumerate() {
            ops.clear();
            gate.for_each_qubit(&mut |q| ops.push(q.0));
            for (i, &op) in ops.iter().enumerate() {
                if op >= local_width {
                    findings.push(Finding::FusedLocalOperandOutOfRange {
                        block: bi,
                        gate: gi,
                        operand: op,
                    });
                }
                if ops[..i].contains(&op) {
                    findings.push(Finding::FusedLocalDuplicate {
                        block: bi,
                        gate: gi,
                        operand: op,
                    });
                }
            }
        }
    }

    // One forward pass: operand ranges, guard nesting, drop dataflow.
    let mut guard_ends: Vec<usize> = Vec::new();
    let mut collapsed = vec![false; view.num_qubits];
    let mut dropped: Vec<Option<usize>> = vec![None; view.num_qubits];
    let mut ops = Vec::new();
    for (pc, instr) in view.instrs.iter().enumerate() {
        while guard_ends.last() == Some(&pc) {
            guard_ends.pop();
        }
        // Range and duplicate checks on the operands themselves.
        touched_qubits(instr, view.fused, &mut ops);
        for (i, &q) in ops.iter().enumerate() {
            if q >= num_qubits && !matches!(instr, Instr::Fused(_)) {
                findings.push(Finding::QubitOutOfRange { pc, qubit: q });
            }
            if matches!(instr, Instr::Gate(_)) && ops[..i].contains(&q) {
                findings.push(Finding::DuplicateOperand { pc, qubit: q });
            }
        }
        // Nothing may touch a qubit past its drop — including a second
        // drop, a re-measurement, or a fused block straddling it.
        for &q in &ops {
            if let Some(&Some(drop_pc)) = dropped.get(q as usize) {
                findings.push(Finding::UseAfterDrop {
                    pc,
                    qubit: q,
                    drop_pc,
                });
            }
        }
        match instr {
            Instr::Gate(_) => {}
            Instr::Measure { clbit, qubit, .. } => {
                if clbit.0 >= num_clbits {
                    findings.push(Finding::ClbitOutOfRange { pc, clbit: clbit.0 });
                }
                if let Some(c) = collapsed.get_mut(qubit.index()) {
                    *c = true;
                }
            }
            Instr::Reset(qubit) => {
                if let Some(c) = collapsed.get_mut(qubit.index()) {
                    *c = true;
                }
            }
            Instr::BranchUnless { clbit, skip } => {
                if clbit.0 >= num_clbits {
                    findings.push(Finding::ClbitOutOfRange { pc, clbit: clbit.0 });
                }
                let target = pc + 1 + *skip as usize;
                if target > len {
                    findings.push(Finding::BranchTargetOutOfRange { pc, target });
                } else {
                    if let Some(&enclosing_end) = guard_ends.last() {
                        if target > enclosing_end {
                            findings.push(Finding::BranchNotNested {
                                pc,
                                target,
                                enclosing_end,
                            });
                        }
                    }
                    guard_ends.push(target);
                }
            }
            Instr::Drop(qubit) => {
                let q = qubit.index();
                // A second drop was already reported as use-after-drop.
                if dropped.get(q).is_some_and(Option::is_none) {
                    if !collapsed[q] {
                        findings.push(Finding::DropWithoutCollapse { pc, qubit: qubit.0 });
                    }
                    if !guard_ends.is_empty() {
                        findings.push(Finding::DropInsideGuard { pc, qubit: qubit.0 });
                    }
                    dropped[q] = Some(pc);
                }
            }
            Instr::Fused(idx) => {
                if (*idx as usize) >= view.fused.len() {
                    findings.push(Finding::FusedIndexOutOfRange { pc, index: *idx });
                }
            }
        }
    }
    findings
}

/// Independent re-derivation of the per-segment structural profiles: the
/// same facts [`CompiledCircuit::segment_profiles`] computes, but from a
/// fresh walk written against the *specification* (segments are maximal
/// unitary runs cut at barriers and join targets; occupancy starts at one
/// entry, doubles per `H`, halves per collapse) so drift in either
/// implementation surfaces as a [`Finding::PlanIncoherent`].
fn rederive_profiles(view: &ProgramView<'_>) -> Vec<SegmentProfile> {
    let len = view.instrs.len();
    let mut join = vec![false; len + 1];
    for (pc, instr) in view.instrs.iter().enumerate() {
        if let Instr::BranchUnless { skip, .. } = instr {
            let target = pc + 1 + *skip as usize;
            if target <= len {
                join[target] = true;
            }
        }
    }
    let width_log2 = u32::try_from(view.num_qubits).unwrap_or(u32::MAX);
    let mut profiles = Vec::new();
    let mut occ_log2: u32 = 0;
    let mut run_start: Option<usize> = None;
    let close = |profiles: &mut Vec<SegmentProfile>, occ: &mut u32, start: usize, end: usize| {
        let mut perm_only = true;
        let mut diag_only = true;
        let mut h_count = 0u32;
        let mut diag_count = 0u32;
        let mut support = std::collections::BTreeSet::new();
        let mut classify = |g: &Gate| {
            perm_only &= g.is_permutation();
            diag_only &= g.is_diagonal();
            h_count += u32::from(matches!(g, Gate::H(_)));
            diag_count += u32::from(g.is_diagonal());
        };
        for instr in &view.instrs[start..end] {
            match instr {
                Instr::Gate(g) => {
                    classify(g);
                    g.for_each_qubit(&mut |q| {
                        support.insert(q.0);
                    });
                }
                Instr::Fused(idx) => {
                    if let Some(block) = view.fused.get(*idx as usize) {
                        for g in block.gates() {
                            classify(g);
                        }
                        for q in block.qubits() {
                            support.insert(q.0);
                        }
                    }
                }
                _ => {}
            }
        }
        *occ = occ.saturating_add(h_count).min(width_log2);
        profiles.push(SegmentProfile {
            segment: Segment { start, end },
            perm_only,
            diag_only,
            h_count,
            diag_count,
            support_width: support.len(),
            occ_ceiling_log2: *occ,
        });
    };
    for (pc, instr) in view.instrs.iter().enumerate() {
        let unitary = matches!(instr, Instr::Gate(_) | Instr::Fused(_));
        if join[pc] || !unitary {
            if let Some(start) = run_start.take() {
                close(&mut profiles, &mut occ_log2, start, pc);
            }
        }
        if matches!(instr, Instr::Measure { .. } | Instr::Reset(_)) {
            occ_log2 = occ_log2.saturating_sub(1);
        }
        if unitary && run_start.is_none() {
            run_start = Some(pc);
        }
    }
    if let Some(start) = run_start {
        close(&mut profiles, &mut occ_log2, start, len);
    }
    profiles
}

fn push_stat(findings: &mut Vec<Finding>, field: &'static str, recorded: u64, actual: u64) {
    if recorded != actual {
        findings.push(Finding::StatsMismatch {
            field,
            recorded,
            actual,
        });
    }
}

/// Full Layer-1 validation of a finished program: the stream checks of
/// [`validate`] plus stats consistency (emitted/fused/drop/segment/plan
/// tallies must describe this exact program) and segment-profile/plan
/// coherence against an independent re-derivation.
#[must_use]
pub fn validate_compiled(compiled: &CompiledCircuit) -> Vec<Finding> {
    let view = compiled.view();
    let mut findings = validate(&view);
    for (bi, block) in view.fused.iter().enumerate() {
        // The fusion passes only emit blocks that absorb at least two
        // gates; stream-level validation already flagged empty blocks.
        if block.gates().len() == 1 {
            findings.push(Finding::FusedBlockTrivial {
                block: bi,
                gates: 1,
            });
        }
    }

    let stats = compiled.stats();
    let instrs = view.instrs;
    push_stat(
        &mut findings,
        "emitted_instrs",
        stats.emitted_instrs as u64,
        instrs.len() as u64,
    );
    push_stat(
        &mut findings,
        "fused_blocks",
        stats.fused_blocks,
        view.fused.len() as u64,
    );
    push_stat(
        &mut findings,
        "fused_gates",
        stats.fused_gates,
        view.fused.iter().map(|b| b.gates().len() as u64).sum(),
    );
    push_stat(
        &mut findings,
        "dead_qubits_reclaimed",
        stats.dead_qubits_reclaimed,
        instrs
            .iter()
            .filter(|i| matches!(i, Instr::Drop(_)))
            .count() as u64,
    );
    push_stat(
        &mut findings,
        "fork_points",
        stats.fork_points as u64,
        compiled.fork_points() as u64,
    );

    let recorded = compiled.segment_profiles();
    let rederived = rederive_profiles(&view);
    push_stat(
        &mut findings,
        "segments",
        stats.segments as u64,
        rederived.len() as u64,
    );
    if recorded.len() == rederived.len() {
        for (i, (a, b)) in recorded.iter().zip(&rederived).enumerate() {
            if a != b {
                findings.push(Finding::PlanIncoherent {
                    segment: i,
                    why: format!("recorded profile ({a}) != re-derived profile ({b})"),
                });
            }
        }
    } else {
        findings.push(Finding::PlanIncoherent {
            segment: 0,
            why: format!(
                "{} recorded profiles vs {} re-derived segments",
                recorded.len(),
                rederived.len()
            ),
        });
    }

    let plan_config = PlanConfig::default();
    let plan = compiled.representation_plan(&plan_config);
    let count_of = |kind: PlannedRepr| plan.iter().filter(|r| **r == kind).count() as u64;
    push_stat(
        &mut findings,
        "planned_dense",
        stats.planned_dense as u64,
        count_of(PlannedRepr::Dense),
    );
    push_stat(
        &mut findings,
        "planned_sparse",
        stats.planned_sparse as u64,
        count_of(PlannedRepr::Sparse),
    );
    push_stat(
        &mut findings,
        "planned_phase",
        stats.planned_phase as u64,
        count_of(PlannedRepr::Phase),
    );
    if plan.len() == rederived.len() {
        for (i, repr) in plan.iter().enumerate() {
            if *repr == PlannedRepr::Phase && !rederived[i].phase_suitable(&plan_config) {
                findings.push(Finding::PlanIncoherent {
                    segment: i,
                    why: format!(
                        "planned phase but the re-derived profile ({}) lacks the \
                         diagonal structure the phase representation needs",
                        rederived[i]
                    ),
                });
            }
        }
    }
    findings
}

/// Careful-profile stage gate for the compile pipeline: validates the
/// intermediate stream a pass just produced and converts the first
/// finding into a [`CircuitError::VerificationFailed`] naming the pass.
/// Compiled out (always `Ok`) when `debug_assertions` are off.
pub(crate) fn expect_valid_stage(
    pass: &'static str,
    num_qubits: usize,
    num_clbits: usize,
    instrs: &[Instr],
    fused: &[FusedUnitary],
) -> Result<(), CircuitError> {
    if !cfg!(debug_assertions) {
        return Ok(());
    }
    let view = ProgramView::new(num_qubits, num_clbits, instrs, fused);
    match validate(&view).into_iter().next() {
        None => Ok(()),
        Some(finding) => Err(CircuitError::VerificationFailed {
            pass,
            finding: finding.to_string(),
        }),
    }
}

impl CompiledCircuit {
    /// A borrowed [`ProgramView`] of this program, for the stream-level
    /// validator and the equivalence checker.
    #[must_use]
    pub fn view(&self) -> ProgramView<'_> {
        ProgramView::new(
            self.num_qubits(),
            self.num_clbits(),
            self.instrs(),
            self.fused_unitaries(),
        )
    }

    /// Runs the full Layer-1 validator ([`validate_compiled`]) on demand:
    /// stream well-formedness, drop safety, stats consistency and plan
    /// coherence. `Ok(())` means the program is safe to hand to any
    /// backend. Under the careful profile every compile already ran this
    /// (see [`PassStats::verified`](crate::PassStats::verified)); the
    /// `MBU_VERIFY` knob makes executors re-run it at admission time.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] carrying every finding when the program
    /// is malformed.
    pub fn verify(&self) -> Result<(), VerifyError> {
        let findings = validate_compiled(self);
        if findings.is_empty() {
            Ok(())
        } else {
            Err(VerifyError { findings })
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 2: the symbolic equivalence checker.
// ---------------------------------------------------------------------------

/// Tuning for [`check_equivalence_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EquivOptions {
    /// Widest support the difference operator may reach before the
    /// checker gives up ([`Equivalence::Inconclusive`]). The symbolic
    /// matrix holds `4^support` entries, so this is a cost cap; the
    /// peephole and fusion windows never spread a difference past three
    /// qubits, so the default of 8 is generous.
    pub max_support: usize,
    /// Forgive differences that amount to a global phase — per branch
    /// trajectory — at barriers and stream end: a pure-phase difference
    /// operator anywhere, or a diagonal difference confined to a qubit
    /// about to be `Z`-measured or reset. Required to certify the
    /// (deliberately phase-inexact) `phase_dead_before_measure` pass;
    /// leave off to demand exact operator equality.
    pub allow_global_phase: bool,
}

impl Default for EquivOptions {
    fn default() -> Self {
        Self {
            max_support: 8,
            allow_global_phase: false,
        }
    }
}

/// Outcome of the symbolic equivalence check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Equivalence {
    /// Proof: the two streams implement the same state function (up to
    /// the allowances in [`EquivOptions`]).
    Equal,
    /// The streams differ; `pre_pc`/`post_pc` localise the first
    /// instruction on each side at which the difference operator left the
    /// identity and never recovered (or the barrier that clashed).
    Diverged {
        /// First diverging instruction of the pre stream.
        pre_pc: usize,
        /// First diverging instruction of the post stream.
        post_pc: usize,
        /// What went wrong.
        why: String,
    },
    /// The difference left the checker's abstract domain (support cap,
    /// non-dyadic phase fold) — no verdict either way.
    Inconclusive {
        /// Pre-stream instruction where tracking gave up.
        pre_pc: usize,
        /// Post-stream instruction where tracking gave up.
        post_pc: usize,
        /// Which domain boundary was hit.
        why: String,
    },
}

impl Equivalence {
    /// Whether the check produced a proof of equality.
    #[must_use]
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal)
    }
}

impl fmt::Display for Equivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Equivalence::Equal => write!(f, "equal"),
            Equivalence::Diverged {
                pre_pc,
                post_pc,
                why,
            } => write!(f, "diverged at pre pc {pre_pc} / post pc {post_pc}: {why}"),
            Equivalence::Inconclusive {
                pre_pc,
                post_pc,
                why,
            } => write!(
                f,
                "inconclusive at pre pc {pre_pc} / post pc {post_pc}: {why}"
            ),
        }
    }
}

/// One term `coeff · 2^{−sqrt2/2} · e^{2πi·phase}` of a [`Sym`] value.
/// Canonical form: `phase` in `[0, π)` (larger phases fold into the
/// coefficient sign), `coeff` odd and nonzero, and within a `Sym` the
/// `(phase, sqrt2)` keys strictly sorted — making value equality
/// syntactic for every state the checker reaches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Term {
    phase: Angle,
    sqrt2: i32,
    coeff: i64,
}

impl Term {
    fn key(&self) -> (u32, u128, bool, i32) {
        (
            self.phase.log2_denom(),
            self.phase.numerator(),
            self.phase.is_negated(),
            self.sqrt2,
        )
    }
}

/// An exact scalar in the ring `Z[e^{2πiθ}, 1/√2]` of dyadic-phase roots
/// of unity and half-powers of two — the amplitude ring every gate in the
/// set generates. The checker needs only the additive structure plus
/// multiplication by single phases and by `1/√2` (no general products),
/// so coefficients stay tame.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Sym {
    terms: Vec<Term>,
}

impl Sym {
    fn zero() -> Self {
        Self { terms: Vec::new() }
    }

    fn one() -> Self {
        Self {
            terms: vec![Term {
                phase: Angle::ZERO,
                sqrt2: 0,
                coeff: 1,
            }],
        }
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    fn is_one(&self) -> bool {
        matches!(
            self.terms.as_slice(),
            [Term {
                phase,
                sqrt2: 0,
                coeff: 1,
            }] if phase.is_zero()
        )
    }

    /// Whether the value is a pure phase `±e^{2πiθ}` of unit magnitude.
    fn is_unit_phase(&self) -> bool {
        matches!(
            self.terms.as_slice(),
            [Term {
                sqrt2: 0,
                coeff: 1 | -1,
                ..
            }]
        )
    }

    /// Rebuilds canonical form: folds phases past half a turn into the
    /// coefficient sign, strips factors of two into the `√2` exponent,
    /// sorts and merges equal keys, drops zeros. `None` when a fold or a
    /// coefficient leaves the exact domain.
    fn normalize(mut terms: Vec<Term>) -> Option<Self> {
        loop {
            for t in &mut terms {
                while t.phase.is_at_least_half_turn() {
                    t.phase = t.phase.checked_sub(Angle::HALF_TURN)?;
                    t.coeff = t.coeff.checked_neg()?;
                }
                while t.coeff != 0 && t.coeff % 2 == 0 {
                    t.coeff /= 2;
                    t.sqrt2 = t.sqrt2.checked_sub(2)?;
                }
            }
            terms.retain(|t| t.coeff != 0);
            terms.sort_by_key(Term::key);
            let mut merged: Vec<Term> = Vec::with_capacity(terms.len());
            let mut remerged = false;
            for t in terms.drain(..) {
                match merged.last_mut() {
                    Some(last) if last.key() == t.key() => {
                        last.coeff = last.coeff.checked_add(t.coeff)?;
                        remerged = true;
                    }
                    _ => merged.push(t),
                }
            }
            terms = merged;
            if !remerged {
                return Some(Self { terms });
            }
        }
    }

    fn add(&self, other: &Self) -> Option<Self> {
        let mut terms = self.terms.clone();
        terms.extend_from_slice(&other.terms);
        Self::normalize(terms)
    }

    fn sub(&self, other: &Self) -> Option<Self> {
        let mut terms = self.terms.clone();
        for t in &other.terms {
            terms.push(Term {
                coeff: t.coeff.checked_neg()?,
                ..*t
            });
        }
        Self::normalize(terms)
    }

    fn neg(&self) -> Option<Self> {
        Self::zero().sub(self)
    }

    /// Multiplication by `e^{2πi·turn}`.
    fn rotate(&self, turn: Angle) -> Option<Self> {
        let mut terms = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            terms.push(Term {
                phase: t.phase.checked_add(turn)?,
                ..*t
            });
        }
        Self::normalize(terms)
    }

    /// Multiplication by `1/√2` (the Hadamard normalisation).
    fn mul_sqrt2_inv(&self) -> Option<Self> {
        let mut terms = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            terms.push(Term {
                sqrt2: t.sqrt2.checked_add(1)?,
                ..*t
            });
        }
        Self::normalize(terms)
    }

    fn conj(&self) -> Option<Self> {
        let mut terms = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            terms.push(Term {
                phase: -t.phase,
                ..*t
            });
        }
        Self::normalize(terms)
    }
}

/// Applies `gate` (with *local* operand indices) to a `2^k`-entry
/// symbolic column vector, mirroring the dense executor's
/// `apply_gate_to_column` arithmetic exactly — but in the exact ring.
fn apply_gate_sym(v: &mut [Sym], gate: &Gate) -> Option<()> {
    let bit = |q: QubitId| 1usize << q.0;
    match *gate {
        Gate::X(q) => {
            let m = bit(q);
            for i in 0..v.len() {
                if i & m == 0 {
                    v.swap(i, i | m);
                }
            }
        }
        Gate::Z(q) => {
            let m = bit(q);
            for (i, e) in v.iter_mut().enumerate() {
                if i & m != 0 {
                    *e = e.neg()?;
                }
            }
        }
        Gate::H(q) => {
            let m = bit(q);
            for i in 0..v.len() {
                if i & m == 0 {
                    let a = v[i].clone();
                    let b = v[i | m].clone();
                    v[i] = a.add(&b)?.mul_sqrt2_inv()?;
                    v[i | m] = a.sub(&b)?.mul_sqrt2_inv()?;
                }
            }
        }
        Gate::Phase(q, turn) => {
            let m = bit(q);
            for (i, e) in v.iter_mut().enumerate() {
                if i & m != 0 {
                    *e = e.rotate(turn)?;
                }
            }
        }
        Gate::Cx(c, t) => {
            let (cm, tm) = (bit(c), bit(t));
            for i in 0..v.len() {
                if i & cm != 0 && i & tm == 0 {
                    v.swap(i, i | tm);
                }
            }
        }
        Gate::Cz(a, b) => {
            let m = bit(a) | bit(b);
            for (i, e) in v.iter_mut().enumerate() {
                if i & m == m {
                    *e = e.neg()?;
                }
            }
        }
        Gate::Ccx(c1, c2, t) => {
            let (cm, tm) = (bit(c1) | bit(c2), bit(t));
            for i in 0..v.len() {
                if i & cm == cm && i & tm == 0 {
                    v.swap(i, i | tm);
                }
            }
        }
        Gate::Ccz(a, b, c) => {
            let m = bit(a) | bit(b) | bit(c);
            for (i, e) in v.iter_mut().enumerate() {
                if i & m == m {
                    *e = e.neg()?;
                }
            }
        }
        Gate::CPhase(c, t, turn) => {
            let m = bit(c) | bit(t);
            for (i, e) in v.iter_mut().enumerate() {
                if i & m == m {
                    *e = e.rotate(turn)?;
                }
            }
        }
        Gate::CcPhase(c1, c2, t, turn) => {
            let m = bit(c1) | bit(c2) | bit(t);
            for (i, e) in v.iter_mut().enumerate() {
                if i & m == m {
                    *e = e.rotate(turn)?;
                }
            }
        }
        Gate::Swap(a, b) => {
            let (am, bm) = (bit(a), bit(b));
            for i in 0..v.len() {
                if i & am != 0 && i & bm == 0 {
                    v.swap(i, i ^ (am | bm));
                }
            }
        }
    }
    Some(())
}

const WHY_SUPPORT: &str = "difference operator support exceeded the cap";
const WHY_DOMAIN: &str = "exact phase arithmetic left the dyadic domain";

/// The difference operator `D = (absorbed pre gates) · (absorbed post
/// gates)†` as a dense symbolic matrix over its minimal support. The two
/// streams are equal on a region exactly when `D` is the identity with
/// both streams exhausted.
struct DiffState {
    /// Global qubit ids backing local bit positions (LSB first).
    support: Vec<u32>,
    /// Row-major `2^k × 2^k` matrix over the support.
    mat: Vec<Sym>,
    max_support: usize,
}

impl DiffState {
    fn identity(max_support: usize) -> Self {
        Self {
            support: Vec::new(),
            mat: vec![Sym::one()],
            max_support,
        }
    }

    fn dim(&self) -> usize {
        1 << self.support.len()
    }

    fn is_identity(&self) -> bool {
        self.support.is_empty() && self.mat[0].is_one()
    }

    /// Whether `D` is `e^{iφ}·I` (support pruned away, arbitrary unit
    /// phase left over).
    fn global_phase_only(&self) -> bool {
        self.support.is_empty() && self.mat[0].is_unit_phase()
    }

    /// Whether `D` is diagonal and supported (at most) on `q` — the shape
    /// the `phase_dead_before_measure` pass leaves right before `q`'s
    /// `Z`-collapse, where it only shifts a per-outcome global phase.
    fn diagonal_confined_to(&self, q: u32) -> bool {
        match *self.support.as_slice() {
            [] => self.mat[0].is_unit_phase(),
            [only] => only == q && self.mat[1].is_zero() && self.mat[2].is_zero(),
            _ => false,
        }
    }

    fn reset(&mut self) {
        self.support.clear();
        self.mat = vec![Sym::one()];
    }

    /// Whether `gate`'s operands avoid the support entirely, so that
    /// conjugating `D` by the gate is a no-op.
    fn untouched_by(&self, gate: &Gate) -> bool {
        let mut clean = true;
        gate.for_each_qubit(&mut |q| clean &= !self.support.contains(&q.0));
        clean
    }

    /// Whether every operand of `gate` already lies inside the support,
    /// so absorbing it cannot grow the difference operator.
    fn covers(&self, gate: &Gate) -> bool {
        let mut inside = true;
        gate.for_each_qubit(&mut |q| inside &= self.support.contains(&q.0));
        inside
    }

    /// The support size after extending with `gate`'s operands.
    fn union_support_len(&self, gate: &Gate) -> usize {
        let mut extra = 0usize;
        gate.for_each_qubit(&mut |q| {
            if !self.support.contains(&q.0) {
                extra += 1;
            }
        });
        self.support.len() + extra
    }

    /// Extends the support with any new operands of `gate` (appended as
    /// most-significant positions: `D ← I₂ ⊗ D`).
    fn ensure(&mut self, gate: &Gate) -> Result<(), &'static str> {
        let mut qs = Vec::new();
        gate.for_each_qubit(&mut |q| qs.push(q.0));
        for q in qs {
            if self.support.contains(&q) {
                continue;
            }
            if self.support.len() == self.max_support {
                return Err(WHY_SUPPORT);
            }
            let dim = self.dim();
            let nd = dim * 2;
            let mut next = vec![Sym::zero(); nd * nd];
            for r in 0..dim {
                for c in 0..dim {
                    next[r * nd + c] = self.mat[r * dim + c].clone();
                    next[(r + dim) * nd + (c + dim)] = self.mat[r * dim + c].clone();
                }
            }
            self.mat = next;
            self.support.push(q);
        }
        Ok(())
    }

    /// The gate with operands renamed to local bit positions.
    fn localise(&self, gate: &Gate) -> Gate {
        gate.map_qubits(|q| {
            let local = self
                .support
                .iter()
                .position(|&s| s == q.0)
                .expect("ensure() extended the support");
            QubitId(u32::try_from(local).expect("support is tiny"))
        })
    }

    /// `D ← G·D`: one more pre-stream gate absorbed on the left.
    fn apply_left(&mut self, gate: &Gate) -> Result<(), &'static str> {
        self.ensure(gate)?;
        let local = self.localise(gate);
        let dim = self.dim();
        let mut col = vec![Sym::zero(); dim];
        for c in 0..dim {
            for (r, e) in col.iter_mut().enumerate() {
                *e = self.mat[r * dim + c].clone();
            }
            apply_gate_sym(&mut col, &local).ok_or(WHY_DOMAIN)?;
            for (r, e) in col.iter().enumerate() {
                self.mat[r * dim + c] = e.clone();
            }
        }
        self.prune();
        Ok(())
    }

    /// `D ← D·G†`: one more post-stream gate absorbed on the right.
    /// Row-wise via `(v·G†)ᶜ = conj((G·conj(v))ᶜ)`.
    fn apply_right_adjoint(&mut self, gate: &Gate) -> Result<(), &'static str> {
        self.ensure(gate)?;
        let local = self.localise(gate);
        let dim = self.dim();
        for r in 0..dim {
            let row = &mut self.mat[r * dim..(r + 1) * dim];
            for e in row.iter_mut() {
                *e = e.conj().ok_or(WHY_DOMAIN)?;
            }
            apply_gate_sym(row, &local).ok_or(WHY_DOMAIN)?;
            for e in row.iter_mut() {
                *e = e.conj().ok_or(WHY_DOMAIN)?;
            }
        }
        self.prune();
        Ok(())
    }

    /// Drops every support position on which `D` acts as the identity
    /// factor (off-blocks zero, diagonal blocks equal), keeping the
    /// matrix minimal so the fast path and the triviality checks fire.
    fn prune(&mut self) {
        'scan: loop {
            let dim = self.dim();
            if dim == 1 {
                return;
            }
            for p in 0..self.support.len() {
                if self.position_trivial(p) {
                    self.remove_position(p);
                    continue 'scan;
                }
            }
            return;
        }
    }

    fn position_trivial(&self, p: usize) -> bool {
        let dim = self.dim();
        let m = 1usize << p;
        for r in 0..dim {
            for c in 0..dim {
                if (r ^ c) & m != 0 && !self.mat[r * dim + c].is_zero() {
                    return false;
                }
                if r & m == 0
                    && c & m == 0
                    && self.mat[(r | m) * dim + (c | m)] != self.mat[r * dim + c]
                {
                    return false;
                }
            }
        }
        true
    }

    fn remove_position(&mut self, p: usize) {
        let dim = self.dim();
        let nd = dim / 2;
        let widen = |x: usize| ((x >> p) << (p + 1)) | (x & ((1 << p) - 1));
        let mut next = vec![Sym::zero(); nd * nd];
        for r in 0..nd {
            for c in 0..nd {
                next[r * nd + c] = self.mat[widen(r) * dim + widen(c)].clone();
            }
        }
        self.mat = next;
        self.support.remove(p);
    }
}

/// The front of a [`Walk`]: the next effective instruction, with fused
/// blocks already expanded to constituent gates and `Drop`s skipped.
#[derive(Clone, Copy, Debug)]
enum Front {
    Gate(Gate, usize),
    Barrier(Instr, usize),
}

/// A cursor over one region `lo..hi` of a stream that presents gates and
/// barriers uniformly: fused blocks stream out their constituents (all
/// reported at the block's pc) and advisory `Drop`s are transparent.
#[derive(Clone)]
struct Walk<'a> {
    instrs: &'a [Instr],
    fused: &'a [FusedUnitary],
    pc: usize,
    hi: usize,
    queue: VecDeque<Gate>,
    queue_pc: usize,
}

impl<'a> Walk<'a> {
    fn new(instrs: &'a [Instr], fused: &'a [FusedUnitary], lo: usize, hi: usize) -> Self {
        Self {
            instrs,
            fused,
            pc: lo,
            hi,
            queue: VecDeque::new(),
            queue_pc: lo,
        }
    }

    fn front(&mut self) -> Option<Front> {
        loop {
            if let Some(g) = self.queue.front() {
                return Some(Front::Gate(*g, self.queue_pc));
            }
            if self.pc >= self.hi {
                return None;
            }
            match self.instrs[self.pc] {
                Instr::Drop(_) => self.pc += 1,
                Instr::Gate(g) => return Some(Front::Gate(g, self.pc)),
                Instr::Fused(idx) => {
                    self.queue_pc = self.pc;
                    self.pc += 1;
                    // Validation already vouched for the index.
                    if let Some(block) = self.fused.get(idx as usize) {
                        self.queue.extend(block.global_gates());
                    }
                }
                other => return Some(Front::Barrier(other, self.pc)),
            }
        }
    }

    /// The pc the walk would report next (the region end once exhausted).
    fn report_pc(&mut self) -> usize {
        match self.front() {
            Some(Front::Gate(_, pc) | Front::Barrier(_, pc)) => pc,
            None => self.hi,
        }
    }

    fn pop_gate(&mut self) {
        if self.queue.pop_front().is_none() {
            self.pc += 1;
        }
    }

    fn pop_barrier(&mut self) {
        self.pc += 1;
    }

    /// Continues the walk at `target` (a branch join point).
    fn jump(&mut self, target: usize) {
        debug_assert!(self.queue.is_empty(), "jump only from a barrier front");
        self.pc = target;
    }
}

/// Whether two walks present syntactically identical effective streams
/// from their current positions to their region ends — same gates in the
/// same order (fused blocks expanded, `Drop`s skipped) and byte-equal
/// barriers. Identical remainders conjugate the difference operator
/// without ever restoring the identity, so a non-identity `D` here is a
/// proof of divergence even when its exact value has outgrown the
/// abstract domain.
fn remainders_match(pre: &Walk<'_>, post: &Walk<'_>) -> bool {
    let mut a = pre.clone();
    let mut b = post.clone();
    loop {
        match (a.front(), b.front()) {
            (None, None) => return true,
            (Some(Front::Gate(g, _)), Some(Front::Gate(h, _))) if g == h => {
                a.pop_gate();
                b.pop_gate();
            }
            (Some(Front::Barrier(x, _)), Some(Front::Barrier(y, _))) if x == y => {
                // Equal `BranchUnless` skips mean equal join targets, and
                // the guarded body that follows is compared linearly —
                // the flat walk covers it without recursing.
                a.pop_barrier();
                b.pop_barrier();
            }
            _ => return false,
        }
    }
}

struct Engine<'a> {
    pre: ProgramView<'a>,
    post: ProgramView<'a>,
    opts: EquivOptions,
    d: DiffState,
    /// Where the difference operator last left the identity: the first
    /// still-undischarged diverging instruction on each side.
    pending: Option<(usize, usize)>,
}

impl Engine<'_> {
    fn localise_failure(&self, pre_pc: usize, post_pc: usize) -> (usize, usize) {
        self.pending.unwrap_or((pre_pc, post_pc))
    }

    fn diverged(&self, pre_pc: usize, post_pc: usize, why: &str) -> Equivalence {
        let (pre_pc, post_pc) = self.localise_failure(pre_pc, post_pc);
        Equivalence::Diverged {
            pre_pc,
            post_pc,
            why: why.to_string(),
        }
    }

    fn inconclusive(&self, pre_pc: usize, post_pc: usize, why: &str) -> Equivalence {
        let (pre_pc, post_pc) = self.localise_failure(pre_pc, post_pc);
        Equivalence::Inconclusive {
            pre_pc,
            post_pc,
            why: why.to_string(),
        }
    }

    /// Absorbs one gate into the difference operator, maintaining the
    /// first-divergence bookkeeping.
    fn absorb(
        &mut self,
        gate: &Gate,
        left: bool,
        pre_pc: usize,
        post_pc: usize,
    ) -> Result<(), Equivalence> {
        if self.d.is_identity() {
            self.pending = Some((pre_pc, post_pc));
        }
        let applied = if left {
            self.d.apply_left(gate)
        } else {
            self.d.apply_right_adjoint(gate)
        };
        applied.map_err(|why| self.inconclusive(pre_pc, post_pc, why))?;
        if self.d.is_identity() {
            self.pending = None;
        }
        Ok(())
    }

    /// Requires the difference operator discharged (identity, or within
    /// the configured allowances) before crossing barrier `a`.
    fn discharge_at_barrier(
        &mut self,
        barrier: &Instr,
        pre_pc: usize,
        post_pc: usize,
    ) -> Result<(), Equivalence> {
        if self.d.is_identity() {
            return Ok(());
        }
        if self.opts.allow_global_phase {
            let forgivable = match barrier {
                Instr::Measure {
                    qubit,
                    basis: Basis::Z,
                    ..
                }
                | Instr::Reset(qubit) => self.d.diagonal_confined_to(qubit.0),
                _ => self.d.global_phase_only(),
            };
            if forgivable {
                self.d.reset();
                self.pending = None;
                return Ok(());
            }
        }
        Err(self.diverged(pre_pc, post_pc, "streams differ at a non-unitary barrier"))
    }

    fn run_region(
        &mut self,
        pre_range: (usize, usize),
        post_range: (usize, usize),
    ) -> Result<(), Equivalence> {
        let mut pre = Walk::new(self.pre.instrs, self.pre.fused, pre_range.0, pre_range.1);
        let mut post = Walk::new(
            self.post.instrs,
            self.post.fused,
            post_range.0,
            post_range.1,
        );
        loop {
            match (pre.front(), post.front()) {
                (None, None) => {
                    if self.d.is_identity() {
                        return Ok(());
                    }
                    if self.opts.allow_global_phase && self.d.global_phase_only() {
                        self.d.reset();
                        self.pending = None;
                        return Ok(());
                    }
                    return Err(self.diverged(
                        pre_range.1,
                        post_range.1,
                        "residual difference at end of region",
                    ));
                }
                (Some(Front::Gate(g, _)), Some(Front::Gate(h, _)))
                    if g == h && self.d.untouched_by(&g) =>
                {
                    // Identical fronts commuting past D pop in O(1):
                    // g·D·g† = D when g avoids the support.
                    pre.pop_gate();
                    post.pop_gate();
                }
                (Some(Front::Gate(g, gpc)), Some(Front::Gate(h, hpc))) if g == h => {
                    // Identical fronts overlapping a live difference
                    // conjugate it: D ← g·D·g†. Conjugation never
                    // restores the identity, so while the exact value is
                    // only tracked while it fits the support cap, a
                    // syntactically identical remainder past the cap is
                    // already a proof of divergence.
                    if self.d.union_support_len(&g) <= self.opts.max_support {
                        self.absorb(&g, true, gpc, hpc)?;
                        self.absorb(&g, false, gpc, hpc)?;
                        pre.pop_gate();
                        post.pop_gate();
                    } else if remainders_match(&pre, &post) {
                        return Err(self.diverged(
                            gpc,
                            hpc,
                            "difference persists through an identical suffix",
                        ));
                    } else {
                        return Err(self.inconclusive(gpc, hpc, WHY_SUPPORT));
                    }
                }
                (Some(Front::Gate(g, gpc)), _) => {
                    let opc = post.report_pc();
                    self.absorb(&g, true, gpc, opc)?;
                    pre.pop_gate();
                    // Pull post gates confined to the difference's
                    // support, so merged rotations discharge promptly —
                    // but never widen D from the post side: a cancelled
                    // pre pair discharges itself on the next iteration,
                    // and absorbing unrelated post gates here would drag
                    // the streams out of alignment.
                    while let Some(Front::Gate(h, hpc)) = post.front() {
                        if !self.d.covers(&h) {
                            break;
                        }
                        self.absorb(&h, false, pre.report_pc(), hpc)?;
                        post.pop_gate();
                    }
                }
                (_, Some(Front::Gate(h, hpc))) => {
                    let ppc = pre.report_pc();
                    self.absorb(&h, false, ppc, hpc)?;
                    post.pop_gate();
                }
                (Some(Front::Barrier(a, pa)), Some(Front::Barrier(b, pb))) => {
                    self.discharge_at_barrier(&a, pa, pb)?;
                    match (a, b) {
                        (
                            Instr::BranchUnless {
                                clbit: ca,
                                skip: sa,
                            },
                            Instr::BranchUnless {
                                clbit: cb,
                                skip: sb,
                            },
                        ) => {
                            if ca != cb {
                                return Err(self.diverged(
                                    pa,
                                    pb,
                                    "branches test different classical bits",
                                ));
                            }
                            let ta = pa + 1 + sa as usize;
                            let tb = pb + 1 + sb as usize;
                            self.run_region((pa + 1, ta), (pb + 1, tb))?;
                            pre.jump(ta);
                            post.jump(tb);
                        }
                        _ if a == b => {
                            pre.pop_barrier();
                            post.pop_barrier();
                        }
                        _ => {
                            return Err(self.diverged(
                                pa,
                                pb,
                                "mismatched non-unitary instructions",
                            ));
                        }
                    }
                }
                (Some(Front::Barrier(_, pa)), None) => {
                    return Err(self.diverged(
                        pa,
                        post_range.1,
                        "pre stream has an extra non-unitary instruction",
                    ));
                }
                (None, Some(Front::Barrier(_, pb))) => {
                    return Err(self.diverged(
                        pre_range.1,
                        pb,
                        "post stream has an extra non-unitary instruction",
                    ));
                }
            }
        }
    }
}

/// Symbolically proves two compiled programs equal as state functions,
/// with default [`EquivOptions`] (exact equality, support cap 8). See the
/// module docs for the abstract domain and its completeness boundary.
#[must_use]
pub fn check_equivalence(pre: &CompiledCircuit, post: &CompiledCircuit) -> Equivalence {
    check_equivalence_with(&pre.view(), &post.view(), &EquivOptions::default())
}

/// [`check_equivalence`] over raw [`ProgramView`]s with explicit options —
/// the entry point for checking mutated or hand-assembled streams.
#[must_use]
pub fn check_equivalence_with(
    pre: &ProgramView<'_>,
    post: &ProgramView<'_>,
    opts: &EquivOptions,
) -> Equivalence {
    if pre.num_qubits != post.num_qubits || pre.num_clbits != post.num_clbits {
        return Equivalence::Diverged {
            pre_pc: 0,
            post_pc: 0,
            why: "register shapes differ".to_string(),
        };
    }
    // The engine assumes well-formed streams (in-range fused indices,
    // valid branch targets); delegate anything else to Layer 1.
    if let Some(finding) = validate(pre).into_iter().next() {
        return Equivalence::Inconclusive {
            pre_pc: finding.pc().unwrap_or(0),
            post_pc: 0,
            why: format!("pre stream fails validation: {finding}"),
        };
    }
    if let Some(finding) = validate(post).into_iter().next() {
        return Equivalence::Inconclusive {
            pre_pc: 0,
            post_pc: finding.pc().unwrap_or(0),
            why: format!("post stream fails validation: {finding}"),
        };
    }
    let mut engine = Engine {
        pre: *pre,
        post: *post,
        opts: *opts,
        d: DiffState::identity(opts.max_support),
        pending: None,
    };
    match engine.run_region((0, pre.instrs.len()), (0, post.instrs.len())) {
        Ok(()) => Equivalence::Equal,
        Err(outcome) => outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::compile::PassConfig;
    use crate::op::ClbitId;

    fn compiled_and_lowered(
        build: impl Fn(&mut CircuitBuilder),
    ) -> (CompiledCircuit, CompiledCircuit) {
        let mut b = CircuitBuilder::new();
        build(&mut b);
        let circuit = b.finish();
        (
            CompiledCircuit::lower(&circuit).unwrap(),
            CompiledCircuit::compile(&circuit).unwrap(),
        )
    }

    fn gidney_uncompute(b: &mut CircuitBuilder) {
        let q = b.qreg("q", 3);
        b.ccx(q[0], q[1], q[2]);
        b.h(q[2]);
        let m = b.measure(q[2], Basis::Z);
        let (_, fix) = b.record(|b| {
            b.cz(q[0], q[1]);
            b.x(q[2]);
        });
        b.emit_conditional(m, &fix);
    }

    #[test]
    fn compiled_programs_verify_clean() {
        let (lowered, compiled) = compiled_and_lowered(gidney_uncompute);
        lowered.verify().unwrap();
        compiled.verify().unwrap();
        assert!(validate_compiled(&compiled).is_empty());
    }

    #[test]
    fn verified_stats_reflect_the_careful_profile() {
        let (_, compiled) = compiled_and_lowered(gidney_uncompute);
        // Tests always build with debug assertions on, so the pipeline
        // ran the validator and said so.
        assert!(compiled.stats().verified);
        assert!(!compiled.stats().verify_skipped);
        assert!(compiled.to_string().contains("verified"));
    }

    #[test]
    fn validator_flags_range_and_duplicate_errors() {
        let instrs = [
            Instr::Gate(Gate::Cx(QubitId(0), QubitId(5))),
            Instr::Gate(Gate::Cz(QubitId(1), QubitId(1))),
            Instr::Measure {
                qubit: QubitId(0),
                basis: Basis::Z,
                clbit: ClbitId(3),
            },
        ];
        let view = ProgramView::new(2, 1, &instrs, &[]);
        let findings = validate(&view);
        assert!(findings.contains(&Finding::QubitOutOfRange { pc: 0, qubit: 5 }));
        assert!(findings.contains(&Finding::DuplicateOperand { pc: 1, qubit: 1 }));
        assert!(findings.contains(&Finding::ClbitOutOfRange { pc: 2, clbit: 3 }));
    }

    #[test]
    fn validator_flags_branch_targets() {
        let instrs = [
            Instr::BranchUnless {
                clbit: ClbitId(0),
                skip: 3,
            },
            Instr::Gate(Gate::X(QubitId(0))),
        ];
        let view = ProgramView::new(1, 1, &instrs, &[]);
        assert!(validate(&view).contains(&Finding::BranchTargetOutOfRange { pc: 0, target: 4 }));

        let overlapping = [
            Instr::BranchUnless {
                clbit: ClbitId(0),
                skip: 2,
            },
            Instr::BranchUnless {
                clbit: ClbitId(0),
                skip: 2,
            },
            Instr::Gate(Gate::X(QubitId(0))),
            Instr::Gate(Gate::X(QubitId(0))),
        ];
        let view = ProgramView::new(1, 1, &overlapping, &[]);
        assert!(validate(&view).contains(&Finding::BranchNotNested {
            pc: 1,
            target: 4,
            enclosing_end: 3,
        }));
    }

    #[test]
    fn validator_enforces_drop_dataflow() {
        let use_after = [
            Instr::Measure {
                qubit: QubitId(0),
                basis: Basis::Z,
                clbit: ClbitId(0),
            },
            Instr::Drop(QubitId(0)),
            Instr::Gate(Gate::Cx(QubitId(0), QubitId(1))),
        ];
        let view = ProgramView::new(2, 1, &use_after, &[]);
        assert_eq!(
            validate(&view),
            vec![Finding::UseAfterDrop {
                pc: 2,
                qubit: 0,
                drop_pc: 1
            }]
        );

        let uncollapsed = [Instr::Drop(QubitId(0))];
        let view = ProgramView::new(1, 0, &uncollapsed, &[]);
        assert_eq!(
            validate(&view),
            vec![Finding::DropWithoutCollapse { pc: 0, qubit: 0 }]
        );

        let guarded = [
            Instr::Measure {
                qubit: QubitId(0),
                basis: Basis::Z,
                clbit: ClbitId(0),
            },
            Instr::BranchUnless {
                clbit: ClbitId(0),
                skip: 1,
            },
            Instr::Drop(QubitId(0)),
        ];
        let view = ProgramView::new(1, 1, &guarded, &[]);
        assert_eq!(
            validate(&view),
            vec![Finding::DropInsideGuard { pc: 2, qubit: 0 }]
        );
    }

    #[test]
    fn validator_flags_malformed_fused_blocks() {
        let unsorted = FusedUnitary::raw(
            vec![QubitId(2), QubitId(1)],
            vec![Gate::Cx(QubitId(0), QubitId(1)), Gate::X(QubitId(0))],
        );
        let bad_local = FusedUnitary::raw(
            vec![QubitId(0), QubitId(1)],
            vec![
                Gate::Cx(QubitId(0), QubitId(7)),
                Gate::Cz(QubitId(1), QubitId(1)),
            ],
        );
        let table = [unsorted, bad_local];
        let instrs = [Instr::Fused(0), Instr::Fused(5)];
        let view = ProgramView::new(3, 0, &instrs, &table);
        let findings = validate(&view);
        assert!(findings.contains(&Finding::FusedSupportUnsorted { block: 0 }));
        assert!(findings.contains(&Finding::FusedLocalOperandOutOfRange {
            block: 1,
            gate: 0,
            operand: 7
        }));
        assert!(findings.contains(&Finding::FusedLocalDuplicate {
            block: 1,
            gate: 1,
            operand: 1
        }));
        assert!(findings.contains(&Finding::FusedIndexOutOfRange { pc: 1, index: 5 }));
    }

    #[test]
    fn passes_prove_equal_on_the_mbu_uncompute() {
        let (lowered, compiled) = compiled_and_lowered(gidney_uncompute);
        assert_eq!(check_equivalence(&lowered, &compiled), Equivalence::Equal);
        // Reflexively too, and against the unfused/unreclaimed stages.
        assert_eq!(check_equivalence(&compiled, &compiled), Equivalence::Equal);
    }

    #[test]
    fn hadamard_pair_cancellation_proves_equal() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.h(q[0]);
        b.cz(q[0], q[1]);
        b.h(q[1]);
        b.h(q[1]);
        b.h(q[0]);
        let circuit = b.finish();
        let lowered = CompiledCircuit::lower(&circuit).unwrap();
        let compiled = CompiledCircuit::compile(&circuit).unwrap();
        // The H(q1) pair cancels; proving it exercises the √2 ring.
        assert!(compiled.counts().h < lowered.counts().h);
        assert_eq!(check_equivalence(&lowered, &compiled), Equivalence::Equal);
    }

    #[test]
    fn rotation_merge_proves_equal() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.phase(q[0], Angle::turn_over_power_of_two(3));
        b.cx(q[0], q[1]);
        b.phase(q[0], Angle::turn_over_power_of_two(3));
        b.phase(q[0], Angle::turn_over_power_of_two(2));
        let circuit = b.finish();
        let lowered = CompiledCircuit::lower(&circuit).unwrap();
        let compiled = CompiledCircuit::compile(&circuit).unwrap();
        assert_eq!(check_equivalence(&lowered, &compiled), Equivalence::Equal);
    }

    #[test]
    fn dropped_phase_diverges_at_the_exact_instruction() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.cx(q[0], q[1]);
        b.phase(q[1], Angle::turn_over_power_of_two(2));
        b.cz(q[0], q[1]);
        let circuit = b.finish();
        let lowered = CompiledCircuit::lower(&circuit).unwrap();
        // Miscompile: silently drop the phase correction at pc 1.
        let mut mutated: Vec<Instr> = lowered.instrs().to_vec();
        mutated.remove(1);
        let post = ProgramView::new(2, 0, &mutated, &[]);
        match check_equivalence_with(&lowered.view(), &post, &EquivOptions::default()) {
            Equivalence::Diverged { pre_pc, .. } => assert_eq!(pre_pc, 1),
            other => panic!("expected divergence, got {other}"),
        }
    }

    #[test]
    fn swapped_operands_diverge_at_the_exact_instruction() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.x(q[0]);
        b.cx(q[0], q[1]);
        b.x(q[1]);
        let circuit = b.finish();
        let lowered = CompiledCircuit::lower(&circuit).unwrap();
        let mut mutated: Vec<Instr> = lowered.instrs().to_vec();
        mutated[1] = Instr::Gate(Gate::Cx(QubitId(1), QubitId(0)));
        let post = ProgramView::new(2, 0, &mutated, &[]);
        match check_equivalence_with(&lowered.view(), &post, &EquivOptions::default()) {
            Equivalence::Diverged {
                pre_pc, post_pc, ..
            } => {
                assert_eq!((pre_pc, post_pc), (1, 1));
            }
            other => panic!("expected divergence, got {other}"),
        }
    }

    #[test]
    fn symmetric_diagonal_operand_order_is_equal() {
        // CZ(a,b) vs CZ(b,a): textually different, semantically equal.
        let instrs_a = [Instr::Gate(Gate::Cz(QubitId(0), QubitId(1)))];
        let instrs_b = [Instr::Gate(Gate::Cz(QubitId(1), QubitId(0)))];
        let a = ProgramView::new(2, 0, &instrs_a, &[]);
        let b = ProgramView::new(2, 0, &instrs_b, &[]);
        assert_eq!(
            check_equivalence_with(&a, &b, &EquivOptions::default()),
            Equivalence::Equal
        );
    }

    #[test]
    fn phase_dead_pass_needs_the_global_phase_allowance() {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        b.x(q[0]);
        b.z(q[0]);
        b.measure(q[0], Basis::Z);
        let circuit = b.finish();
        let lowered = CompiledCircuit::lower(&circuit).unwrap();
        let aggressive = CompiledCircuit::with_config(&circuit, &PassConfig::aggressive()).unwrap();
        assert!(aggressive.stats().phase_dead_removed > 0);
        assert!(!check_equivalence(&lowered, &aggressive).is_equal());
        assert_eq!(
            check_equivalence_with(
                &lowered.view(),
                &aggressive.view(),
                &EquivOptions {
                    allow_global_phase: true,
                    ..EquivOptions::default()
                }
            ),
            Equivalence::Equal
        );
    }

    #[test]
    fn support_cap_reports_inconclusive() {
        let mut pre = Vec::new();
        let mut post = Vec::new();
        // Two genuinely different H-walls: the difference operator must
        // widen past the cap before any verdict is possible.
        for q in 0..4u32 {
            pre.push(Instr::Gate(Gate::H(QubitId(q))));
            post.push(Instr::Gate(Gate::Phase(
                QubitId(q),
                Angle::turn_over_power_of_two(2),
            )));
        }
        let a = ProgramView::new(4, 0, &pre, &[]);
        let b = ProgramView::new(4, 0, &post, &[]);
        let opts = EquivOptions {
            max_support: 2,
            ..EquivOptions::default()
        };
        assert!(matches!(
            check_equivalence_with(&a, &b, &opts),
            Equivalence::Inconclusive { .. }
        ));
    }

    #[test]
    fn deep_angles_fall_out_of_the_dyadic_domain() {
        // A divergence whose discharge needs folding θ − π at denominator
        // 2^1025 is beyond exact dyadic arithmetic: inconclusive, never a
        // false proof.
        let instrs_a = [
            Instr::Gate(Gate::H(QubitId(0))),
            Instr::Gate(Gate::Phase(
                QubitId(0),
                -Angle::turn_over_power_of_two(1025),
            )),
            Instr::Gate(Gate::H(QubitId(0))),
        ];
        let instrs_b = [Instr::Gate(Gate::X(QubitId(0)))];
        let a = ProgramView::new(1, 0, &instrs_a, &[]);
        let b = ProgramView::new(1, 0, &instrs_b, &[]);
        assert!(matches!(
            check_equivalence_with(&a, &b, &EquivOptions::default()),
            Equivalence::Inconclusive { .. }
        ));
    }

    #[test]
    fn sym_ring_is_canonical() {
        let one = Sym::one();
        assert!(one.is_one());
        // (1/√2)·(1/√2) + (1/√2)·(1/√2) = 1 — the H·H diagonal.
        let half = one.mul_sqrt2_inv().unwrap().mul_sqrt2_inv().unwrap();
        assert!(half.add(&half).unwrap().is_one());
        // e^{iπ} folds to −1; adding 1 cancels exactly.
        let minus = one.rotate(Angle::HALF_TURN).unwrap();
        assert!(minus.add(&one).unwrap().is_zero());
        // Conjugation round-trips.
        let t = one.rotate(Angle::turn_over_power_of_two(3)).unwrap();
        assert_eq!(t.conj().unwrap().conj().unwrap(), t);
        assert!(t
            .conj()
            .unwrap()
            .rotate(Angle::turn_over_power_of_two(3))
            .unwrap()
            .is_one());
    }
}
