//! The [`Circuit`] container.

use std::collections::HashSet;
use std::fmt;

use crate::counts::{ExpectedCounts, GateCounts};
use crate::depth::{self, DepthWeights};
use crate::error::CircuitError;
use crate::op::{Op, QubitId};

/// An adaptive quantum circuit: a sequence of [`Op`]s over a fixed set of
/// qubits and classical bits.
///
/// Circuits are normally produced by a
/// [`CircuitBuilder`](crate::CircuitBuilder); the raw constructor is exposed
/// for tools that synthesise op lists directly.
///
/// # Examples
///
/// ```
/// use mbu_circuit::{Circuit, Gate, Op, QubitId};
///
/// let circuit = Circuit::from_ops(
///     2,
///     0,
///     vec![Op::Gate(Gate::H(QubitId(0))), Op::Gate(Gate::Cx(QubitId(0), QubitId(1)))],
/// );
/// assert_eq!(circuit.depth(), 2);
/// assert_eq!(circuit.counts().cx, 1);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit over the given number of qubits and
    /// classical bits.
    #[must_use]
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Self {
            num_qubits,
            num_clbits,
            ops: Vec::new(),
        }
    }

    /// Creates a circuit from a ready-made op list.
    #[must_use]
    pub fn from_ops(num_qubits: usize, num_clbits: usize, ops: Vec<Op>) -> Self {
        Self {
            num_qubits,
            num_clbits,
            ops,
        }
    }

    /// The number of qubits (the paper's "logical qubits" column counts
    /// these, inputs and ancillas together).
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of classical bits (measurement record slots).
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The operations, in program order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Exact gate counts (conditional blocks at full weight).
    #[must_use]
    pub fn counts(&self) -> GateCounts {
        GateCounts::from_ops(&self.ops)
    }

    /// Expected gate counts (conditional blocks weighted ½ per level) —
    /// the paper's "in expectation" accounting for MBU circuits.
    #[must_use]
    pub fn expected_counts(&self) -> ExpectedCounts {
        ExpectedCounts::from_ops(&self.ops)
    }

    /// Full circuit depth: every gate and measurement occupies one layer.
    #[must_use]
    pub fn depth(&self) -> u64 {
        self.weighted_depth(depth::FULL)
    }

    /// Toffoli depth: only CCX/CCZ/CC-R gates occupy layers.
    ///
    /// This is the depth metric of the paper's headline claim ("reduce the
    /// Toffoli count and depth by 10% to 15%").
    #[must_use]
    pub fn toffoli_depth(&self) -> u64 {
        self.weighted_depth(depth::TOFFOLI)
    }

    pub(crate) fn weighted_depth(&self, weights: DepthWeights) -> u64 {
        depth::depth(&self.ops, self.num_qubits, self.num_clbits, weights)
    }

    /// Whether the circuit contains any measurement (and is therefore not
    /// unitary).
    #[must_use]
    pub fn contains_measurement(&self) -> bool {
        self.ops.iter().any(Op::contains_measurement)
    }

    /// The adjoint circuit: ops reversed, each inverted.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::AdjointOfMeasurement`] if the circuit
    /// measures (Remark 2.23: measurement-based circuits are inverted by
    /// swapping compute/uncompute roles, not by `†`).
    pub fn adjoint(&self) -> Result<Self, CircuitError> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in self.ops.iter().rev() {
            ops.push(op.adjoint()?);
        }
        Ok(Self {
            num_qubits: self.num_qubits,
            num_clbits: self.num_clbits,
            ops,
        })
    }

    /// Lowers the circuit to a flat instruction stream and runs the exact
    /// default peephole passes — shorthand for
    /// [`CompiledCircuit::compile`](crate::CompiledCircuit::compile).
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] found by [`validate`](Self::validate).
    pub fn compile(&self) -> Result<crate::CompiledCircuit, CircuitError> {
        crate::CompiledCircuit::compile(self)
    }

    /// Validates that every referenced qubit and classical bit is in range
    /// and that no gate reuses a qubit for two operands.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] found.
    pub fn validate(&self) -> Result<(), CircuitError> {
        fn check(ops: &[Op], num_qubits: usize, num_clbits: usize) -> Result<(), CircuitError> {
            for op in ops {
                let mut seen: HashSet<QubitId> = HashSet::new();
                let mut dup: Option<u32> = None;
                let mut oob: Option<u32> = None;
                if let Op::Gate(g) = op {
                    g.for_each_qubit(&mut |q| {
                        if q.index() >= num_qubits {
                            oob.get_or_insert(q.0);
                        }
                        if !seen.insert(q) {
                            dup.get_or_insert(q.0);
                        }
                    });
                } else {
                    op.for_each_qubit(&mut |q| {
                        if q.index() >= num_qubits {
                            oob.get_or_insert(q.0);
                        }
                    });
                }
                if let Some(qubit) = oob {
                    return Err(CircuitError::QubitOutOfRange { qubit, num_qubits });
                }
                if let Some(qubit) = dup {
                    return Err(CircuitError::DuplicateOperand { qubit });
                }
                match op {
                    Op::Measure { clbit, .. } => {
                        if clbit.index() >= num_clbits {
                            return Err(CircuitError::ClbitOutOfRange {
                                clbit: clbit.0,
                                num_clbits,
                            });
                        }
                    }
                    Op::Conditional { clbit, ops } => {
                        if clbit.index() >= num_clbits {
                            return Err(CircuitError::ClbitOutOfRange {
                                clbit: clbit.0,
                                num_clbits,
                            });
                        }
                        check(ops, num_qubits, num_clbits)?;
                    }
                    Op::Gate(_) | Op::Reset(_) => {}
                }
            }
            Ok(())
        }
        check(&self.ops, self.num_qubits, self.num_clbits)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} qubits, {} clbits, {} ops",
            self.num_qubits,
            self.num_clbits,
            self.ops.len()
        )?;
        fn write_ops(f: &mut fmt::Formatter<'_>, ops: &[Op], indent: usize) -> fmt::Result {
            for op in ops {
                match op {
                    Op::Gate(g) => writeln!(f, "{:indent$}{g}", "")?,
                    Op::Measure {
                        qubit,
                        basis,
                        clbit,
                    } => {
                        writeln!(f, "{:indent$}M{basis} {qubit} -> {clbit}", "")?;
                    }
                    Op::Conditional { clbit, ops } => {
                        writeln!(f, "{:indent$}if {clbit} {{", "")?;
                        write_ops(f, ops, indent + 2)?;
                        writeln!(f, "{:indent$}}}", "")?;
                    }
                    Op::Reset(qubit) => writeln!(f, "{:indent$}reset {qubit}", "")?,
                }
            }
            Ok(())
        }
        write_ops(f, &self.ops, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Basis, Gate};
    use crate::op::ClbitId;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn adjoint_reverses_and_inverts() {
        let c = Circuit::from_ops(
            2,
            0,
            vec![Op::Gate(Gate::H(q(0))), Op::Gate(Gate::Cx(q(0), q(1)))],
        );
        let adj = c.adjoint().unwrap();
        assert_eq!(adj.ops()[0], Op::Gate(Gate::Cx(q(0), q(1))));
        assert_eq!(adj.ops()[1], Op::Gate(Gate::H(q(0))));
    }

    #[test]
    fn validate_catches_out_of_range_qubit() {
        let c = Circuit::from_ops(1, 0, vec![Op::Gate(Gate::Cx(q(0), q(5)))]);
        assert_eq!(
            c.validate(),
            Err(CircuitError::QubitOutOfRange {
                qubit: 5,
                num_qubits: 1
            })
        );
    }

    #[test]
    fn validate_catches_duplicate_operands() {
        let c = Circuit::from_ops(3, 0, vec![Op::Gate(Gate::Ccx(q(1), q(1), q(2)))]);
        assert_eq!(
            c.validate(),
            Err(CircuitError::DuplicateOperand { qubit: 1 })
        );
    }

    #[test]
    fn validate_catches_out_of_range_clbit_in_conditional() {
        let c = Circuit::from_ops(
            1,
            1,
            vec![Op::Conditional {
                clbit: ClbitId(4),
                ops: vec![],
            }],
        );
        assert_eq!(
            c.validate(),
            Err(CircuitError::ClbitOutOfRange {
                clbit: 4,
                num_clbits: 1
            })
        );
    }

    #[test]
    fn validate_accepts_well_formed_adaptive_circuit() {
        let good = Circuit::from_ops(
            3,
            1,
            vec![
                Op::Gate(Gate::Ccx(q(0), q(1), q(2))),
                Op::Measure {
                    qubit: q(2),
                    basis: Basis::X,
                    clbit: ClbitId(0),
                },
                Op::Conditional {
                    clbit: ClbitId(0),
                    ops: vec![Op::Gate(Gate::Cz(q(0), q(1)))],
                },
            ],
        );
        assert!(good.validate().is_ok());
    }

    #[test]
    fn display_includes_structure() {
        let c = Circuit::from_ops(
            1,
            1,
            vec![
                Op::Measure {
                    qubit: q(0),
                    basis: Basis::X,
                    clbit: ClbitId(0),
                },
                Op::Conditional {
                    clbit: ClbitId(0),
                    ops: vec![Op::Gate(Gate::Z(q(0)))],
                },
            ],
        );
        let text = c.to_string();
        assert!(text.contains("MX q0 -> c0"));
        assert!(text.contains("if c0 {"));
    }
}
