//! Circuit depth via ASAP (as-soon-as-possible) scheduling.
//!
//! Depth is computed over the dependency graph induced by shared qubits and
//! by classical bits (a measurement writes a bit; a conditional block reads
//! it). Two weighting schemes are exposed through
//! [`Circuit`](crate::Circuit):
//!
//! * full depth — every operation occupies one layer;
//! * Toffoli depth — only Toffoli-family gates (CCX, CCZ, CC-R) occupy a
//!   layer, the metric the paper's headline "Toffoli count and depth"
//!   improvements are stated in.

use crate::gate::Gate;
use crate::op::Op;

/// Scheduling weights: how many layers each kind of operation occupies.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DepthWeights {
    pub gate: fn(&Gate) -> u64,
    pub measure: u64,
}

pub(crate) const FULL: DepthWeights = DepthWeights {
    gate: |_| 1,
    measure: 1,
};

pub(crate) const TOFFOLI: DepthWeights = DepthWeights {
    gate: |g| match g {
        Gate::Ccx(..) | Gate::Ccz(..) | Gate::CcPhase(..) => 1,
        _ => 0,
    },
    measure: 0,
};

/// Computes the ASAP depth of `ops` under the given weights.
///
/// Conditional bodies are scheduled at full weight (worst case) and cannot
/// start before the conditioning classical bit has been written.
pub(crate) fn depth(
    ops: &[Op],
    num_qubits: usize,
    num_clbits: usize,
    weights: DepthWeights,
) -> u64 {
    let mut qubit_time = vec![0u64; num_qubits];
    let mut clbit_time = vec![0u64; num_clbits];
    walk(ops, &mut qubit_time, &mut clbit_time, weights, 0);
    qubit_time
        .iter()
        .chain(clbit_time.iter())
        .copied()
        .max()
        .unwrap_or(0)
}

fn walk(
    ops: &[Op],
    qubit_time: &mut [u64],
    clbit_time: &mut [u64],
    weights: DepthWeights,
    floor: u64,
) {
    for op in ops {
        match op {
            Op::Gate(g) => {
                let mut start = floor;
                g.for_each_qubit(&mut |q| start = start.max(qubit_time[q.index()]));
                let end = start + (weights.gate)(g);
                g.for_each_qubit(&mut |q| qubit_time[q.index()] = end);
            }
            Op::Measure { qubit, clbit, .. } => {
                let start = floor.max(qubit_time[qubit.index()]);
                let end = start + weights.measure;
                qubit_time[qubit.index()] = end;
                clbit_time[clbit.index()] = end;
            }
            Op::Conditional { clbit, ops } => {
                let inner_floor = floor.max(clbit_time[clbit.index()]);
                walk(ops, qubit_time, clbit_time, weights, inner_floor);
            }
            Op::Reset(qubit) => {
                let start = floor.max(qubit_time[qubit.index()]);
                qubit_time[qubit.index()] = start + weights.measure;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Basis;
    use crate::op::{ClbitId, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let ops = vec![
            Op::Gate(Gate::H(q(0))),
            Op::Gate(Gate::H(q(1))),
            Op::Gate(Gate::Cx(q(0), q(1))),
        ];
        assert_eq!(depth(&ops, 2, 0, FULL), 2);
    }

    #[test]
    fn toffoli_depth_ignores_clifford_layers() {
        let ops = vec![
            Op::Gate(Gate::H(q(0))),
            Op::Gate(Gate::Ccx(q(0), q(1), q(2))),
            Op::Gate(Gate::Cx(q(2), q(3))),
            Op::Gate(Gate::Ccx(q(0), q(1), q(2))),
        ];
        assert_eq!(depth(&ops, 4, 0, TOFFOLI), 2);
        assert_eq!(depth(&ops, 4, 0, FULL), 4);
    }

    #[test]
    fn independent_toffolis_are_one_layer_deep() {
        let ops = vec![
            Op::Gate(Gate::Ccx(q(0), q(1), q(2))),
            Op::Gate(Gate::Ccx(q(3), q(4), q(5))),
        ];
        assert_eq!(depth(&ops, 6, 0, TOFFOLI), 1);
    }

    #[test]
    fn conditional_waits_for_its_classical_bit() {
        let ops = vec![
            Op::Measure {
                qubit: q(0),
                basis: Basis::X,
                clbit: ClbitId(0),
            },
            Op::Conditional {
                clbit: ClbitId(0),
                // Touches a fresh qubit, yet must still start after the
                // measurement that produced the classical bit.
                ops: vec![Op::Gate(Gate::X(q(1)))],
            },
        ];
        assert_eq!(depth(&ops, 2, 1, FULL), 2);
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        assert_eq!(depth(&[], 3, 1, FULL), 0);
    }
}
