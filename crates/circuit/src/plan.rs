//! Segment classification and per-segment representation planning.
//!
//! The [`CompiledCircuit::segments`] decomposition already identifies the
//! deterministic unitary runs of a program; this module labels each run
//! with the *structural facts* a simulation engine needs to pick a state
//! representation for it:
//!
//! * **permutation-only** — every gate is a classical basis permutation
//!   ([`Gate::is_permutation`]), so the segment moves amplitudes without
//!   arithmetic and never grows the occupied set;
//! * **diagonal-only** — every gate is diagonal
//!   ([`Gate::is_diagonal`]), so the segment only rotates phases in
//!   place;
//! * **H count** — the number of Hadamards, the only gate in the set
//!   that can grow the occupied set (each `H` at most doubles it);
//! * **support width** — how many distinct qubits the segment touches;
//! * **occupancy ceiling** — an upper bound (as a power of two) on the
//!   number of simultaneously nonzero amplitudes *after* the segment,
//!   threaded across segments: `|0…0⟩` starts at one occupied entry,
//!   each Hadamard at most doubles the set, permutation and diagonal
//!   gates preserve it exactly (the sparse backend culls exact zeros, so
//!   its occupied set *is* the nonzero support), and each measurement or
//!   reset between segments collapses one qubit and halves the bound.
//!
//! [`CompiledCircuit::representation_plan`] turns the profiles into a
//! per-segment three-way decision ([`PlannedRepr`]): a segment predicted
//! to stay under the sparsity threshold runs cheaper on the sparse map; a
//! segment whose occupied set approaches `2^n` wants the flat dense array
//! (provided the state fits a dense allocation at all); and a
//! diagonal-heavy segment whose occupied set outgrows the sparse sweet
//! spot past the dense cap — the interior of a QFT adder — wants the
//! phase-accumulator representation, where diagonal gates are O(occupied)
//! exact angle additions. The `mbu-sim` crate's hybrid backend
//! (`MBU_BACKEND=auto`) consumes the same profiles at run time — seeded
//! with the *live* occupancy instead of the static prediction — and
//! converts representations at segment boundaries.

use std::collections::BTreeSet;
use std::fmt;

use crate::compile::{CompiledCircuit, Instr, Segment};
use crate::gate::Gate;

/// Default cap on the register width for which the planner will consider
/// a dense representation at all: a dense phase allocates `2^n` amplitude
/// slots, and past this width (16 MiB of complex amplitudes at 24
/// qubits) converting to dense cannot pay for itself. Overridable at run
/// time through the `MBU_AUTO_DENSE_QUBITS` environment knob.
pub const DEFAULT_AUTO_DENSE_QUBITS: usize = 24;

/// Default occupancy threshold separating "sparse is cheaper" from
/// "dense is cheaper": a segment whose predicted occupied set stays at or
/// under this many entries is planned sparse. Overridable at run time
/// through the `MBU_AUTO_SPARSITY` environment knob.
pub const DEFAULT_AUTO_SPARSITY: u64 = 4096;

/// Default minimum number of diagonal gates for a segment to be worth the
/// phase-accumulator representation: below this the conversion round-trip
/// costs more than the diagonal fast path saves. Overridable at run time
/// through the `MBU_AUTO_PHASE_DIAG` environment knob.
pub const DEFAULT_AUTO_PHASE_DIAG: u32 = 8;

/// Thresholds steering the three-way representation choice of
/// [`plan_segment`]. The compile-time dump plans with [`Default`] (all
/// three representations on the table); the run-time hybrid backend
/// rebuilds a config from the `MBU_AUTO_*` environment knobs, where the
/// phase arm is opt-in via `MBU_AUTO_PHASE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlanConfig {
    /// Widest register for which a dense `2^n` allocation is considered
    /// (see [`DEFAULT_AUTO_DENSE_QUBITS`]).
    pub dense_qubit_cap: usize,
    /// Occupied-set size at or under which sparse is presumed cheaper
    /// (see [`DEFAULT_AUTO_SPARSITY`]).
    pub sparsity_threshold: u64,
    /// Whether the phase-accumulator representation may be planned at
    /// all.
    pub phase_enabled: bool,
    /// Minimum diagonal-gate count for a phase plan (see
    /// [`DEFAULT_AUTO_PHASE_DIAG`]).
    pub phase_diag_min: u32,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            dense_qubit_cap: DEFAULT_AUTO_DENSE_QUBITS,
            sparsity_threshold: DEFAULT_AUTO_SPARSITY,
            phase_enabled: true,
            phase_diag_min: DEFAULT_AUTO_PHASE_DIAG,
        }
    }
}

impl PlanConfig {
    /// A two-way (dense/sparse) config at the given thresholds — the
    /// pre-phase planner's behaviour, used where the phase arm is not
    /// wanted.
    #[must_use]
    pub fn dense_sparse(dense_qubit_cap: usize, sparsity_threshold: u64) -> Self {
        Self {
            dense_qubit_cap,
            sparsity_threshold,
            phase_enabled: false,
            phase_diag_min: DEFAULT_AUTO_PHASE_DIAG,
        }
    }
}

/// Structural facts about one deterministic segment of a compiled
/// program. Produced by [`CompiledCircuit::segment_profiles`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentProfile {
    /// The instruction range the facts describe.
    pub segment: Segment,
    /// Every gate is a classical basis permutation (`X`/`CX`/`CCX`/
    /// `SWAP`): the segment moves amplitudes with no arithmetic and the
    /// occupied set neither grows nor shrinks.
    pub perm_only: bool,
    /// Every gate is diagonal in the computational basis: the segment
    /// rotates phases in place and the occupied set is untouched.
    pub diag_only: bool,
    /// Number of Hadamard gates — the only occupancy-growing gate in the
    /// set (each at most doubles the occupied set).
    pub h_count: u32,
    /// Number of diagonal gates (`Z`/`Phase`/`CZ`/`CCZ`/`CPhase`/
    /// `CCPhase`) — the gates a phase-accumulator representation executes
    /// as O(occupied) exact angle additions with no amplitude sweep.
    pub diag_count: u32,
    /// Number of distinct qubits the segment touches.
    pub support_width: usize,
    /// Upper bound on the occupied-set size after the segment, as a
    /// power-of-two exponent (capped at the register width). Threaded
    /// across segments from the `|0…0⟩` start, with measurements and
    /// resets between segments each halving the bound.
    pub occ_ceiling_log2: u32,
}

impl SegmentProfile {
    /// The occupancy ceiling as an entry count (`u64::MAX` when the
    /// exponent exceeds 63 bits).
    #[must_use]
    pub fn predicted_entries(&self) -> u64 {
        if self.occ_ceiling_log2 >= 63 {
            u64::MAX
        } else {
            1u64 << self.occ_ceiling_log2
        }
    }

    /// Whether the segment has the structure the phase-accumulator
    /// representation is for: a predicted occupied set past the sparse
    /// sweet spot *and* enough diagonal gates to amortise the conversion
    /// round-trip. [`plan_segment`] plans `Phase` only for such segments
    /// (when the phase arm is enabled and the dense arm declined), and the
    /// static verifier re-derives the same predicate from its own segment
    /// walk to certify plan coherence.
    #[must_use]
    pub fn phase_suitable(&self, config: &PlanConfig) -> bool {
        self.predicted_entries() > config.sparsity_threshold
            && self.diag_count >= config.phase_diag_min
    }
}

impl fmt::Display for SegmentProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcs {}..{}, ", self.segment.start, self.segment.end)?;
        if self.perm_only {
            write!(f, "perm-only")?;
        } else if self.diag_only {
            write!(f, "diag-only")?;
        } else if self.h_count > 0 {
            write!(f, "h\u{d7}{}", self.h_count)?;
            if self.diag_count > 0 {
                write!(f, "+diag\u{d7}{}", self.diag_count)?;
            }
        } else {
            write!(f, "mixed")?;
        }
        write!(f, ", support {}, ", self.support_width)?;
        if self.occ_ceiling_log2 <= 16 {
            write!(f, "occ\u{2264}{}", 1u64 << self.occ_ceiling_log2)
        } else {
            write!(f, "occ\u{2264}2^{}", self.occ_ceiling_log2)
        }
    }
}

/// The representation the planner picked for one segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlannedRepr {
    /// Flat `2^n` amplitude array: cheapest once the occupied set is a
    /// sizable fraction of the space (contiguous sweeps, SIMD kernels).
    Dense,
    /// Sorted key→amplitude map holding only nonzero entries: cheapest
    /// while the occupied set stays small.
    Sparse,
    /// Occupied basis branches with per-register classical dyadic phase
    /// accumulators: diagonal gates become O(occupied) exact angle
    /// additions, so QFT-adder interiors run without amplitude sweeps
    /// even where a dense allocation is impossible.
    Phase,
}

impl fmt::Display for PlannedRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannedRepr::Dense => write!(f, "dense"),
            PlannedRepr::Sparse => write!(f, "sparse"),
            PlannedRepr::Phase => write!(f, "phase"),
        }
    }
}

/// The three-way representation decision for one segment, given the
/// register width and the planner thresholds:
///
/// 1. **Dense** when the state fits a dense allocation
///    (`num_qubits ≤ dense_qubit_cap`) *and* the predicted occupied set
///    outgrows `sparsity_threshold` entries — flat sweeps beat map
///    updates once occupancy is a sizable fraction of `2^n`;
/// 2. otherwise **Phase** when the phase arm is enabled, the predicted
///    occupied set still outgrows the sparsity threshold (the blow-up a
///    sparse map cannot absorb past the dense cap comes from Fourier-basis
///    fan-out), and the segment carries at least `phase_diag_min`
///    diagonal gates to amortise the conversion;
/// 3. otherwise **Sparse**.
#[must_use]
pub fn plan_segment(
    num_qubits: usize,
    profile: &SegmentProfile,
    config: &PlanConfig,
) -> PlannedRepr {
    let outgrows = profile.predicted_entries() > config.sparsity_threshold;
    if num_qubits <= config.dense_qubit_cap && outgrows {
        PlannedRepr::Dense
    } else if config.phase_enabled && profile.phase_suitable(config) {
        PlannedRepr::Phase
    } else {
        PlannedRepr::Sparse
    }
}

impl CompiledCircuit {
    /// Classifies every deterministic segment of the program (see
    /// [`CompiledCircuit::segments`]) with the structural facts of
    /// [`SegmentProfile`], threading the occupancy ceiling across
    /// segments from the `|0…0⟩` start state.
    ///
    /// The occupancy thread is a *bound*, not an estimate: Hadamards at
    /// most double the occupied set, permutations and diagonals preserve
    /// it exactly. The one heuristic step is the between-segment
    /// collapse — a measurement or reset halves the bound (exact for a
    /// qubit in an even superposition, an over-estimate of the reduction
    /// for a definite qubit) — which can under-predict occupancy for
    /// states biased toward definite outcomes; planners using the ceiling
    /// re-check against *live* occupancy at run time.
    #[must_use]
    pub fn segment_profiles(&self) -> Vec<SegmentProfile> {
        let instrs = self.instrs();
        let fused = self.fused_unitaries();
        let width_log2 = u32::try_from(self.num_qubits()).unwrap_or(u32::MAX);
        let mut profiles = Vec::new();
        let mut occ_log2: u32 = 0;
        let mut cursor = 0usize;
        for segment in self.segments() {
            for instr in &instrs[cursor..segment.start] {
                if matches!(instr, Instr::Measure { .. } | Instr::Reset(_)) {
                    occ_log2 = occ_log2.saturating_sub(1);
                }
            }
            let mut perm_only = true;
            let mut diag_only = true;
            let mut h_count = 0u32;
            let mut diag_count = 0u32;
            let mut support = BTreeSet::new();
            let mut classify = |g: &Gate, support: &mut BTreeSet<u32>| {
                perm_only &= g.is_permutation();
                diag_only &= g.is_diagonal();
                h_count += u32::from(matches!(g, Gate::H(_)));
                diag_count += u32::from(g.is_diagonal());
                g.for_each_qubit(&mut |q| {
                    support.insert(q.0);
                });
            };
            for instr in &instrs[segment.start..segment.end] {
                match instr {
                    Instr::Gate(g) => classify(g, &mut support),
                    Instr::Fused(idx) => {
                        let fu = &fused[*idx as usize];
                        // Classify by the (operand-independent) gate
                        // families; take support from the block's global
                        // qubits, not the local constituents.
                        let mut scratch = BTreeSet::new();
                        for g in fu.gates() {
                            classify(g, &mut scratch);
                        }
                        for q in fu.qubits() {
                            support.insert(q.0);
                        }
                    }
                    // Segments hold only unitary instructions.
                    _ => debug_assert!(false, "non-unitary instr inside a segment"),
                }
            }
            occ_log2 = occ_log2.saturating_add(h_count).min(width_log2);
            profiles.push(SegmentProfile {
                segment,
                perm_only,
                diag_only,
                h_count,
                diag_count,
                support_width: support.len(),
                occ_ceiling_log2: occ_log2,
            });
            cursor = segment.end;
        }
        profiles
    }

    /// The per-segment dense/sparse/phase plan at the given thresholds
    /// (see [`plan_segment`]). Positions correspond to
    /// [`CompiledCircuit::segments`] /
    /// [`CompiledCircuit::segment_profiles`] order.
    #[must_use]
    pub fn representation_plan(&self, config: &PlanConfig) -> Vec<PlannedRepr> {
        self.segment_profiles()
            .iter()
            .map(|p| plan_segment(self.num_qubits(), p, config))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::compile::PassConfig;
    use crate::gate::Basis;

    #[test]
    fn profiles_classify_and_thread_occupancy() {
        // Program (lowered): 0:H 1:X 2:MZ 3:unless 4:CZ 5:H — three
        // segments, one measurement between the first two.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.h(r[0]);
        b.x(r[1]);
        let m = b.measure(r[0], Basis::Z);
        let (_, block) = b.record(|b| b.cz(r[0], r[1]));
        b.emit_conditional(m, &block);
        b.h(r[1]);
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let profiles = compiled.segment_profiles();
        assert_eq!(profiles.len(), 3, "{compiled}");

        // H X: one Hadamard doubles the single |00⟩ entry.
        assert!(!profiles[0].perm_only);
        assert!(!profiles[0].diag_only);
        assert_eq!(profiles[0].h_count, 1);
        assert_eq!(profiles[0].support_width, 2);
        assert_eq!(profiles[0].occ_ceiling_log2, 1);
        assert_eq!(profiles[0].predicted_entries(), 2);

        assert_eq!(profiles[0].diag_count, 0);

        // The measurement halves the bound; the guarded CZ is diagonal.
        assert!(profiles[1].diag_only);
        assert!(!profiles[1].perm_only);
        assert_eq!(profiles[1].h_count, 0);
        assert_eq!(profiles[1].diag_count, 1);
        assert_eq!(profiles[1].occ_ceiling_log2, 0);

        // The post-join H doubles it again.
        assert_eq!(profiles[2].h_count, 1);
        assert_eq!(profiles[2].occ_ceiling_log2, 1);
    }

    #[test]
    fn occupancy_ceiling_caps_at_register_width() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        for _ in 0..5 {
            b.h(r[0]);
            b.h(r[1]);
        }
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let profiles = compiled.segment_profiles();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].h_count, 10);
        assert_eq!(profiles[0].occ_ceiling_log2, 2, "capped at 2 qubits");
        assert_eq!(profiles[0].predicted_entries(), 4);
    }

    #[test]
    fn fused_blocks_classify_by_their_constituents() {
        // A CX ladder across 8 qubits fuses into one permutation block
        // (see the compile-layer fusion tests); the profile must see
        // through the block to classify the segment permutation-only and
        // take support from the block's global operands.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 8);
        for i in 0..7 {
            b.cx(r[i], r[i + 1]);
        }
        let fused_on = PassConfig {
            fuse_max_qubits: 3,
            ..PassConfig::default()
        };
        let compiled = CompiledCircuit::with_config(&b.finish(), &fused_on).unwrap();
        assert_eq!(compiled.stats().fused_blocks, 1, "{compiled}");
        let profiles = compiled.segment_profiles();
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].perm_only);
        assert!(!profiles[0].diag_only);
        assert_eq!(profiles[0].h_count, 0);
        assert_eq!(profiles[0].support_width, 8);
        // Permutations never grow the single |0…0⟩ entry.
        assert_eq!(profiles[0].occ_ceiling_log2, 0);
    }

    #[test]
    fn plan_switches_on_width_cap_and_sparsity_threshold() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.h(r[0]);
        b.h(r[1]);
        b.h(r[2]);
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let profiles = compiled.segment_profiles();
        assert_eq!(profiles[0].predicted_entries(), 8);

        // Occupancy above threshold and width under cap: dense.
        assert_eq!(
            compiled.representation_plan(&PlanConfig::dense_sparse(24, 4)),
            vec![PlannedRepr::Dense]
        );
        // Threshold at/above the prediction: sparse.
        assert_eq!(
            compiled.representation_plan(&PlanConfig::dense_sparse(24, 8)),
            vec![PlannedRepr::Sparse]
        );
        // Register wider than the dense cap: sparse regardless.
        assert_eq!(
            compiled.representation_plan(&PlanConfig::dense_sparse(2, 0)),
            vec![PlannedRepr::Sparse]
        );
    }

    #[test]
    fn diagonal_heavy_blowups_past_the_dense_cap_plan_phase() {
        // A QFT-adder-shaped segment: H fan-out into a diagonal rotation
        // cascade. Past the dense cap with occupancy over the sparsity
        // threshold, the planner picks the phase representation — but
        // only when the phase arm is enabled and the segment is diagonal-
        // heavy enough to amortise the conversion.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 6);
        for i in 0..6 {
            b.h(r[i]);
        }
        for i in 0..5 {
            b.cphase(r[i], r[i + 1], crate::Angle::turn_over_power_of_two(2));
        }
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let profiles = compiled.segment_profiles();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].diag_count, 5);
        assert_eq!(profiles[0].predicted_entries(), 64);

        let phase_on = PlanConfig {
            dense_qubit_cap: 2,
            sparsity_threshold: 4,
            phase_enabled: true,
            phase_diag_min: 5,
        };
        assert_eq!(
            compiled.representation_plan(&phase_on),
            vec![PlannedRepr::Phase]
        );
        // Dense still wins while the register fits the cap.
        assert_eq!(
            compiled.representation_plan(&PlanConfig {
                dense_qubit_cap: 24,
                ..phase_on
            }),
            vec![PlannedRepr::Dense]
        );
        // Too few diagonals to amortise the conversion: sparse.
        assert_eq!(
            compiled.representation_plan(&PlanConfig {
                phase_diag_min: 6,
                ..phase_on
            }),
            vec![PlannedRepr::Sparse]
        );
        // Phase arm disabled: the pre-phase two-way behaviour.
        assert_eq!(
            compiled.representation_plan(&PlanConfig {
                phase_enabled: false,
                ..phase_on
            }),
            vec![PlannedRepr::Sparse]
        );
    }

    #[test]
    fn default_thresholds_plan_mbu_shapes_sparse() {
        // A low-occupancy MBU-style shape: a lone H into a permutation
        // ladder stays at two occupied entries — far under the default
        // 4096-entry sparsity bar, so every segment plans sparse.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 8);
        b.h(r[0]);
        for i in 0..7 {
            b.cx(r[i], r[i + 1]);
        }
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let plan = compiled.representation_plan(&PlanConfig::default());
        assert!(plan.iter().all(|r| *r == PlannedRepr::Sparse), "{plan:?}");
    }

    #[test]
    fn display_renders_profile_facts() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.x(r[0]);
        b.cx(r[0], r[1]);
        let compiled = CompiledCircuit::lower(&b.finish()).unwrap();
        let p = compiled.segment_profiles()[0];
        let s = p.to_string();
        assert!(s.contains("perm-only"), "{s}");
        assert!(s.contains("support 2"), "{s}");
        assert!(s.contains("occ\u{2264}1"), "{s}");
    }
}
