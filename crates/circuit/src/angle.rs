//! Exact dyadic rotation angles.

use std::fmt;

/// A rotation angle that is an exact dyadic fraction of a full turn:
/// `θ = 2π · numerator / 2^{log2_denom}`.
///
/// Every rotation in the paper's circuits is dyadic: the QFT and Draper's
/// `ΦADD` use `θ_k = 2π/2^k` (Figure 3), and the merged constant-addition
/// rotations `U_{a,i}` (Equation (7)) are sums of those, which stay dyadic.
/// Storing angles exactly keeps gate counting exact (rotations with equal
/// angles compare equal) and lets the state-vector simulator cancel
/// rotations without floating-point drift.
///
/// Angles are kept in a canonical form: reduced (odd numerator unless zero)
/// and normalised to `[0, 2π)`.
///
/// # Examples
///
/// ```
/// use mbu_circuit::Angle;
///
/// let eighth = Angle::turn_over_power_of_two(3); // 2π/8 = π/4 (a T gate)
/// let quarter = eighth + eighth;
/// assert_eq!(quarter, Angle::turn_over_power_of_two(2));
/// assert_eq!((-quarter) + quarter, Angle::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Angle {
    /// Numerator of the fraction of a full turn; odd unless the angle is 0.
    numerator: u128,
    /// `log2` of the denominator.
    log2_denom: u32,
}

impl Angle {
    /// The zero angle.
    pub const ZERO: Self = Self {
        numerator: 0,
        log2_denom: 0,
    };

    /// A half turn, `π` — the angle of a `Z` gate.
    pub const HALF_TURN: Self = Self {
        numerator: 1,
        log2_denom: 1,
    };

    /// Creates the paper's `θ_k = 2π / 2^k` (Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `k > 127` (denominator would overflow `u128` arithmetic).
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_circuit::Angle;
    ///
    /// assert_eq!(Angle::turn_over_power_of_two(1), Angle::HALF_TURN);
    /// ```
    #[must_use]
    pub fn turn_over_power_of_two(k: u32) -> Self {
        assert!(k <= 127, "angle denominator 2^{k} out of range");
        if k == 0 {
            return Self::ZERO; // a full turn is the identity
        }
        Self {
            numerator: 1,
            log2_denom: k,
        }
    }

    /// Creates `2π · numerator / 2^{log2_denom}`, normalising to canonical
    /// form.
    ///
    /// # Panics
    ///
    /// Panics if `log2_denom > 127`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_circuit::Angle;
    ///
    /// // 6/8 of a turn reduces to 3/4.
    /// let a = Angle::from_fraction(6, 3);
    /// assert_eq!(a, Angle::from_fraction(3, 2));
    /// ```
    #[must_use]
    pub fn from_fraction(numerator: u128, log2_denom: u32) -> Self {
        assert!(
            log2_denom <= 127,
            "angle denominator 2^{log2_denom} out of range"
        );
        let mask = if log2_denom == 0 {
            0
        } else {
            (1u128 << log2_denom) - 1
        };
        let mut num = numerator & mask;
        let mut denom = log2_denom;
        while num != 0 && num.is_multiple_of(2) {
            num /= 2;
            denom -= 1;
        }
        if num == 0 {
            return Self::ZERO;
        }
        Self {
            numerator: num,
            log2_denom: denom,
        }
    }

    /// The numerator of the canonical fraction of a full turn.
    #[must_use]
    pub fn numerator(&self) -> u128 {
        self.numerator
    }

    /// `log2` of the canonical denominator.
    #[must_use]
    pub fn log2_denom(&self) -> u32 {
        self.log2_denom
    }

    /// Whether this is the zero angle (identity rotation).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.numerator == 0
    }

    /// The angle in radians, for simulation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_circuit::Angle;
    ///
    /// assert!((Angle::HALF_TURN.radians() - std::f64::consts::PI).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn radians(&self) -> f64 {
        2.0 * std::f64::consts::PI * (self.numerator as f64) / 2f64.powi(self.log2_denom as i32)
    }
}

impl std::ops::Add for Angle {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        let denom = self.log2_denom.max(rhs.log2_denom);
        if denom == 0 {
            return Self::ZERO;
        }
        let a = self.numerator << (denom - self.log2_denom);
        let b = rhs.numerator << (denom - rhs.log2_denom);
        // Sum may exceed one turn by less than one turn; wrap it.
        let modulus = 1u128 << denom;
        Self::from_fraction((a + b) % modulus, denom)
    }
}

impl std::ops::Neg for Angle {
    type Output = Self;

    fn neg(self) -> Self {
        if self.numerator == 0 {
            return Self::ZERO;
        }
        let modulus = 1u128 << self.log2_denom;
        Self::from_fraction(modulus - self.numerator, self.log2_denom)
    }
}

impl fmt::Debug for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Angle({self})")
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.numerator == 0 {
            write!(f, "0")
        } else if self.numerator == 1 {
            write!(f, "2π/2^{}", self.log2_denom)
        } else {
            write!(f, "2π·{}/2^{}", self.numerator, self.log2_denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_reduces() {
        assert_eq!(Angle::from_fraction(4, 4), Angle::from_fraction(1, 2));
        assert_eq!(Angle::from_fraction(0, 10), Angle::ZERO);
        assert_eq!(Angle::from_fraction(8, 3), Angle::ZERO); // full turn wraps
    }

    #[test]
    fn addition_wraps_a_full_turn() {
        let three_quarters = Angle::from_fraction(3, 2);
        let half = Angle::HALF_TURN;
        // 3/4 + 1/2 = 5/4 ≡ 1/4.
        assert_eq!(three_quarters + half, Angle::from_fraction(1, 2));
    }

    #[test]
    fn negation_is_additive_inverse() {
        for (num, denom) in [(1u128, 1u32), (3, 3), (5, 4), (0, 0), (7, 5)] {
            let a = Angle::from_fraction(num, denom);
            assert_eq!(a + (-a), Angle::ZERO, "{a}");
        }
    }

    #[test]
    fn radians_of_known_angles() {
        use std::f64::consts::PI;
        assert_eq!(Angle::ZERO.radians(), 0.0);
        assert!((Angle::turn_over_power_of_two(2).radians() - PI / 2.0).abs() < 1e-12);
        assert!((Angle::turn_over_power_of_two(3).radians() - PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn equation_7_merged_rotation_is_dyadic() {
        // U_{a,i} = R(Σ_k a_k θ_{i-k+1}) stays dyadic for any constant a.
        let a_bits = [true, false, true, true];
        let i = 3u32;
        let mut theta = Angle::ZERO;
        for (k, &bit) in a_bits.iter().enumerate() {
            if bit {
                theta = theta + Angle::turn_over_power_of_two(i - k as u32 + 1);
            }
        }
        // Σ = 2π(2^0 + 2^2 + 2^3)/2^4 = 2π·13/16.
        assert_eq!(theta, Angle::from_fraction(13, 4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Angle::ZERO.to_string(), "0");
        assert_eq!(Angle::HALF_TURN.to_string(), "2π/2^1");
        assert_eq!(Angle::from_fraction(3, 3).to_string(), "2π·3/2^3");
    }
}
