//! Exact dyadic rotation angles.

use std::fmt;

/// A rotation angle that is an exact dyadic fraction of a full turn:
/// `θ = 2π · numerator / 2^{log2_denom}`.
///
/// Every rotation in the paper's circuits is dyadic: the QFT and Draper's
/// `ΦADD` use `θ_k = 2π/2^k` (Figure 3), and the merged constant-addition
/// rotations `U_{a,i}` (Equation (7)) are sums of those, which stay dyadic.
/// Storing angles exactly keeps gate counting exact (rotations with equal
/// angles compare equal) and lets the state-vector simulator cancel
/// rotations without floating-point drift.
///
/// Angles are kept in a canonical form: reduced (odd numerator unless zero)
/// and normalised to `[0, 2π)`. The numerator is a `u128`, but the
/// denominator exponent is unbounded — a QFT over a 1024-bit register emits
/// rotations down to `2π/2^{1025}`, which are exactly representable because
/// their reduced numerator is 1. Angles whose canonical numerator does not
/// fit 128 bits carry a *negated* marker instead: `−x` is stored as the
/// pair `(x, negated)` whenever the equivalent `1 − x` numerator would
/// overflow (only possible past `2^128` denominators, where the two forms
/// never collide). Sums that cannot be represented exactly are reported by
/// [`Angle::checked_add`]; the `+` operator panics on them.
///
/// # Examples
///
/// ```
/// use mbu_circuit::Angle;
///
/// let eighth = Angle::turn_over_power_of_two(3); // 2π/8 = π/4 (a T gate)
/// let quarter = eighth + eighth;
/// assert_eq!(quarter, Angle::turn_over_power_of_two(2));
/// assert_eq!((-quarter) + quarter, Angle::ZERO);
///
/// // Deep-QFT angles far past u128 denominators stay exact.
/// let deep = Angle::turn_over_power_of_two(1025);
/// assert_eq!((-deep) + deep, Angle::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Angle {
    /// Numerator of the fraction of a full turn; odd unless the angle is 0.
    numerator: u128,
    /// `log2` of the denominator.
    log2_denom: u32,
    /// When set, the stored fraction is *subtracted* from a full turn:
    /// the angle's value is `2π(1 − numerator/2^{log2_denom})`. Canonical
    /// form keeps this `false` whenever `log2_denom ≤ 128` (the positive
    /// numerator fits), so it can only be set for deeper denominators —
    /// where positive forms are `< π` and negated forms `> π`, making the
    /// representation unique and derived equality exact.
    negated: bool,
}

impl Angle {
    /// The zero angle.
    pub const ZERO: Self = Self {
        numerator: 0,
        log2_denom: 0,
        negated: false,
    };

    /// A half turn, `π` — the angle of a `Z` gate.
    pub const HALF_TURN: Self = Self {
        numerator: 1,
        log2_denom: 1,
        negated: false,
    };

    /// Canonicalises `(numerator, log2_denom, negated)`: reduces to an odd
    /// numerator and rewrites negated forms as positive whenever the
    /// complement numerator fits (always, for denominators up to `2^128`).
    fn canonical(mut numerator: u128, mut log2_denom: u32, negated: bool) -> Self {
        while numerator != 0 && numerator.is_multiple_of(2) {
            numerator /= 2;
            log2_denom -= 1;
        }
        if numerator == 0 {
            return Self::ZERO;
        }
        if negated && log2_denom <= 128 {
            // 1 − num/2^d = (2^d − num)/2^d; the complement of an odd
            // numerator is odd, so no re-reduction is needed.
            numerator = if log2_denom == 128 {
                numerator.wrapping_neg()
            } else {
                (1u128 << log2_denom) - numerator
            };
            return Self {
                numerator,
                log2_denom,
                negated: false,
            };
        }
        Self {
            numerator,
            log2_denom,
            negated,
        }
    }

    /// Creates the paper's `θ_k = 2π / 2^k` (Figure 3), for any `k` — the
    /// reduced numerator is 1, so arbitrarily deep QFT rotations are exact.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_circuit::Angle;
    ///
    /// assert_eq!(Angle::turn_over_power_of_two(1), Angle::HALF_TURN);
    /// assert!(!Angle::turn_over_power_of_two(1025).is_zero());
    /// ```
    #[must_use]
    pub fn turn_over_power_of_two(k: u32) -> Self {
        if k == 0 {
            return Self::ZERO; // a full turn is the identity
        }
        Self {
            numerator: 1,
            log2_denom: k,
            negated: false,
        }
    }

    /// Creates `2π · numerator / 2^{log2_denom}`, normalising to canonical
    /// form. Denominator exponents past 128 are accepted (the fraction is
    /// already below one turn there, so no wrapping is needed).
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_circuit::Angle;
    ///
    /// // 6/8 of a turn reduces to 3/4.
    /// let a = Angle::from_fraction(6, 3);
    /// assert_eq!(a, Angle::from_fraction(3, 2));
    /// ```
    #[must_use]
    pub fn from_fraction(numerator: u128, log2_denom: u32) -> Self {
        // Wrap into [0, 1) of a turn; past 2^128 denominators the u128
        // numerator is already below the denominator.
        let num = if log2_denom >= 128 {
            numerator
        } else {
            numerator & ((1u128 << log2_denom) - 1)
        };
        Self::canonical(num, log2_denom, false)
    }

    /// The numerator of the canonical fraction of a full turn. For a
    /// [negated](Self::is_negated) angle this is the numerator of the
    /// *complement*: the value is `2π(1 − numerator/2^{log2_denom})`.
    #[must_use]
    pub fn numerator(&self) -> u128 {
        self.numerator
    }

    /// `log2` of the canonical denominator.
    #[must_use]
    pub fn log2_denom(&self) -> u32 {
        self.log2_denom
    }

    /// Whether the stored fraction is subtracted from a full turn (see
    /// [`numerator`](Self::numerator)). Only ever `true` for denominators
    /// past `2^128`, where the complement numerator cannot be stored.
    #[must_use]
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// Whether this is the zero angle (identity rotation).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.numerator == 0
    }

    /// The angle in radians, for simulation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_circuit::Angle;
    ///
    /// assert!((Angle::HALF_TURN.radians() - std::f64::consts::PI).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn radians(&self) -> f64 {
        if !self.negated && self.log2_denom <= 127 {
            return 2.0 * std::f64::consts::PI * (self.numerator as f64)
                / 2f64.powi(self.log2_denom as i32);
        }
        let x = (self.numerator as f64) * f64::exp2(-f64::from(self.log2_denom));
        let frac = if self.negated { 1.0 - x } else { x };
        2.0 * std::f64::consts::PI * frac
    }

    /// Shifts `num` from denominator `2^from` to `2^to`, or `None` when
    /// the shifted numerator would not fit 128 bits.
    fn rescale(num: u128, from: u32, to: u32) -> Option<u128> {
        let s = to - from;
        if s == 0 || num == 0 {
            Some(num)
        } else if s >= 128 || num >> (128 - s) != 0 {
            None
        } else {
            Some(num << s)
        }
    }

    /// Adds two non-negated fractions `a/2^d + b/2^d` mod one turn.
    fn pos_sum(a: u128, b: u128, d: u32) -> Option<Self> {
        if d == 0 {
            return Some(Self::ZERO);
        }
        if d <= 127 {
            let m = 1u128 << d;
            return Some(Self::canonical((a + b) % m, d, false));
        }
        if d == 128 {
            return Some(Self::canonical(a.wrapping_add(b), d, false));
        }
        let (sum, carried) = a.overflowing_add(b);
        if !carried {
            Some(Self::canonical(sum, d, false))
        } else if sum.is_multiple_of(2) {
            // True sum is 2^128 + sum < 2^d: halve once to refit.
            Some(Self::canonical((1u128 << 127) | (sum >> 1), d - 1, false))
        } else {
            None
        }
    }

    /// The exact sum of two angles mod a full turn, or `None` when the
    /// reduced numerator of the sum does not fit 128 bits (only possible
    /// when mixing wildly different denominators past `2^128`, e.g.
    /// `π + 2π/2^{1025}`). The compile-time rotation-merge pass skips
    /// unmergeable pairs through this; the `+` operator panics instead.
    #[must_use]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        let d = self.log2_denom.max(rhs.log2_denom);
        let a = Self::rescale(self.numerator, self.log2_denom, d)?;
        let b = Self::rescale(rhs.numerator, rhs.log2_denom, d)?;
        match (self.negated, rhs.negated) {
            (false, false) => Self::pos_sum(a, b, d),
            (true, true) => Self::pos_sum(a, b, d).map(Neg::neg),
            (false, true) | (true, false) => {
                let (pos, neg) = if self.negated { (b, a) } else { (a, b) };
                if pos >= neg {
                    Some(Self::canonical(pos - neg, d, false))
                } else {
                    Some(Self::canonical(neg - pos, d, true))
                }
            }
        }
    }

    /// The exact difference `self − rhs` mod a full turn, under the same
    /// representability conditions as [`Angle::checked_add`].
    #[must_use]
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        self.checked_add(-rhs)
    }

    /// Whether the angle, as a fraction of a turn in `[0, 1)`, is at
    /// least half a turn (`π` radians). The static verifier's symbolic
    /// ring folds such phases through `e^{iθ} = −e^{i(θ−π)}` to keep its
    /// term keys canonical.
    #[must_use]
    pub fn is_at_least_half_turn(&self) -> bool {
        if self.numerator == 0 {
            false
        } else if self.negated {
            // Complement form 1 − x: x = num/2^d with num < 2^128 and
            // d > 128 forces x < 1/2, so the value exceeds half a turn.
            true
        } else if self.log2_denom == 0 || self.log2_denom > 128 {
            // Denominator 1 holds only zero; past 2^128 the (non-negated)
            // numerator is below 2^{d−1}.
            false
        } else {
            self.numerator >> (self.log2_denom - 1) != 0
        }
    }
}

use std::ops::Neg;

impl std::ops::Add for Angle {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs)
            .unwrap_or_else(|| panic!("angle sum {self} + {rhs} exceeds exact dyadic range"))
    }
}

impl Neg for Angle {
    type Output = Self;

    fn neg(self) -> Self {
        if self.numerator == 0 {
            return Self::ZERO;
        }
        if self.log2_denom <= 128 {
            return Self::canonical(self.numerator, self.log2_denom, true);
        }
        Self {
            numerator: self.numerator,
            log2_denom: self.log2_denom,
            negated: !self.negated,
        }
    }
}

impl fmt::Debug for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Angle({self})")
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.negated { "-" } else { "" };
        if self.numerator == 0 {
            write!(f, "0")
        } else if self.numerator == 1 {
            write!(f, "{sign}2π/2^{}", self.log2_denom)
        } else {
            write!(f, "{sign}2π·{}/2^{}", self.numerator, self.log2_denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_reduces() {
        assert_eq!(Angle::from_fraction(4, 4), Angle::from_fraction(1, 2));
        assert_eq!(Angle::from_fraction(0, 10), Angle::ZERO);
        assert_eq!(Angle::from_fraction(8, 3), Angle::ZERO); // full turn wraps
    }

    #[test]
    fn addition_wraps_a_full_turn() {
        let three_quarters = Angle::from_fraction(3, 2);
        let half = Angle::HALF_TURN;
        // 3/4 + 1/2 = 5/4 ≡ 1/4.
        assert_eq!(three_quarters + half, Angle::from_fraction(1, 2));
    }

    #[test]
    fn negation_is_additive_inverse() {
        for (num, denom) in [(1u128, 1u32), (3, 3), (5, 4), (0, 0), (7, 5)] {
            let a = Angle::from_fraction(num, denom);
            assert_eq!(a + (-a), Angle::ZERO, "{a}");
        }
    }

    #[test]
    fn radians_of_known_angles() {
        use std::f64::consts::PI;
        assert_eq!(Angle::ZERO.radians(), 0.0);
        assert!((Angle::turn_over_power_of_two(2).radians() - PI / 2.0).abs() < 1e-12);
        assert!((Angle::turn_over_power_of_two(3).radians() - PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn equation_7_merged_rotation_is_dyadic() {
        // U_{a,i} = R(Σ_k a_k θ_{i-k+1}) stays dyadic for any constant a.
        let a_bits = [true, false, true, true];
        let i = 3u32;
        let mut theta = Angle::ZERO;
        for (k, &bit) in a_bits.iter().enumerate() {
            if bit {
                theta = theta + Angle::turn_over_power_of_two(i - k as u32 + 1);
            }
        }
        // Σ = 2π(2^0 + 2^2 + 2^3)/2^4 = 2π·13/16.
        assert_eq!(theta, Angle::from_fraction(13, 4));
    }

    #[test]
    fn deep_denominators_stay_exact() {
        // QFT rotations past the u128 denominator range: numerator 1,
        // arbitrarily deep, with exact negation and cancellation.
        for k in [128u32, 129, 300, 1025, 4097] {
            let a = Angle::turn_over_power_of_two(k);
            assert!(!a.is_zero());
            assert_eq!(a.numerator(), 1);
            assert_eq!(a.log2_denom(), k);
            let neg = -a;
            assert_eq!(-neg, a, "double negation at 2^{k}");
            assert_eq!(a + neg, Angle::ZERO, "cancellation at 2^{k}");
            // a + a halves the denominator exactly.
            assert_eq!(a + a, Angle::turn_over_power_of_two(k - 1));
            assert!(a.radians() >= 0.0);
        }
    }

    #[test]
    fn deep_negated_sums_accumulate_like_an_iqft_column() {
        // Σ_{j} −2π/2^{k_j}, the IQFT's rotation column at one target.
        let mut acc = Angle::ZERO;
        for k in [1025u32, 1024, 1023] {
            acc = acc + (-Angle::turn_over_power_of_two(k));
        }
        // −(1 + 2 + 4)/2^1025 = −7/2^1025.
        let expected = -Angle::from_fraction(7, 1025);
        assert_eq!(acc, expected);
        // And the forward column cancels it exactly.
        for k in [1025u32, 1024, 1023] {
            acc = acc + Angle::turn_over_power_of_two(k);
        }
        assert_eq!(acc, Angle::ZERO);
    }

    #[test]
    fn unrepresentable_sums_are_reported_not_mangled() {
        // π + 2π/2^1025 has a reduced numerator of 2^1024 + 1: too wide.
        let half = Angle::HALF_TURN;
        let deep = Angle::turn_over_power_of_two(1025);
        assert!(half.checked_add(deep).is_none());
        assert!(deep.checked_add(half).is_none());
        // But representable mixes still work: both deep, close exponents.
        assert_eq!(
            Angle::turn_over_power_of_two(200) + Angle::turn_over_power_of_two(201),
            Angle::from_fraction(3, 201)
        );
    }

    #[test]
    fn denominator_128_boundary_wraps_to_positive_form() {
        // Negation at exactly 2^128 uses the wrapping complement and stays
        // in positive canonical form.
        let a = Angle::turn_over_power_of_two(128);
        let neg = -a;
        assert!(!neg.is_negated());
        assert_eq!(neg.numerator(), u128::MAX);
        assert_eq!(neg.log2_denom(), 128);
        assert_eq!(a + neg, Angle::ZERO);
    }

    #[test]
    fn half_turn_threshold_is_exact() {
        assert!(!Angle::ZERO.is_at_least_half_turn());
        assert!(Angle::HALF_TURN.is_at_least_half_turn());
        assert!(!Angle::turn_over_power_of_two(2).is_at_least_half_turn());
        assert!(Angle::from_fraction(3, 2).is_at_least_half_turn());
        // One ulp under half a turn at the 128-bit boundary.
        assert!(!Angle::from_fraction((1u128 << 127) - 1, 128).is_at_least_half_turn());
        assert!(Angle::from_fraction(1u128 << 127, 128).is_at_least_half_turn());
        // Deep positive angles are tiny; deep negated ones are complements.
        assert!(!Angle::turn_over_power_of_two(1025).is_at_least_half_turn());
        assert!((-Angle::turn_over_power_of_two(1025)).is_at_least_half_turn());
    }

    #[test]
    fn checked_sub_folds_past_half_turn() {
        // 3/4 − 1/2 = 1/4 of a turn, exactly.
        assert_eq!(
            Angle::from_fraction(3, 2).checked_sub(Angle::HALF_TURN),
            Some(Angle::turn_over_power_of_two(2))
        );
        assert_eq!(
            Angle::HALF_TURN.checked_sub(Angle::HALF_TURN),
            Some(Angle::ZERO)
        );
        // A deep complement angle cannot shift π onto its denominator.
        assert_eq!(
            (-Angle::turn_over_power_of_two(1025)).checked_sub(Angle::HALF_TURN),
            None
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Angle::ZERO.to_string(), "0");
        assert_eq!(Angle::HALF_TURN.to_string(), "2π/2^1");
        assert_eq!(Angle::from_fraction(3, 3).to_string(), "2π·3/2^3");
        assert_eq!(
            (-Angle::turn_over_power_of_two(1025)).to_string(),
            "-2π/2^1025"
        );
    }
}
