//! Quantum circuit intermediate representation for arithmetic circuits with
//! measurement-based uncomputation.
//!
//! This crate provides the circuit substrate assumed (but never named) by
//! *"Measurement-based uncomputation of quantum circuits for modular
//! arithmetic"* (Luongo, Miti, Narasimhachar, Sireesh, DAC 2025):
//!
//! * a gate set covering the paper's notation (§1.3): `X`, `Z`, `H`,
//!   dyadic phase rotations `R(2π/2^k)` and their singly/doubly controlled
//!   versions, `CNOT`, `CZ`, Toffoli and `CCZ`;
//! * **adaptive circuits**: mid-circuit measurement in the `Z` or `X` basis
//!   writing to classical bits, and classically-controlled sub-circuits —
//!   the primitives behind the MBU lemma (Lemma 4.1) and Gidney's
//!   temporary-logical-AND uncomputation;
//! * resource accounting: exact [`GateCounts`], [`ExpectedCounts`] where
//!   conditional blocks are weighted by their ½ execution probability (the
//!   paper's "in expectation" columns), full depth and Toffoli depth;
//! * a [`CircuitBuilder`] with register allocation, ancilla pooling, scoped
//!   op recording and adjoint emission — the mechanism by which the paper's
//!   propositions compose (`Q†_ADD` as a subtractor, half-subtractor
//!   comparators, …);
//! * an ASCII [`diagram`] renderer regenerating the paper's
//!   circuit figures;
//! * a compilation layer ([`CompiledCircuit`]): lowering to a flat
//!   branch-encoded instruction stream plus peephole passes (self-inverse
//!   cancellation, exact rotation merging, identity and phase-dead
//!   elimination) with per-pass [`PassStats`] — the program representation
//!   the simulators' hot paths execute;
//! * a static verification layer ([`verify`]): a linear IR
//!   [validator](verify::validate) run after every pass under the careful
//!   profile, and a [symbolic equivalence checker](verify::check_equivalence)
//!   proving pass pipelines semantics-preserving without simulation.
//!
//! # Examples
//!
//! Build and inspect a Toffoli sandwich:
//!
//! ```
//! use mbu_circuit::CircuitBuilder;
//!
//! let mut b = CircuitBuilder::new();
//! let q = b.qreg("q", 3);
//! b.ccx(q[0], q[1], q[2]);
//! b.cx(q[0], q[1]);
//! b.ccx(q[0], q[1], q[2]);
//! let circuit = b.finish();
//! assert_eq!(circuit.counts().toffoli, 2);
//! assert_eq!(circuit.toffoli_depth(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angle;
mod builder;
mod circuit;
mod compile;
mod counts;
mod depth;
pub mod diagram;
mod error;
mod gate;
pub mod knobs;
mod op;
mod plan;
pub mod verify;

pub use angle::Angle;
pub use builder::{CircuitBuilder, OpBlock, Register};
pub use circuit::Circuit;
pub use compile::{
    CompiledCircuit, FusedUnitary, Instr, PassConfig, PassStats, Segment, MAX_FUSED_QUBITS,
    MAX_PERM_FUSED_QUBITS,
};
pub use counts::{ExpectedCounts, GateCounts};
pub use error::CircuitError;
pub use gate::{Basis, Gate};
pub use op::{ClbitId, Op, QubitId};
pub use plan::{
    plan_segment, PlanConfig, PlannedRepr, SegmentProfile, DEFAULT_AUTO_DENSE_QUBITS,
    DEFAULT_AUTO_PHASE_DIAG, DEFAULT_AUTO_SPARSITY,
};
pub use verify::{
    check_equivalence, check_equivalence_with, validate, validate_compiled, EquivOptions,
    Equivalence, Finding, ProgramView, VerifyError,
};
