//! Property-based tests for the circuit IR: angle algebra, adjoint
//! involution, count additivity, and depth laws on randomly generated
//! circuits.

use mbu_circuit::{Angle, Circuit, CircuitBuilder, Gate, Op, QubitId};
use proptest::prelude::*;

fn arb_angle() -> impl Strategy<Value = Angle> {
    (0u128..1024, 0u32..20).prop_map(|(num, denom)| Angle::from_fraction(num, denom))
}

/// A random unitary gate over `n` qubits (n ≥ 3): operands are drawn as a
/// shuffled qubit list, guaranteeing distinctness.
fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let qubits: Vec<u32> = (0..n).collect();
    (0usize..8, Just(qubits).prop_shuffle(), arb_angle()).prop_map(move |(kind, order, theta)| {
        let (qa, qb, qc) = (QubitId(order[0]), QubitId(order[1]), QubitId(order[2]));
        match kind {
            0 => Gate::X(qa),
            1 => Gate::Z(qa),
            2 => Gate::H(qa),
            3 => Gate::Phase(qa, theta),
            4 => Gate::Cx(qa, qb),
            5 => Gate::Cz(qa, qb),
            6 => Gate::Ccx(qa, qb, qc),
            _ => Gate::CPhase(qa, qb, theta),
        }
    })
}

fn arb_circuit(n: u32) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 0..40).prop_map(move |gates| {
        Circuit::from_ops(n as usize, 0, gates.into_iter().map(Op::Gate).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn angle_addition_is_commutative(a in arb_angle(), b in arb_angle()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn angle_addition_is_associative(
        a in arb_angle(),
        b in arb_angle(),
        c in arb_angle(),
    ) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn angle_negation_inverts(a in arb_angle()) {
        prop_assert_eq!(a + (-a), Angle::ZERO);
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn angle_radians_in_range(a in arb_angle()) {
        let r = a.radians();
        prop_assert!((0.0..2.0 * std::f64::consts::PI).contains(&r));
    }

    #[test]
    fn adjoint_is_an_involution(c in arb_circuit(6)) {
        let adj = c.adjoint().unwrap();
        prop_assert_eq!(adj.adjoint().unwrap(), c);
    }

    #[test]
    fn adjoint_preserves_gate_counts(c in arb_circuit(6)) {
        let counts = c.counts();
        let adj_counts = c.adjoint().unwrap().counts();
        prop_assert_eq!(counts.toffoli, adj_counts.toffoli);
        prop_assert_eq!(counts.cx, adj_counts.cx);
        prop_assert_eq!(counts.h, adj_counts.h);
        prop_assert_eq!(counts.phase, adj_counts.phase);
        prop_assert_eq!(counts.total_gates(), adj_counts.total_gates());
    }

    #[test]
    fn adjoint_preserves_depth(c in arb_circuit(6)) {
        prop_assert_eq!(c.depth(), c.adjoint().unwrap().depth());
    }

    #[test]
    fn counts_are_additive_under_concatenation(
        a in arb_circuit(6),
        b in arb_circuit(6),
    ) {
        let mut combined = Circuit::new(6, 0);
        for op in a.ops().iter().chain(b.ops()) {
            combined.push(op.clone());
        }
        let sum = a.counts() + b.counts();
        prop_assert_eq!(combined.counts(), sum);
    }

    #[test]
    fn depth_is_subadditive(a in arb_circuit(6), b in arb_circuit(6)) {
        let mut combined = Circuit::new(6, 0);
        for op in a.ops().iter().chain(b.ops()) {
            combined.push(op.clone());
        }
        prop_assert!(combined.depth() <= a.depth() + b.depth());
        prop_assert!(combined.depth() >= a.depth().max(b.depth()));
    }

    #[test]
    fn toffoli_depth_bounded_by_toffoli_count(c in arb_circuit(6)) {
        prop_assert!(c.toffoli_depth() <= c.counts().toffoli + c.counts().ccz);
        prop_assert!(c.toffoli_depth() <= c.depth());
    }

    #[test]
    fn expected_counts_bounded_by_worst_case(c in arb_circuit(6)) {
        // Without conditionals they are equal; adding a conditional can
        // only lower the expectation.
        let exact = c.counts();
        let expected = c.expected_counts();
        prop_assert!(expected.total_gates() <= exact.total_gates() as f64 + 1e-9);
    }

    #[test]
    fn random_circuits_validate(c in arb_circuit(6)) {
        prop_assert!(c.validate().is_ok());
    }

    #[test]
    fn diagram_renders_every_row(c in arb_circuit(6)) {
        let art = mbu_circuit::diagram::render(&c, &[] as &[&str]);
        prop_assert_eq!(art.lines().count(), 6);
    }
}

#[test]
fn builder_ancilla_discipline_roundtrip() {
    // Allocate/release cycles never grow the pool beyond the peak.
    let mut b = CircuitBuilder::new();
    let _data = b.qreg("d", 4);
    for _ in 0..10 {
        let a1 = b.ancilla();
        let a2 = b.ancilla();
        b.release_ancilla(a1);
        b.release_ancilla(a2);
    }
    assert_eq!(b.ancillas_created(), 2);
    assert_eq!(b.ancilla_peak(), 2);
    assert_eq!(b.num_qubits(), 6);
}
