//! Source-level guard for the shift-literal overflow class, over the
//! simulator crate.
//!
//! The sparse backend manipulates multi-word basis keys with expressions
//! like `1u64 << (q % 64)` and saturating occupancy counters like
//! `1u64 << x_count`; a bare `(1 << n)` in those spots type-infers to
//! `i32` the moment the context stops pinning a wide type and silently
//! overflows past bit 31 — exactly the class the `mbu-arith` guard
//! exists for. This is the same scan, pointed at `mbu-sim`'s sources
//! (run as its own CI step): a bare, suffix-less integer literal —
//! decimal, hex or binary — as the left operand of a shift fails the
//! build. Write `1u64 << n` (or the context's explicit type), never
//! `1 << n`.

use std::fs;
use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The token ending at byte `end` (exclusive), read backwards over
/// identifier characters.
fn token_before(line: &str, end: usize) -> &str {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    &line[start..end]
}

/// Whether `token` is an integer literal with no explicit type suffix —
/// in any radix (`1`, `0x1`, `0b1`, `0o7`), so the guard cannot be dodged
/// with a hex or binary spelling.
fn is_bare_int_literal(token: &str) -> bool {
    if !token.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
        return false;
    }
    const SUFFIXES: [&str; 12] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    !SUFFIXES.iter().any(|s| token.ends_with(s))
}

#[test]
fn shift_literals_are_explicitly_typed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    rust_sources(&root, &mut files);
    assert!(!files.is_empty(), "no sources found under {root:?}");

    let mut offenders = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).expect("readable source file");
        for (i, line) in text.lines().enumerate() {
            let mut from = 0;
            while let Some(pos) = line[from..].find(" << ") {
                let at = from + pos;
                let token = token_before(line, at);
                if is_bare_int_literal(token) {
                    offenders.push(format!(
                        "{}:{}: `{token} << …` needs an explicit type suffix",
                        file.display(),
                        i + 1
                    ));
                }
                from = at + 4;
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare shift literals found (use e.g. `1u64 << n`):\n{}",
        offenders.join("\n")
    );
}
