//! Differential tests for the stride-based state-vector kernels.
//!
//! Every kernel is checked against a dense matrix–vector reference built
//! from first principles (the gate's column action on each basis state,
//! written out from its definition — no simulator code reused), on 1–4
//! qubit states, for **every** valid operand tuple. Exhausting the operand
//! tuples covers the cases where stride iteration goes wrong first:
//! control on the highest bit, target below the control, non-adjacent
//! operands, and every permutation of a Toffoli's qubits.

use mbu_circuit::{Angle, Gate, QubitId};
use mbu_sim::{Complex, KernelMode, StateVector};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn q(i: usize) -> QubitId {
    QubitId(u32::try_from(i).unwrap())
}

/// A uniform f64 in [-1, 1), from the shim RNG's raw bits.
fn unit(rng: &mut StdRng) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (2.0 / (1u64 << 53) as f64) - 1.0
}

/// A deterministic dense state over `n` qubits (not normalised; linearity
/// of the kernels makes normalisation irrelevant to the comparison).
fn random_state(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..1usize << n)
        .map(|_| Complex::new(unit(&mut rng), unit(&mut rng)))
        .collect()
}

/// The column action of `gate` on basis state `|j⟩`, from the gate's
/// definition: a list of `(i, w)` meaning the column holds `w` at row `i`.
fn column(gate: &Gate, j: usize) -> Vec<(usize, Complex)> {
    let bit = |index: usize, qb: QubitId| index >> qb.index() & 1 == 1;
    let m = |qb: QubitId| 1usize << qb.index();
    let cis = |a: &Angle| Complex::cis(a.radians());
    const SQRT_HALF: f64 = std::f64::consts::FRAC_1_SQRT_2;
    match gate {
        Gate::X(t) => vec![(j ^ m(*t), Complex::ONE)],
        Gate::Z(t) => vec![(
            j,
            if bit(j, *t) {
                -Complex::ONE
            } else {
                Complex::ONE
            },
        )],
        Gate::H(t) => {
            let sign = if bit(j, *t) { -SQRT_HALF } else { SQRT_HALF };
            vec![
                (j & !m(*t), Complex::new(SQRT_HALF, 0.0)),
                (j | m(*t), Complex::new(sign, 0.0)),
            ]
        }
        Gate::Phase(t, a) => vec![(j, if bit(j, *t) { cis(a) } else { Complex::ONE })],
        Gate::Cx(c, t) => vec![(if bit(j, *c) { j ^ m(*t) } else { j }, Complex::ONE)],
        Gate::Cz(a, b) => vec![(
            j,
            if bit(j, *a) && bit(j, *b) {
                -Complex::ONE
            } else {
                Complex::ONE
            },
        )],
        Gate::Ccx(c1, c2, t) => vec![(
            if bit(j, *c1) && bit(j, *c2) {
                j ^ m(*t)
            } else {
                j
            },
            Complex::ONE,
        )],
        Gate::Ccz(a, b, c) => vec![(
            j,
            if bit(j, *a) && bit(j, *b) && bit(j, *c) {
                -Complex::ONE
            } else {
                Complex::ONE
            },
        )],
        Gate::CPhase(c, t, a) => vec![(
            j,
            if bit(j, *c) && bit(j, *t) {
                cis(a)
            } else {
                Complex::ONE
            },
        )],
        Gate::CcPhase(c1, c2, t, a) => vec![(
            j,
            if bit(j, *c1) && bit(j, *c2) && bit(j, *t) {
                cis(a)
            } else {
                Complex::ONE
            },
        )],
        Gate::Swap(a, b) => {
            let swapped = if bit(j, *a) != bit(j, *b) {
                j ^ m(*a) ^ m(*b)
            } else {
                j
            };
            vec![(swapped, Complex::ONE)]
        }
    }
}

/// Dense matrix–vector multiply of the gate's full `2^n × 2^n` unitary.
fn dense_apply(gate: &Gate, amps: &[Complex]) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; amps.len()];
    for (j, a) in amps.iter().enumerate() {
        for (i, w) in column(gate, j) {
            out[i] += w * *a;
        }
    }
    out
}

/// Applies `gate` through the `StateVector` in the given kernel mode.
fn sv_apply(gate: &Gate, amps: &[Complex], mode: KernelMode) -> Vec<Complex> {
    let mut sv = StateVector::from_amplitudes(amps.to_vec())
        .unwrap()
        .with_kernel_mode(mode);
    sv.apply_gate_pub(gate).unwrap();
    sv.amplitudes().to_vec()
}

fn assert_matches_reference(gate: &Gate, n: usize) {
    let amps = random_state(n, 0xD1FF ^ (n as u64));
    let expect = dense_apply(gate, &amps);
    for mode in [KernelMode::Stride, KernelMode::Scan] {
        let got = sv_apply(gate, &amps, mode);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (*g - *e).norm() < 1e-12,
                "{gate} on {n} qubits ({mode:?}): amp {i} = {g}, want {e}"
            );
        }
    }
}

/// Every ordered pair of distinct qubit indices below `n`.
fn pairs(n: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                v.push((a, b));
            }
        }
    }
    v
}

/// Every ordered triple of distinct qubit indices below `n`.
fn triples(n: usize) -> Vec<(usize, usize, usize)> {
    let mut v = Vec::new();
    for a in 0..n {
        for b in 0..n {
            for c in 0..n {
                if a != b && a != c && b != c {
                    v.push((a, b, c));
                }
            }
        }
    }
    v
}

#[test]
fn single_qubit_kernels_match_dense_reference() {
    let theta = Angle::turn_over_power_of_two(3); // T
    for n in 1..=4usize {
        for t in 0..n {
            for gate in [
                Gate::X(q(t)),
                Gate::Z(q(t)),
                Gate::H(q(t)),
                Gate::Phase(q(t), theta),
                Gate::Phase(q(t), -theta),
            ] {
                assert_matches_reference(&gate, n);
            }
        }
    }
}

#[test]
fn two_qubit_kernels_match_dense_reference() {
    // Every ordered pair: includes control-on-high-bit (c = n−1, t = 0)
    // and target-below-control layouts.
    let theta = Angle::turn_over_power_of_two(2); // S
    for n in 2..=4usize {
        for (a, b) in pairs(n) {
            for gate in [
                Gate::Cx(q(a), q(b)),
                Gate::Cz(q(a), q(b)),
                Gate::CPhase(q(a), q(b), theta),
                Gate::Swap(q(a), q(b)),
            ] {
                assert_matches_reference(&gate, n);
            }
        }
    }
}

#[test]
fn three_qubit_kernels_match_dense_reference() {
    // Every ordered triple: includes non-adjacent targets (e.g. controls
    // on bits 0 and 3 of a 4-qubit state, target on bit 1).
    let theta = Angle::turn_over_power_of_two(4);
    for n in 3..=4usize {
        for (a, b, c) in triples(n) {
            for gate in [
                Gate::Ccx(q(a), q(b), q(c)),
                Gate::Ccz(q(a), q(b), q(c)),
                Gate::CcPhase(q(a), q(b), q(c), theta),
            ] {
                assert_matches_reference(&gate, n);
            }
        }
    }
}

#[test]
fn kernels_preserve_norm_on_long_random_products() {
    // 200 random gates on 4 qubits: the stride path must stay unitary and
    // keep agreeing with the dense reference applied step by step.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 4usize;
    let mut amps = random_state(n, 42);
    // Normalise so the norm check below is meaningful.
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a = a.scale(1.0 / norm);
    }
    let mut sv = StateVector::from_amplitudes(amps.clone()).unwrap();
    for step in 0..200 {
        let t = triples(n);
        let (a, b, c) = t[(rng.next_u64() as usize) % t.len()];
        let theta = Angle::turn_over_power_of_two(1 + (step % 5) as u32);
        let gate = match rng.next_u64() % 8 {
            0 => Gate::X(q(a)),
            1 => Gate::H(q(a)),
            2 => Gate::Phase(q(a), theta),
            3 => Gate::Cx(q(a), q(b)),
            4 => Gate::Cz(q(a), q(b)),
            5 => Gate::Ccx(q(a), q(b), q(c)),
            6 => Gate::CcPhase(q(a), q(b), q(c), theta),
            _ => Gate::Swap(q(b), q(c)),
        };
        amps = dense_apply(&gate, &amps);
        sv.apply_gate_pub(&gate).unwrap();
        for (i, (g, e)) in sv.amplitudes().iter().zip(&amps).enumerate() {
            assert!(
                (*g - *e).norm() < 1e-9,
                "step {step} {gate}: amp {i} diverged"
            );
        }
    }
    assert!((sv.norm() - 1.0).abs() < 1e-9);
}
