//! Property-based tests for the simulation backends: unitarity of the
//! state vector, gate/adjoint round trips on both backends, and tracker
//! phase algebra.

use mbu_circuit::{Angle, Circuit, Gate, Op, QubitId};
use mbu_sim::{BasisTracker, Complex, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let qubits: Vec<u32> = (0..n).collect();
    (0usize..9, Just(qubits).prop_shuffle(), 0u128..64, 1u32..8).prop_map(
        move |(kind, order, num, denom)| {
            let (a, b, c) = (QubitId(order[0]), QubitId(order[1]), QubitId(order[2]));
            let theta = Angle::from_fraction(num, denom);
            match kind {
                0 => Gate::X(a),
                1 => Gate::Z(a),
                2 => Gate::H(a),
                3 => Gate::Phase(a, theta),
                4 => Gate::Cx(a, b),
                5 => Gate::Cz(a, b),
                6 => Gate::Ccx(a, b, c),
                7 => Gate::Swap(a, b),
                _ => Gate::CPhase(a, b, theta),
            }
        },
    )
}

fn arb_unitary_circuit(n: u32) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..30).prop_map(move |gates| {
        Circuit::from_ops(n as usize, 0, gates.into_iter().map(Op::Gate).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn statevector_preserves_norm(c in arb_unitary_circuit(5), input in 0u64..32) {
        let mut sv = StateVector::basis(5, input).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        sv.run(&c, &mut rng).unwrap();
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn statevector_adjoint_round_trip(c in arb_unitary_circuit(5), input in 0u64..32) {
        // U† U |x⟩ = |x⟩ with amplitude exactly 1.
        let mut sv = StateVector::basis(5, input).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        sv.run(&c, &mut rng).unwrap();
        sv.run(&c.adjoint().unwrap(), &mut rng).unwrap();
        let (idx, amp) = sv.as_basis(1e-9).expect("back to a basis state");
        prop_assert_eq!(idx, input);
        prop_assert!((amp - Complex::ONE).norm() < 1e-7);
    }

    #[test]
    fn statevector_inner_products_are_invariant(
        c in arb_unitary_circuit(4),
        i in 0u64..16,
        j in 0u64..16,
    ) {
        // ⟨Ui|Uj⟩ = ⟨i|j⟩ — unitaries preserve orthogonality.
        let mut a = StateVector::basis(4, i).unwrap();
        let mut b = StateVector::basis(4, j).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        a.run(&c, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        b.run(&c, &mut rng).unwrap();
        let overlap = a.inner_product(&b).norm();
        let expected = f64::from(u8::from(i == j));
        prop_assert!((overlap - expected).abs() < 1e-9);
    }

    #[test]
    fn tracker_permutation_matches_statevector(
        gates in proptest::collection::vec(
            (0usize..4, Just((0u32..6).collect::<Vec<u32>>()).prop_shuffle()),
            1..40,
        ),
        input in 0u64..64,
    ) {
        // Pure permutation circuits (X/CX/CCX/SWAP): both backends must
        // produce identical basis outputs.
        let ops: Vec<Op> = gates
            .into_iter()
            .map(|(kind, order)| {
                let (a, b, c) = (QubitId(order[0]), QubitId(order[1]), QubitId(order[2]));
                Op::Gate(match kind {
                    0 => Gate::X(a),
                    1 => Gate::Cx(a, b),
                    2 => Gate::Ccx(a, b, c),
                    _ => Gate::Swap(a, b),
                })
            })
            .collect();
        let circuit = Circuit::from_ops(6, 0, ops);

        let mut sv = StateVector::basis(6, input).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        sv.run(&circuit, &mut rng).unwrap();
        let (sv_out, amp) = sv.as_basis(1e-12).unwrap();
        prop_assert!((amp - Complex::ONE).norm() < 1e-9);

        let mut tracker = BasisTracker::zeros(6);
        let all: Vec<QubitId> = (0..6).map(QubitId).collect();
        tracker.set_value(&all, u128::from(input)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        tracker.run(&circuit, &mut rng).unwrap();
        prop_assert_eq!(tracker.value(&all).unwrap(), u128::from(sv_out));
        prop_assert!(tracker.global_phase().is_zero());
    }

    #[test]
    fn tracker_diagonal_phase_matches_statevector(
        zs in proptest::collection::vec((0u32..4, 0u32..4, 0u128..16, 1u32..5), 1..20),
        input in 0u64..16,
    ) {
        // Diagonal circuits on basis states: the tracker's global phase
        // must equal the state vector's amplitude argument exactly.
        let mut ops = Vec::new();
        for (a, b, num, denom) in zs {
            // Offset 1..=3 keeps the operands distinct (the simulators
            // reject duplicate-operand gates, matching `Circuit::validate`).
            let (qa, qb) = (QubitId(a), QubitId((a + 1 + b % 3) % 4));
            ops.push(Op::Gate(Gate::Phase(qa, Angle::from_fraction(num, denom))));
            ops.push(Op::Gate(Gate::CPhase(qa, qb, Angle::from_fraction(num, denom))));
            ops.push(Op::Gate(Gate::Cz(qa, qb)));
        }
        let circuit = Circuit::from_ops(4, 0, ops);

        let mut sv = StateVector::basis(4, input).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        sv.run(&circuit, &mut rng).unwrap();
        let (idx, amp) = sv.as_basis(1e-12).unwrap();
        prop_assert_eq!(idx, input, "diagonal circuits preserve the value");

        let mut tracker = BasisTracker::zeros(4);
        let all: Vec<QubitId> = (0..4).map(QubitId).collect();
        tracker.set_value(&all, u128::from(input)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        tracker.run(&circuit, &mut rng).unwrap();
        let expected = Complex::cis(tracker.global_phase().radians());
        prop_assert!(
            (amp - expected).norm() < 1e-7,
            "sv amp {} vs tracker phase {}",
            amp,
            tracker.global_phase()
        );
    }

    #[test]
    fn measurement_statistics_match_amplitudes(
        target_prob_num in 0u32..=8,
    ) {
        // Rotate |0⟩ by composing H·R(θ)·H and verify sampled frequencies
        // against the computed probability.
        let theta = Angle::from_fraction(u128::from(target_prob_num), 4);
        let circuit = Circuit::from_ops(
            1,
            1,
            vec![
                Op::Gate(Gate::H(QubitId(0))),
                Op::Gate(Gate::Phase(QubitId(0), theta)),
                Op::Gate(Gate::H(QubitId(0))),
                Op::Measure {
                    qubit: QubitId(0),
                    basis: mbu_circuit::Basis::Z,
                    clbit: mbu_circuit::ClbitId(0),
                },
            ],
        );
        // Exact probability of outcome 1.
        let mut probe = StateVector::zeros(1).unwrap();
        for op in circuit.ops().iter().take(3) {
            if let Op::Gate(g) = op {
                probe.apply_gate_pub(g).unwrap();
            }
        }
        let p1 = probe.probability_of(1);
        let trials = 600u64;
        let mut ones = 0u64;
        for seed in 0..trials {
            let mut sv = StateVector::zeros(1).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let ex = sv.run(&circuit, &mut rng).unwrap();
            ones += u64::from(ex.outcome(0).unwrap());
        }
        let freq = ones as f64 / trials as f64;
        prop_assert!((freq - p1).abs() < 0.09, "freq {freq} vs p1 {p1}");
    }
}
