//! Exhaustive concurrency model of the `AmpPool` condvar protocol.
//!
//! `crates/sim/src/pool.rs` implements a persistent worker pool with a
//! hand-rolled epoch/acknowledge handshake: the caller publishes a job
//! under the mutex (bump `epoch`, set `pending`, `notify_all` the work
//! condvar), runs chunk 0 itself, then blocks on the done condvar until
//! `pending == 0`; each worker grabs one job per epoch, runs its fixed
//! chunk, and decrements `pending`. The soundness of the pool's `unsafe`
//! lifetime erasure hangs on one liveness-and-ordering property: **the
//! caller's `run` must not return while any worker can still dereference
//! the task pointer of its job** — and on the protocol never deadlocking.
//!
//! Plain unit tests can only sample interleavings. This harness instead
//! model-checks the protocol the way a `loom`-style tool would (the
//! workspace has no such dependency, so the model is self-contained):
//! every lock-protected region of pool.rs is transcribed as one atomic
//! transition of a small state machine, condition variables are modelled
//! with explicit waiter sets (so *lost wakeups* are representable: a
//! notify with nobody in the waitset is a no-op, exactly like the real
//! thing), and a DFS enumerates **every** reachable interleaving,
//! checking in each:
//!
//! * no deadlock: whenever no thread can step, every caller has finished
//!   (parked workers awaiting a next epoch are fine);
//! * exactly-once chunks: each published job's chunks 0..n each ran
//!   exactly once, attributed to the correct epoch;
//! * borrow safety: when a caller's barrier releases, no worker is still
//!   inside the chunk closure of that caller's epoch (`pending` is
//!   decremented only *after* the closure returns, so this is the
//!   model-level statement of "the erased borrow is dead before `run`
//!   returns");
//! * counter sanity: `pending` never goes negative (the real `usize`
//!   would underflow-panic).
//!
//! The model covers the single-owner protocol (one and two sequential
//! jobs, the latter exercising the epoch filter that stops a worker from
//! running one job twice) — and then deliberately breaks the contract by
//! running **two concurrent callers on one pool**, the exact misuse
//! `StateVector::child_with_amps` documents as the reason a forked child
//! never inherits its parent's pool: the model proves the protocol has
//! an interleaving that deadlocks or corrupts the handshake under a
//! second caller, so the "fresh pool per fork" rule is load-bearing, not
//! superstition.
//!
//! Not modelled: worker panics (`catch_unwind` makes them equivalent to
//! a normal chunk completion with a flag set) and pool shutdown (the
//! `Drop` path takes the lock after every `run` barrier has drained, so
//! it cannot interleave with a job).

use std::collections::HashSet;

/// Epoch indices are tiny (at most two jobs per scenario).
const MAX_EPOCHS: usize = 4;
/// Chunk indices: chunk 0 is the caller's, workers own 1..THREADS.
const MAX_CHUNKS: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Worker {
    /// Inside the lock, about to evaluate the wait predicate
    /// (`epoch != seen && job.is_some()`).
    Check { seen: u8 },
    /// Parked in the work condvar's waitset; only a notify can move it
    /// back to `Check`.
    Wait { seen: u8 },
    /// Outside the lock, executing its chunk of the job grabbed at
    /// `epoch` — the window in which it holds the erased task pointer.
    Run { seen: u8, chunks: u8 },
    /// About to re-enter the lock and decrement `pending`.
    Ack { seen: u8 },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Caller {
    /// About to publish job `job` of its schedule.
    Publish { job: u8 },
    /// Outside the lock, executing chunk 0 of the epoch it published.
    RunChunk0 { job: u8, epoch: u8 },
    /// Inside the lock, about to evaluate the barrier predicate
    /// (`pending == 0`).
    CheckDone { job: u8, epoch: u8 },
    /// Parked in the done condvar's waitset.
    WaitDone { job: u8, epoch: u8 },
    /// Every job of its schedule has completed.
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Model {
    epoch: u8,
    /// `Some(chunks)` while a job is published (pool.rs `State::job`).
    job: Option<u8>,
    /// Signed so the model can *observe* the underflow the real `usize`
    /// would panic on.
    pending: i8,
    workers: Vec<Worker>,
    callers: Vec<Caller>,
    /// `runs[epoch][chunk]`: how many times that chunk of that epoch ran.
    runs: [[u8; MAX_CHUNKS]; MAX_EPOCHS],
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Violation {
    Deadlock,
    PendingUnderflow,
    ChunkRanTwice,
    JobIncomplete,
    BorrowOutlivedBarrier,
}

/// Per-caller job schedule: each entry is a chunk count to publish.
struct Scenario {
    workers: usize,
    schedules: Vec<Vec<u8>>,
}

impl Model {
    fn initial(s: &Scenario) -> Self {
        Self {
            epoch: 0,
            job: None,
            pending: 0,
            workers: vec![Worker::Check { seen: 0 }; s.workers],
            callers: s
                .schedules
                .iter()
                .map(|_| Caller::Publish { job: 0 })
                .collect(),
            runs: [[0; MAX_CHUNKS]; MAX_EPOCHS],
        }
    }

    fn record_run(&mut self, epoch: u8, chunk: u8) -> Result<(), Violation> {
        let slot = &mut self.runs[epoch as usize - 1][chunk as usize];
        *slot += 1;
        if *slot > 1 {
            return Err(Violation::ChunkRanTwice);
        }
        Ok(())
    }

    /// Whether any thread can take a step (a parked thread cannot).
    fn runnable(&self) -> Vec<usize> {
        let mut ids = Vec::new();
        for (w, state) in self.workers.iter().enumerate() {
            if !matches!(state, Worker::Wait { .. }) {
                ids.push(w);
            }
        }
        for (c, state) in self.callers.iter().enumerate() {
            if !matches!(state, Caller::WaitDone { .. } | Caller::Done) {
                ids.push(self.workers.len() + c);
            }
        }
        ids
    }

    /// `notify_all` on the work condvar: every parked worker re-checks.
    fn notify_all_work(&mut self) {
        for w in &mut self.workers {
            if let Worker::Wait { seen } = *w {
                *w = Worker::Check { seen };
            }
        }
    }

    /// `notify_one` on the done condvar wakes a *single* waiter. The
    /// model branches over which one, returning every successor state.
    fn notify_one_done(&self) -> Vec<Model> {
        let waiters: Vec<usize> = self
            .callers
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Caller::WaitDone { .. }))
            .map(|(i, _)| i)
            .collect();
        if waiters.is_empty() {
            // Lost notification — exactly the real condvar's behaviour.
            return vec![self.clone()];
        }
        waiters
            .into_iter()
            .map(|i| {
                let mut next = self.clone();
                if let Caller::WaitDone { job, epoch } = next.callers[i] {
                    next.callers[i] = Caller::CheckDone { job, epoch };
                }
                next
            })
            .collect()
    }

    /// Applies one atomic transition of thread `id`, returning every
    /// successor state (several when a notify choice branches).
    fn step(&self, id: usize, scenario: &Scenario) -> Result<Vec<Model>, Violation> {
        let mut next = self.clone();
        if id < self.workers.len() {
            let w = id;
            match next.workers[w] {
                Worker::Check { seen } => {
                    if next.epoch != seen {
                        if let Some(chunks) = next.job {
                            next.workers[w] = Worker::Run {
                                seen: next.epoch,
                                chunks,
                            };
                            return Ok(vec![next]);
                        }
                    }
                    next.workers[w] = Worker::Wait { seen };
                    Ok(vec![next])
                }
                Worker::Wait { .. } => unreachable!("parked workers are not runnable"),
                Worker::Run { seen, chunks } => {
                    // Worker `w` owns chunk `w + 1` (chunk 0 is the
                    // caller's); indices past the job's width skip.
                    let chunk = (w + 1) as u8;
                    if chunk < chunks {
                        next.record_run(seen, chunk)?;
                    }
                    next.workers[w] = Worker::Ack { seen };
                    Ok(vec![next])
                }
                Worker::Ack { seen } => {
                    next.pending -= 1;
                    if next.pending < 0 {
                        return Err(Violation::PendingUnderflow);
                    }
                    next.workers[w] = Worker::Check { seen };
                    if next.pending == 0 {
                        return Ok(next.notify_one_done());
                    }
                    Ok(vec![next])
                }
            }
        } else {
            let c = id - self.workers.len();
            match next.callers[c] {
                Caller::Publish { job } => {
                    let chunks = scenario.schedules[c][job as usize];
                    next.job = Some(chunks);
                    next.epoch += 1;
                    next.pending = next.workers.len() as i8;
                    let epoch = next.epoch;
                    next.notify_all_work();
                    next.callers[c] = Caller::RunChunk0 { job, epoch };
                    Ok(vec![next])
                }
                Caller::RunChunk0 { job, epoch } => {
                    next.record_run(epoch, 0)?;
                    next.callers[c] = Caller::CheckDone { job, epoch };
                    Ok(vec![next])
                }
                Caller::CheckDone { job, epoch } => {
                    if next.pending > 0 {
                        next.callers[c] = Caller::WaitDone { job, epoch };
                        return Ok(vec![next]);
                    }
                    // Barrier released: `run` is about to return and the
                    // erased borrow dies. No worker may still be inside
                    // this epoch's closure.
                    let dangling = next
                        .workers
                        .iter()
                        .any(|w| matches!(w, Worker::Run { seen, .. } if *seen == epoch));
                    if dangling {
                        return Err(Violation::BorrowOutlivedBarrier);
                    }
                    next.job = None;
                    let published = scenario.schedules[c][job as usize];
                    for chunk in 0..published {
                        if next.runs[epoch as usize - 1][chunk as usize] != 1 {
                            return Err(Violation::JobIncomplete);
                        }
                    }
                    let nj = job + 1;
                    next.callers[c] = if (nj as usize) < scenario.schedules[c].len() {
                        Caller::Publish { job: nj }
                    } else {
                        Caller::Done
                    };
                    Ok(vec![next])
                }
                Caller::WaitDone { .. } => unreachable!("parked callers are not runnable"),
                Caller::Done => unreachable!("finished callers are not runnable"),
            }
        }
    }
}

/// DFS over every interleaving. Returns the set of violations reachable
/// from the initial state (empty = the protocol is correct under this
/// scenario for every schedule of steps).
fn explore(scenario: &Scenario) -> Vec<Violation> {
    let mut seen: HashSet<Model> = HashSet::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut stack = vec![Model::initial(scenario)];
    let note = |v: Violation, violations: &mut Vec<Violation>| {
        if !violations.contains(&v) {
            violations.push(v);
        }
    };
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        let runnable = state.runnable();
        if runnable.is_empty() {
            // Quiescent: legal only once every caller has finished
            // (workers parked for a next epoch that never comes are the
            // expected idle configuration).
            if !state.callers.iter().all(|c| matches!(c, Caller::Done)) {
                note(Violation::Deadlock, &mut violations);
            }
            continue;
        }
        for id in runnable {
            match state.step(id, scenario) {
                Ok(successors) => stack.extend(successors),
                Err(v) => note(v, &mut violations),
            }
        }
    }
    violations
}

#[test]
fn single_job_protocol_is_safe_under_every_interleaving() {
    for workers in 1..=3 {
        for chunks in 1..=(workers + 1) {
            let scenario = Scenario {
                workers,
                schedules: vec![vec![chunks as u8]],
            };
            assert_eq!(
                explore(&scenario),
                Vec::new(),
                "{workers} workers, {chunks} chunks"
            );
        }
    }
}

#[test]
fn sequential_jobs_never_rerun_or_deadlock() {
    // Two back-to-back jobs from one owner: the epoch filter must stop a
    // worker from running job 1 twice, and a worker that parks *after*
    // job 2 is published must still be woken (no lost-wakeup deadlock).
    for workers in 1..=2 {
        let full = (workers + 1) as u8;
        let scenario = Scenario {
            workers,
            schedules: vec![vec![full, full]],
        };
        assert_eq!(explore(&scenario), Vec::new(), "{workers} workers");
    }
}

#[test]
fn narrow_then_full_job_skips_and_completes() {
    // A 2-chunk job on a 3-lane pool leaves worker 2 acknowledging
    // without running; the next full-width job must still reach it.
    let scenario = Scenario {
        workers: 2,
        schedules: vec![vec![2, 3]],
    };
    assert_eq!(explore(&scenario), Vec::new());
}

#[test]
fn two_concurrent_callers_break_the_protocol() {
    // The misuse `StateVector::child_with_amps` exists to prevent: a
    // forked child sharing its parent's pool means two `run` calls racing
    // one epoch/pending handshake. The model proves the contract is
    // load-bearing: some interleaving deadlocks a caller or corrupts the
    // pending counter (the real `usize` would underflow-panic).
    let scenario = Scenario {
        workers: 2,
        schedules: vec![vec![3], vec![3]],
    };
    let violations = explore(&scenario);
    assert!(
        !violations.is_empty(),
        "a shared pool across two concurrent callers must be unsound"
    );
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::Deadlock | Violation::PendingUnderflow)),
        "expected a deadlock or pending underflow, found {violations:?}"
    );
}
