//! The parallel shot-ensemble engine.
//!
//! The paper's "in expectation" MBU costs (Table 1) are *averages over
//! measurement outcomes*; this repository verifies them empirically by
//! Monte-Carlo averaging seeded simulator runs. That workload is
//! embarrassingly parallel, and [`ShotRunner`] is its engine: a seeded,
//! deterministic, multi-threaded batch executor that runs the same circuit
//! on freshly prepared [`Simulator`] states — one per shot — and folds
//! every [`Executed`] record into an [`Ensemble`] of aggregate statistics.
//!
//! Determinism is absolute, not statistical:
//!
//! * each shot's RNG is seeded purely from the master seed and the shot
//!   index ([`ShotRunner::seed_for_shot`]), so outcome streams never depend
//!   on scheduling;
//! * aggregation is exact integer arithmetic (sums and sums of squares of
//!   `u64` gate counts in `u128`), so the fold is associative and
//!   commutative and the final [`Ensemble`] is **bit-identical** for any
//!   thread count, including fully serial execution.
//!
//! The runner owns **one thread budget** covering both parallelism axes:
//! shot-level workers and, inside each shot, the state vector's
//! chunk-parallel amplitude lanes. [`ShotRunner::schedule`] splits the
//! budget so the product never oversubscribes the machine — many shots run
//! one-per-core with serial kernels, while a single deep shot hands the
//! whole budget to the amplitude kernels (whose chunking is itself
//! bit-deterministic), so aggregates stay identical at every
//! `(MBU_SHOT_THREADS, MBU_AMP_THREADS)` combination.

use std::collections::BTreeMap;
use std::thread;

use mbu_circuit::{Circuit, CompiledCircuit, GateCounts, PassConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::exec::Executed;
use crate::simulator::Simulator;

/// Number of tallied operation families (the fields of [`GateCounts`]).
pub(crate) const NFIELDS: usize = 14;

/// What one worker chunk produces: its partial fold and its probe
/// observations, or the lowest failing shot in the chunk.
type ChunkResult<O> = Result<(Accumulator, Vec<O>), (u64, SimError)>;

/// The default master seed shared by every ensemble engine, so the
/// branch-tree sampler reproduces the [`ShotRunner`]'s aggregates out of
/// the box ("MBUSHOTS").
pub(crate) const DEFAULT_MASTER_SEED: u64 = 0x4d42_5553_484f_5453;

/// Resolves the default worker count from an (injected) `MBU_SHOT_THREADS`
/// value: a positive integer pins the pool, anything else — including `0`,
/// which would deadlock a pool, and unparsable garbage — warns once (via
/// the shared [`mbu_circuit::knobs`] resolver) and falls back to the CPU
/// count.
///
/// Taking the value as a parameter (rather than reading the environment
/// here) keeps the selection policy testable without mutating
/// process-global state under a parallel test harness.
pub(crate) fn resolve_threads(env_value: Option<&str>) -> usize {
    let cpu = thread::available_parallelism().map_or(1, |n| n.get());
    mbu_circuit::knobs::positive_count("MBU_SHOT_THREADS", env_value, cpu, "the CPU count")
        .unwrap_or(cpu)
}

/// The deterministic per-shot seed: SplitMix64 over `(master_seed, shot)`,
/// so nearby shots get decorrelated streams. Shared by the [`ShotRunner`]
/// and the branch-tree sampler — equal master seeds must replay equal
/// per-shot RNG streams in both engines.
pub(crate) fn shot_seed(master_seed: u64, shot: u64) -> u64 {
    let mut z = master_seed.wrapping_add(shot.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits a thread budget between work items and per-item amplitude lanes
/// (see [`ShotRunner::schedule`]): item workers first, leftover lanes to
/// per-item amplitude parallelism, with an optional explicit lane pin.
/// Returns `(workers, amp_lanes)` with `workers × amp_lanes ≤ budget`.
/// Shared by the shot engine (items = shots) and the branch-tree engine
/// (items = active tree leaves).
pub(crate) fn split_budget(budget: usize, items: u64, amp_pin: Option<usize>) -> (usize, usize) {
    let budget = budget.max(1);
    let item_cap = usize::try_from(items).unwrap_or(usize::MAX).max(1);
    match amp_pin {
        Some(lanes) => {
            let lanes = lanes.clamp(1, budget);
            ((budget / lanes).max(1).min(item_cap), lanes)
        }
        None => {
            let workers = budget.min(item_cap);
            (workers, (budget / workers).max(1))
        }
    }
}

/// `GateCounts` flattened into a fixed field order.
pub(crate) fn count_fields(c: &GateCounts) -> [u64; NFIELDS] {
    [
        c.x,
        c.z,
        c.h,
        c.phase,
        c.cx,
        c.cz,
        c.toffoli,
        c.ccz,
        c.cphase,
        c.ccphase,
        c.swap,
        c.measure_z,
        c.measure_x,
        c.reset,
    ]
}

/// A seeded, deterministic, multi-threaded ensemble executor.
///
/// # Examples
///
/// Measure the fair-coin statistics of an X-basis measurement (the MBU
/// flag of Lemma 4.1) over a thousand shots:
///
/// ```
/// use mbu_circuit::{Basis, CircuitBuilder};
/// use mbu_sim::{BasisTracker, ShotRunner, Simulator};
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 1);
/// let _flag = b.measure(q[0], Basis::X);
/// let circuit = b.finish();
///
/// let ensemble = ShotRunner::new(1000)
///     .run(&circuit, || Box::new(BasisTracker::zeros(1)))
///     .unwrap();
/// let freq = ensemble.outcome_frequency(0).unwrap();
/// assert!((freq - 0.5).abs() < 0.05, "fair coin, got {freq}");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ShotRunner {
    shots: u64,
    master_seed: u64,
    /// The total thread budget, split between shot workers and per-shot
    /// amplitude lanes (see [`ShotRunner::schedule`]).
    threads: usize,
    /// Pinned per-shot amplitude lanes; `None` lets the scheduler divide
    /// the budget automatically.
    amp_threads: Option<usize>,
    passes: Option<PassConfig>,
}

impl ShotRunner {
    /// An ensemble of `shots` runs, with the default master seed and one
    /// thread per available CPU.
    ///
    /// The worker count can be pinned from the environment: if
    /// `MBU_SHOT_THREADS` is set to a positive integer, it replaces the
    /// CPU-count default (still overridable with
    /// [`with_threads`](Self::with_threads)). CI uses this to run the whole
    /// test suite at 1, 2 and 8 workers, exercising the
    /// bit-identical-parallelism guarantee. A value of `0` or anything
    /// unparsable is rejected with a one-time warning and falls back to
    /// the CPU count — it no longer silently masquerades as "unset".
    #[must_use]
    pub fn new(shots: u64) -> Self {
        let threads = resolve_threads(std::env::var("MBU_SHOT_THREADS").ok().as_deref());
        // One resolution policy with the state vector's construction
        // default: unset = auto-schedule, a positive integer pins, and 0
        // or garbage warns once and pins serial (never silently "auto").
        let amp_threads = crate::statevector::amp_threads_env();
        Self {
            shots,
            master_seed: DEFAULT_MASTER_SEED,
            threads,
            amp_threads,
            passes: None,
        }
    }

    /// Enables peephole passes on the shared compiled program.
    ///
    /// By default the runner only *lowers* the circuit (compiling once and
    /// sharing the immutable program across all workers), which keeps
    /// executed gate counts identical to the interpreted tree walk. Passes
    /// change the program, so the per-shot [`Executed`] tallies reflect the
    /// optimised stream; enable them when measuring physics rather than
    /// raw gate counts.
    #[must_use]
    pub fn with_passes(mut self, config: PassConfig) -> Self {
        self.passes = Some(config);
        self
    }

    /// Replaces the master seed. Ensembles with equal master seeds, shot
    /// counts and circuits produce identical aggregates.
    #[must_use]
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the total thread budget (clamped to at least 1). The result
    /// does not depend on this — only wall-clock time does.
    ///
    /// The budget covers **both** parallelism axes: with `S` shots and
    /// budget `B`, the runner uses `w = min(S, B)` shot workers and hands
    /// each one `⌊B / w⌋` amplitude lanes (so `w × lanes ≤ B` — the two
    /// levels never oversubscribe the machine). Many shots therefore get
    /// pure shot parallelism; few deep shots get amplitude parallelism
    /// inside each shot. Pin the split explicitly with
    /// [`with_amp_threads`](Self::with_amp_threads).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Pins the per-shot amplitude lane count instead of letting the
    /// scheduler derive it from the budget (clamped into `1..=budget`;
    /// shot workers shrink to keep `workers × lanes ≤ budget`). The
    /// construction default follows the `MBU_AMP_THREADS` environment
    /// variable when set, mirroring the state vector's standalone default.
    ///
    /// Results are bit-identical for every `(budget, lanes)` combination —
    /// both parallelism levels guarantee determinism — so this only tunes
    /// wall-clock time.
    #[must_use]
    pub fn with_amp_threads(mut self, amp_threads: usize) -> Self {
        self.amp_threads = Some(amp_threads.max(1));
        self
    }

    /// Splits the thread budget for an ensemble of `shots`: shot workers
    /// first (each shot needs one), leftover lanes to per-shot amplitude
    /// parallelism — deep single shots are exactly where the kernels can
    /// use them, and small states ignore extra lanes anyway (the kernels'
    /// size threshold). Returns `(shot_workers, amp_lanes)` with
    /// `shot_workers × amp_lanes ≤ budget`.
    fn schedule(&self, shots: u64) -> (usize, usize) {
        split_budget(self.threads, shots, self.amp_threads)
    }

    /// The number of shots this runner executes.
    #[must_use]
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The RNG seed used for shot `shot` — exposed so a single interesting
    /// shot can be replayed in isolation.
    ///
    /// SplitMix64 over `(master_seed, shot)`, so nearby shots get
    /// decorrelated streams.
    #[must_use]
    pub fn seed_for_shot(&self, shot: u64) -> u64 {
        shot_seed(self.master_seed, shot)
    }

    /// Runs the ensemble: `factory` builds one freshly prepared simulator
    /// per shot, and the executed statistics are folded into an
    /// [`Ensemble`].
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing shot, if any shot fails —
    /// deterministically, regardless of thread count — or
    /// [`SimError::EmptyEnsemble`] for a zero-shot run.
    pub fn run<F>(&self, circuit: &Circuit, factory: F) -> Result<Ensemble, SimError>
    where
        F: Fn() -> Box<dyn Simulator> + Sync,
    {
        self.run_probed(circuit, factory, |_, _| ())
            .map(|(ensemble, _)| ensemble)
    }

    /// Like [`run`](Self::run), but additionally applies `probe` to every
    /// shot's final simulator state and [`Executed`] record, returning the
    /// observations in shot order.
    ///
    /// This is how per-shot assertions (final register values, global
    /// phase) are made over an ensemble without abandoning the parallel
    /// engine.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing shot, if any shot fails,
    /// or [`SimError::EmptyEnsemble`] for a zero-shot run — an ensemble
    /// with no shots has no aggregate, and handing one back would leave
    /// every frequency accessor dividing by zero.
    pub fn run_probed<F, P, O>(
        &self,
        circuit: &Circuit,
        factory: F,
        probe: P,
    ) -> Result<(Ensemble, Vec<O>), SimError>
    where
        F: Fn() -> Box<dyn Simulator> + Sync,
        P: Fn(&dyn Simulator, &Executed) -> O + Sync,
        O: Send,
    {
        let shots = self.shots;
        if shots == 0 {
            return Err(SimError::EmptyEnsemble);
        }
        let (workers, amp_lanes) = self.schedule(shots);

        // Compile once; every worker executes the same immutable program
        // instead of re-walking the op tree per shot.
        let compiled = match self.passes {
            None => CompiledCircuit::lower(circuit),
            Some(config) => CompiledCircuit::with_config(circuit, &config),
        }
        .map_err(|e| SimError::InvalidCircuit { why: e.to_string() })?;
        let compiled = &compiled;

        let run_chunk = |range: std::ops::Range<u64>| -> ChunkResult<O> {
            let mut acc = Accumulator::default();
            let mut observations = Vec::with_capacity((range.end - range.start) as usize);
            for shot in range {
                let mut sim = factory();
                // Divide the budget: this shot may use the lanes its
                // worker was allotted (a no-op for per-qubit backends).
                sim.set_amp_threads(amp_lanes);
                let mut rng = StdRng::seed_from_u64(self.seed_for_shot(shot));
                let executed = sim
                    .run_compiled(compiled, &mut rng)
                    .map_err(|e| (shot, e))?;
                observations.push(probe(sim.as_ref(), &executed));
                acc.add_shot(&executed, sim.peak_amplitudes());
            }
            Ok((acc, observations))
        };

        let chunk_results: Vec<ChunkResult<O>> = if workers == 1 {
            vec![run_chunk(0..shots)]
        } else {
            // Contiguous chunks; the fold is exact, so the split points
            // cannot affect the aggregate — only probe order matters, and
            // concatenating contiguous chunks preserves shot order. Chunks
            // for shot ranges that ended up empty (shots < workers can
            // only arise from an explicit `with_amp_threads` squeeze) are
            // skipped: a worker with nothing to run is never spawned.
            let per = shots / workers as u64;
            let extra = (shots % workers as u64) as usize;
            let mut ranges = Vec::with_capacity(workers);
            let mut start = 0u64;
            for w in 0..workers {
                let len = per + u64::from(w < extra);
                if len > 0 {
                    ranges.push(start..start + len);
                }
                start += len;
            }
            thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|range| scope.spawn(|| run_chunk(range)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // Re-raise worker panics with their original
                        // payload instead of masking them.
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect()
            })
        };

        let mut acc = Accumulator::default();
        let mut observations = Vec::with_capacity(shots as usize);
        let mut first_error: Option<(u64, SimError)> = None;
        for result in chunk_results {
            match result {
                Ok((chunk_acc, chunk_obs)) => {
                    acc.merge(chunk_acc);
                    observations.extend(chunk_obs);
                }
                Err((shot, e)) => {
                    if first_error.as_ref().is_none_or(|(s, _)| shot < *s) {
                        first_error = Some((shot, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_error {
            return Err(e);
        }
        Ok((Ensemble { acc }, observations))
    }
}

/// The exact integer fold of many [`Executed`] records. Crate-visible so
/// the branch-tree sampler can fold its replayed shots through the same
/// arithmetic (bit-compatibility with per-shot execution is defined as
/// equality of this fold).
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Accumulator {
    shots: u64,
    sum: [u128; NFIELDS],
    sumsq: [u128; NFIELDS],
    clbit_ones: Vec<u64>,
    clbit_writes: Vec<u64>,
    records: BTreeMap<Vec<Option<bool>>, u64>,
    /// Worst per-shot peak amplitude count, when the backend reports one
    /// (the state vector's live working set — reclamation's memory story).
    peak_amps: Option<u64>,
}

impl Default for Accumulator {
    fn default() -> Self {
        Self {
            shots: 0,
            sum: [0; NFIELDS],
            sumsq: [0; NFIELDS],
            clbit_ones: Vec::new(),
            clbit_writes: Vec::new(),
            records: BTreeMap::new(),
            peak_amps: None,
        }
    }
}

impl Accumulator {
    pub(crate) fn add_shot(&mut self, executed: &Executed, peak_amps: Option<u64>) {
        self.shots += 1;
        if let Some(peak) = peak_amps {
            self.peak_amps = Some(self.peak_amps.map_or(peak, |m| m.max(peak)));
        }
        let fields = count_fields(&executed.counts);
        for (i, f) in fields.iter().enumerate() {
            let f = u128::from(*f);
            self.sum[i] += f;
            self.sumsq[i] += f * f;
        }
        if executed.classical.len() > self.clbit_ones.len() {
            self.clbit_ones.resize(executed.classical.len(), 0);
            self.clbit_writes.resize(executed.classical.len(), 0);
        }
        for (i, bit) in executed.classical.iter().enumerate() {
            if let Some(b) = bit {
                self.clbit_writes[i] += 1;
                self.clbit_ones[i] += u64::from(*b);
            }
        }
        *self.records.entry(executed.classical.clone()).or_insert(0) += 1;
    }

    fn merge(&mut self, other: Accumulator) {
        self.shots += other.shots;
        if let Some(peak) = other.peak_amps {
            self.peak_amps = Some(self.peak_amps.map_or(peak, |m| m.max(peak)));
        }
        for i in 0..NFIELDS {
            self.sum[i] += other.sum[i];
            self.sumsq[i] += other.sumsq[i];
        }
        if other.clbit_ones.len() > self.clbit_ones.len() {
            self.clbit_ones.resize(other.clbit_ones.len(), 0);
            self.clbit_writes.resize(other.clbit_writes.len(), 0);
        }
        for (i, ones) in other.clbit_ones.iter().enumerate() {
            self.clbit_ones[i] += ones;
        }
        for (i, writes) in other.clbit_writes.iter().enumerate() {
            self.clbit_writes[i] += writes;
        }
        for (record, n) in other.records {
            *self.records.entry(record).or_insert(0) += n;
        }
    }
}

/// Aggregate statistics of a shot ensemble.
///
/// Comparable with `==`: two ensembles are equal iff every underlying
/// integer tally matches, which is what the parallel-equals-serial
/// guarantee is stated in terms of.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ensemble {
    acc: Accumulator,
}

impl Ensemble {
    /// Wraps a finished fold (the branch-tree sampler's construction path).
    pub(crate) fn from_acc(acc: Accumulator) -> Self {
        Self { acc }
    }

    /// How many shots were folded in.
    #[must_use]
    pub fn shots(&self) -> u64 {
        self.acc.shots
    }

    /// Mean executed count per operation family.
    #[must_use]
    pub fn mean(&self) -> CountStats {
        let n = self.acc.shots.max(1) as f64;
        CountStats::from_fields(std::array::from_fn(|i| self.acc.sum[i] as f64 / n))
    }

    /// Population variance of the executed count per operation family.
    ///
    /// Computed from exact integer sums (`Var = (n·Σx² − (Σx)²) / n²`), so
    /// it carries no accumulation-order noise.
    #[must_use]
    pub fn variance(&self) -> CountStats {
        let n = self.acc.shots;
        if n == 0 {
            return CountStats::from_fields([0.0; NFIELDS]);
        }
        CountStats::from_fields(std::array::from_fn(|i| {
            let numer = u128::from(n) * self.acc.sumsq[i] - self.acc.sum[i] * self.acc.sum[i];
            numer as f64 / (n as f64 * n as f64)
        }))
    }

    /// The worst per-shot peak amplitude count across the ensemble, when
    /// the backend reports one (see `Simulator::peak_amplitudes`): the
    /// largest working set any shot's compiled execution operated on. With
    /// qubit reclamation the state vector's peak drops below `2^n`;
    /// without it (or with `MBU_RECLAIM=0`) this reports the full width.
    /// Note the caller-held full-width array before the initial compaction
    /// and after the end-of-run restore is not counted — this measures
    /// what the engine sweeps, not total allocation. `None` for backends
    /// that do not track peaks (the basis tracker) or empty ensembles.
    #[must_use]
    pub fn peak_amplitudes(&self) -> Option<u64> {
        self.acc.peak_amps
    }

    /// How many shots wrote classical bit `clbit`.
    #[must_use]
    pub fn outcome_writes(&self, clbit: usize) -> u64 {
        self.acc.clbit_writes.get(clbit).copied().unwrap_or(0)
    }

    /// How many shots wrote outcome 1 to classical bit `clbit`.
    #[must_use]
    pub fn outcome_ones(&self, clbit: usize) -> u64 {
        self.acc.clbit_ones.get(clbit).copied().unwrap_or(0)
    }

    /// The empirical frequency of outcome 1 on classical bit `clbit`,
    /// among the shots that wrote it; `None` if no shot did.
    #[must_use]
    pub fn outcome_frequency(&self, clbit: usize) -> Option<f64> {
        let writes = self.outcome_writes(clbit);
        (writes > 0).then(|| self.outcome_ones(clbit) as f64 / writes as f64)
    }

    /// The number of classical bits any shot wrote.
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.acc.clbit_writes.len()
    }

    /// The highest classical bit index any shot wrote — for protocols (like
    /// MBU modular adders) where "the last measurement" is the flag of
    /// interest.
    #[must_use]
    pub fn last_clbit(&self) -> Option<usize> {
        self.acc.clbit_writes.iter().rposition(|&writes| writes > 0)
    }

    /// Frequencies of complete classical records, most-populated first is
    /// NOT guaranteed — iteration is in record order.
    pub fn record_frequencies(&self) -> impl Iterator<Item = (&[Option<bool>], u64)> {
        self.acc.records.iter().map(|(k, v)| (k.as_slice(), *v))
    }

    /// The number of distinct complete classical records observed.
    #[must_use]
    pub fn distinct_records(&self) -> usize {
        self.acc.records.len()
    }
}

/// Per-operation-family floating statistics of an [`Ensemble`].
///
/// Field-for-field mirror of [`GateCounts`], as `f64` means or variances.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CountStats {
    /// Pauli X gates.
    pub x: f64,
    /// Pauli Z gates.
    pub z: f64,
    /// Hadamard gates.
    pub h: f64,
    /// Single-qubit phase rotations.
    pub phase: f64,
    /// CNOT gates.
    pub cx: f64,
    /// CZ gates.
    pub cz: f64,
    /// Toffoli gates.
    pub toffoli: f64,
    /// CCZ gates.
    pub ccz: f64,
    /// Controlled rotations.
    pub cphase: f64,
    /// Doubly-controlled rotations.
    pub ccphase: f64,
    /// Swap gates.
    pub swap: f64,
    /// Z-basis measurements.
    pub measure_z: f64,
    /// X-basis measurements.
    pub measure_x: f64,
    /// Resets.
    pub reset: f64,
}

impl CountStats {
    pub(crate) fn from_fields(f: [f64; NFIELDS]) -> Self {
        Self {
            x: f[0],
            z: f[1],
            h: f[2],
            phase: f[3],
            cx: f[4],
            cz: f[5],
            toffoli: f[6],
            ccz: f[7],
            cphase: f[8],
            ccphase: f[9],
            swap: f[10],
            measure_z: f[11],
            measure_x: f[12],
            reset: f[13],
        }
    }

    /// Total measurements, either basis.
    #[must_use]
    pub fn measurements(&self) -> f64 {
        self.measure_z + self.measure_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BasisTracker;
    use mbu_circuit::{Basis, CircuitBuilder};

    /// H-free fair-coin circuit: X-measure |0⟩, then a conditional X's
    /// worth of correction so the two branches execute different counts.
    fn coin_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        let m = b.measure(q[0], Basis::X);
        let (_, fix) = b.record(|bb| {
            bb.h(q[0]);
            bb.x(q[0]);
        });
        b.emit_conditional(m, &fix);
        b.finish()
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn same_master_seed_gives_identical_aggregates() {
        let circuit = coin_circuit();
        let factory = || Box::new(BasisTracker::zeros(1)) as Box<dyn Simulator>;
        let a = ShotRunner::new(500)
            .with_master_seed(7)
            .run(&circuit, factory)
            .unwrap();
        let b = ShotRunner::new(500)
            .with_master_seed(7)
            .run(&circuit, factory)
            .unwrap();
        assert_eq!(a, b);
        let c = ShotRunner::new(500)
            .with_master_seed(8)
            .run(&circuit, factory)
            .unwrap();
        assert_ne!(a.outcome_ones(0), c.outcome_ones(0));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn parallel_equals_serial_bit_for_bit() {
        let circuit = coin_circuit();
        let factory = || Box::new(BasisTracker::zeros(1)) as Box<dyn Simulator>;
        let serial = ShotRunner::new(1000)
            .with_threads(1)
            .run(&circuit, factory)
            .unwrap();
        for threads in [2, 3, 7, 16] {
            let parallel = ShotRunner::new(1000)
                .with_threads(threads)
                .run(&circuit, factory)
                .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn mean_and_variance_match_bernoulli_expectations() {
        // The conditional branch (1 H + 1 X) runs with probability ½, so
        // the executed X count is Bernoulli(½): mean ½, variance ¼.
        let circuit = coin_circuit();
        let ensemble = ShotRunner::new(4000)
            .run(&circuit, || Box::new(BasisTracker::zeros(1)))
            .unwrap();
        let mean = ensemble.mean();
        let var = ensemble.variance();
        assert!((mean.x - 0.5).abs() < 0.05, "mean {}", mean.x);
        assert!((var.x - 0.25).abs() < 0.05, "variance {}", var.x);
        assert!((mean.measure_x - 1.0).abs() < 1e-12);
        assert!(var.measure_x.abs() < 1e-12, "deterministic count");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn outcome_frequencies_and_records() {
        let circuit = coin_circuit();
        let ensemble = ShotRunner::new(2000)
            .run(&circuit, || Box::new(BasisTracker::zeros(1)))
            .unwrap();
        assert_eq!(ensemble.shots(), 2000);
        assert_eq!(ensemble.num_clbits(), 1);
        assert_eq!(ensemble.last_clbit(), Some(0));
        assert_eq!(ensemble.outcome_writes(0), 2000);
        let freq = ensemble.outcome_frequency(0).unwrap();
        assert!((freq - 0.5).abs() < 0.05, "fair coin, got {freq}");
        assert_eq!(ensemble.distinct_records(), 2);
        let total: u64 = ensemble.record_frequencies().map(|(_, n)| n).sum();
        assert_eq!(total, 2000);
        assert!(ensemble.outcome_frequency(3).is_none());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn probes_arrive_in_shot_order_for_any_thread_count() {
        let circuit = coin_circuit();
        let runner = ShotRunner::new(257).with_threads(1);
        // On outcome 0 no correction runs and the qubit stays in |+⟩, so
        // `bit` legitimately has no definite answer there.
        let probe = |sim: &dyn Simulator, ex: &Executed| {
            (
                ex.outcome(0).unwrap(),
                sim.bit(mbu_circuit::QubitId(0)).ok(),
            )
        };
        let (_, serial) = runner
            .run_probed(&circuit, || Box::new(BasisTracker::zeros(1)), probe)
            .unwrap();
        let (_, parallel) = runner
            .with_threads(5)
            .run_probed(&circuit, || Box::new(BasisTracker::zeros(1)), probe)
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 257);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn errors_are_deterministic_and_lowest_shot_wins() {
        // A 2-qubit circuit on a 1-qubit simulator fails on every shot;
        // the reported error must be the same for any thread count.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.cx(q[0], q[1]);
        let circuit = b.finish();
        let factory = || Box::new(BasisTracker::zeros(1)) as Box<dyn Simulator>;
        let e1 = ShotRunner::new(64)
            .with_threads(1)
            .run(&circuit, factory)
            .unwrap_err();
        let e8 = ShotRunner::new(64)
            .with_threads(8)
            .run(&circuit, factory)
            .unwrap_err();
        assert_eq!(e1, e8);
    }

    #[test]
    fn schedule_prefers_shot_workers_then_amplitude_lanes() {
        let runner = ShotRunner::new(0).with_threads(8);
        let mut auto = runner;
        auto.amp_threads = None; // ignore any ambient MBU_AMP_THREADS pin
                                 // Many shots: all budget to shot workers, serial kernels.
        assert_eq!(auto.schedule(100), (8, 1));
        assert_eq!(auto.schedule(8), (8, 1));
        // Few shots: leftover budget becomes per-shot amplitude lanes.
        assert_eq!(auto.schedule(4), (4, 2));
        assert_eq!(auto.schedule(3), (3, 2), "floor keeps the product ≤ 8");
        assert_eq!(auto.schedule(1), (1, 8), "single deep shot: all lanes");
        assert_eq!(auto.schedule(0), (1, 8));

        // Pinned lanes shrink the worker pool so the product fits.
        let pinned = auto.with_amp_threads(2);
        assert_eq!(pinned.schedule(100), (4, 2));
        assert_eq!(pinned.schedule(1), (1, 2));
        // A pin beyond the budget is clamped, never oversubscribed.
        assert_eq!(auto.with_amp_threads(64).schedule(10), (1, 8));
        for (shots, runner) in [(1u64, auto), (5, pinned), (64, auto.with_amp_threads(3))] {
            let (w, a) = runner.schedule(shots);
            assert!(w * a <= 8, "{shots} shots: {w}×{a} oversubscribes");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn single_shot_with_many_workers_runs_and_matches_serial() {
        // Regression: shots < budget must not spawn workers for empty
        // shot ranges, and the lone probe arrives exactly once.
        let circuit = coin_circuit();
        let factory = || Box::new(BasisTracker::zeros(1)) as Box<dyn Simulator>;
        let probe = |_: &dyn Simulator, ex: &Executed| ex.outcome(0).unwrap();
        let (serial, obs_serial) = ShotRunner::new(1)
            .with_threads(1)
            .run_probed(&circuit, factory, probe)
            .unwrap();
        let (wide, obs_wide) = ShotRunner::new(1)
            .with_threads(8)
            .run_probed(&circuit, factory, probe)
            .unwrap();
        assert_eq!(serial, wide);
        assert_eq!(obs_serial, obs_wide);
        assert_eq!(obs_wide.len(), 1);
        // And with the split forced to leave workers > shots in no
        // configuration: an explicit 1-lane pin at an 8-thread budget.
        let (pinned, obs_pinned) = ShotRunner::new(1)
            .with_threads(8)
            .with_amp_threads(1)
            .run_probed(&circuit, factory, probe)
            .unwrap();
        assert_eq!(serial, pinned);
        assert_eq!(obs_serial, obs_pinned);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn aggregates_are_identical_across_budget_splits() {
        // The same ensemble at every (shot workers × amp lanes) split of
        // an 8-thread budget, on the state-vector backend: bit-identical.
        use crate::StateVector;
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 3);
        b.h(q[0]);
        b.cx(q[0], q[1]);
        let _ = b.measure(q[1], Basis::Z);
        b.ccx(q[0], q[1], q[2]);
        let _ = b.measure(q[2], Basis::X);
        let circuit = b.finish();
        let factory = || Box::new(StateVector::zeros(3).unwrap()) as Box<dyn Simulator>;
        let base = ShotRunner::new(40)
            .with_threads(1)
            .with_amp_threads(1)
            .run(&circuit, factory)
            .unwrap();
        for (threads, lanes) in [(8, 1), (8, 2), (8, 8), (2, 4), (3, 3)] {
            let split = ShotRunner::new(40)
                .with_threads(threads)
                .with_amp_threads(lanes)
                .run(&circuit, factory)
                .unwrap();
            assert_eq!(base, split, "budget {threads}, lanes {lanes}");
        }
    }

    #[test]
    fn thread_resolution_pins_positive_integers() {
        // The selection policy is a pure function of the injected value, so
        // these tests never mutate process-global environment state (which
        // used to poison concurrently running ShotRunner tests).
        assert_eq!(resolve_threads(Some("3")), 3);
        assert_eq!(resolve_threads(Some(" 8 ")), 8, "whitespace tolerated");
        assert_eq!(resolve_threads(Some("1")), 1);
    }

    #[test]
    fn thread_resolution_rejects_zero_and_garbage() {
        let cpu_default = thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(resolve_threads(None), cpu_default);
        assert_eq!(resolve_threads(Some("0")), cpu_default, "0 would deadlock");
        assert_eq!(resolve_threads(Some("zero")), cpu_default);
        assert_eq!(resolve_threads(Some("-2")), cpu_default);
        assert_eq!(resolve_threads(Some("")), cpu_default);
    }

    #[test]
    fn runner_honours_the_resolved_default() {
        // ShotRunner::new routes through resolve_threads; with_threads
        // still overrides whatever the environment said.
        let runner = ShotRunner::new(10).with_threads(5);
        assert_eq!(runner.threads, 5);
        assert!(ShotRunner::new(10).threads >= 1);
    }

    #[test]
    fn env_pin_is_honoured_when_already_set() {
        // Guards the actual env-to-runner wiring without mutating the
        // process environment: in the CI thread matrix MBU_SHOT_THREADS is
        // set for the whole process, and the runner must have picked it
        // up. A no-op when the variable is unset or invalid (where
        // resolve_threads' own tests take over).
        if let Some(pinned) = std::env::var("MBU_SHOT_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
        {
            assert_eq!(ShotRunner::new(1).threads, pinned);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn ensembles_fold_peak_amplitudes_across_shots() {
        // q0 is measured, dropped, and only then is q1 touched — so the
        // reclaiming state vector never holds both qubits at once and the
        // ensemble's peak-memory stat halves, with identical outcomes.
        use crate::StateVector;
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        let _ = b.measure(q[0], Basis::Z);
        b.h(q[1]);
        let _ = b.measure(q[1], Basis::Z);
        let circuit = b.finish();
        let runner = ShotRunner::new(50).with_passes(mbu_circuit::PassConfig::default());
        let on = runner
            .run(&circuit, || {
                Box::new(StateVector::zeros(2).unwrap().with_reclamation(true))
            })
            .unwrap();
        let off = runner
            .run(&circuit, || {
                Box::new(StateVector::zeros(2).unwrap().with_reclamation(false))
            })
            .unwrap();
        assert_eq!(off.peak_amplitudes(), Some(4), "full 2^n without drops");
        assert_eq!(
            on.peak_amplitudes(),
            Some(2),
            "live set never exceeds one qubit"
        );
        assert_eq!(on.outcome_ones(0), off.outcome_ones(0));
        assert_eq!(on.outcome_ones(1), off.outcome_ones(1));
        assert_eq!(on.mean(), off.mean());

        // The other two backends report the same statistic in occupied
        // states: q1's |±⟩ excursion is the whole working set.
        let tracker = ShotRunner::new(10)
            .run(&circuit, || Box::new(BasisTracker::zeros(2)))
            .unwrap();
        assert_eq!(
            tracker.peak_amplitudes(),
            Some(2),
            "tracker censuses X-mode qubits"
        );
        let sparse = ShotRunner::new(10)
            .run(&circuit, || {
                Box::new(crate::SparseVector::zeros(2).unwrap())
            })
            .unwrap();
        assert_eq!(
            sparse.peak_amplitudes(),
            Some(2),
            "sparse map never materialises the dead half"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn opt_in_passes_shrink_executed_counts() {
        // X·X cancels under the default passes, so the optimised ensemble
        // executes no X at all while the lowered one executes two per shot.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        b.x(q[0]);
        b.x(q[0]);
        let _ = b.measure(q[0], Basis::Z);
        let circuit = b.finish();
        let factory = || Box::new(BasisTracker::zeros(1)) as Box<dyn Simulator>;

        let lowered = ShotRunner::new(50).run(&circuit, factory).unwrap();
        assert_eq!(lowered.mean().x, 2.0, "lowering preserves counts");

        let optimised = ShotRunner::new(50)
            .with_passes(mbu_circuit::PassConfig::default())
            .run(&circuit, factory)
            .unwrap();
        assert_eq!(optimised.mean().x, 0.0, "passes cancel the X pair");
        // Outcomes are untouched either way: the qubit measures 0.
        assert_eq!(optimised.outcome_ones(0), 0);
        assert_eq!(lowered.outcome_ones(0), 0);
    }

    #[test]
    fn invalid_circuits_fail_at_compile_time_not_per_shot() {
        use mbu_circuit::{Gate, Op, QubitId};
        let circuit = Circuit::from_ops(1, 0, vec![Op::Gate(Gate::Cx(QubitId(0), QubitId(5)))]);
        let err = ShotRunner::new(4)
            .run(&circuit, || Box::new(BasisTracker::zeros(1)))
            .unwrap_err();
        assert!(
            matches!(err, SimError::InvalidCircuit { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn zero_shot_runs_are_a_typed_error() {
        // Regression: a zero-shot "ensemble" used to come back as a bag of
        // silent zeros — `mean()` fabricated 0.0 and any frequency accessor
        // was a division by zero waiting to happen. It is now a typed
        // error, raised before any compile or thread-spawn work.
        let circuit = coin_circuit();
        let err = ShotRunner::new(0)
            .run(&circuit, || Box::new(BasisTracker::zeros(1)))
            .unwrap_err();
        assert_eq!(err, SimError::EmptyEnsemble);
        let err = ShotRunner::new(0)
            .run_probed(
                &circuit,
                || Box::new(BasisTracker::zeros(1)),
                |_, ex: &Executed| ex.counts.x,
            )
            .unwrap_err();
        assert_eq!(err, SimError::EmptyEnsemble);
    }
}
