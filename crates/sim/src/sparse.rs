//! The sparse basis-map statevector backend.
//!
//! [`SparseVector`] stores the state as a sorted map from occupied basis
//! bitstrings (multi-word little-endian keys) to complex amplitudes,
//! instead of a dense `2^n` array. The paper's circuits — VBE/CDKPM/Gidney
//! adders, Beauregard modexp and every MBU variant — are overwhelmingly
//! X/CX/CCX permutations of computational basis states, so on basis
//! inputs the occupied set stays tiny (each MBU garbage qubit passes
//! through a brief two-entry superposition between its `H` and its
//! measurement) while the register width grows to the cryptographic sizes
//! of Table 1: n = 64, 256, 1024 — widths where a dense amplitude array
//! cannot exist at all.
//!
//! Cost model per gate, with `k` occupied entries and `w = ⌈n/64⌉` key
//! words:
//!
//! * permutation gates (X, CX, CCX, SWAP) — `O(k·w)` key rewrites plus an
//!   `O(k log k)` re-sort, no amplitude arithmetic;
//! * diagonal gates (Z, CZ, CCZ, R and controlled R) — `O(k)` phase
//!   multiplies, keys untouched;
//! * `H` (the only superposing gate in the set) — pairs entries that
//!   differ in the target bit and fans out to at most `2k` entries.
//!
//! **Bit-identity contract with the dense engine.** Every amplitude the
//! sparse backend produces is bitwise identical to the corresponding
//! entry of [`StateVector`](crate::StateVector)'s array: the per-pair `H`
//! arithmetic (`(a ± b)·√½` with an absent partner synthesised as an
//! exact zero), the diagonal multiplies, and the measurement
//! renormalisation all reuse the dense kernels' expressions, and the Born
//! probability sums run in ascending key order — the same order as the
//! dense ascending-index sweep, whose skipped entries contribute exact
//! `+0.0` terms that cannot change an `f64` sum. Only exactly-zero
//! amplitudes are culled, so the occupied set equals the dense array's
//! nonzero support.
//!
//! The one deliberate divergence is randomness: measuring a qubit whose
//! outcome is exactly determined (`p₁` exactly `0.0` or `1.0`) consumes
//! **no** RNG draw, mirroring [`BasisTracker`](crate::BasisTracker)'s
//! `Fork::Definite` behaviour, where the dense engine burns one draw per
//! measurement regardless. On superposition-measuring circuits (every MBU
//! measurement follows an `H`, so `p₁ = ½`) the streams coincide with the
//! dense engine's; resets and measurements of definite qubits advance
//! only the dense stream.

use std::f64::consts::FRAC_1_SQRT_2;

use mbu_circuit::{Angle, Basis, CompiledCircuit, Gate, QubitId};
use rand::RngCore;

use crate::complex::Complex;
use crate::error::SimError;
use crate::exec::{self, Executed};
use crate::simulator::{ConcreteFork, Fork, Simulator};

/// Construction cap for [`SparseVector::zeros`]: wide enough for every
/// Table-1 architecture at n = 1024 (the 5n-qubit VBE-family layouts land
/// around 5 200 qubits) with a large margin; a key at the cap is 256
/// words, still a trivial per-entry footprint.
pub const MAX_SPARSEVECTOR_QUBITS: usize = 16_384;

/// A definite-read tolerance identical to the dense engine's (see
/// `statevector.rs`): `bit`/`value` reads succeed when the marginal is
/// within `1e-9` of 0 or 1.
const DEFINITE_TOL: f64 = 1e-9;

/// A map from occupied basis states to amplitudes, sorted by basis index.
///
/// Implements the full [`Simulator`] trait — `run`, `run_compiled`,
/// [`measure_fork`](Simulator::measure_fork) for branch-tree execution,
/// and [`peak_amplitudes`](Simulator::peak_amplitudes) reporting the
/// occupied-entry high-water mark of the most recent compiled run — so
/// [`ShotRunner`](crate::ShotRunner) and
/// [`BranchEnsemble`](crate::BranchEnsemble) drive it unchanged.
///
/// # Examples
///
/// A 300-qubit CNOT chain — far past any dense engine — stays at one
/// occupied entry:
///
/// ```
/// use mbu_circuit::{CircuitBuilder, QubitId};
/// use mbu_sim::{Simulator, SparseVector};
/// use rand::SeedableRng;
///
/// let n = 300usize;
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", n);
/// for i in 0..n - 1 {
///     b.cx(q[i], q[i + 1]);
/// }
/// let circuit = b.finish();
///
/// let mut sim = SparseVector::zeros(n).unwrap();
/// sim.set_bit(QubitId(0), true).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// sim.run(&circuit, &mut rng).unwrap();
/// assert_eq!(sim.occupied(), 1);
/// assert!(sim.bit(QubitId(n as u32 - 1)).unwrap());
/// ```
#[derive(Clone, Debug)]
pub struct SparseVector {
    num_qubits: usize,
    /// Key width in 64-bit words: `⌈num_qubits/64⌉`, at least 1.
    words: usize,
    /// Flat key storage, `occupied · words` little-endian words (word 0
    /// holds qubits 0–63). Entry `e`'s key is
    /// `keys[e·words .. (e+1)·words]`; entries are sorted ascending by
    /// basis index and hold pairwise-distinct keys.
    keys: Vec<u64>,
    /// `amps[e]` is entry `e`'s amplitude; never an exact complex zero.
    amps: Vec<Complex>,
    /// Occupied-entry high-water mark since the last compiled-run start.
    peak_entries: u64,
    /// The high-water mark of the most recent compiled run, once one ran.
    last_run_peak: Option<u64>,
}

/// Ascending numeric comparison of two equal-width little-endian keys.
// The key helpers and the binary search below address the packed key
// words of every occupied entry; a wrapped index would silently read the
// wrong entry's key, so their arithmetic must be visibly in-bounds.
#[deny(clippy::arithmetic_side_effects)]
fn cmp_keys(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    for (wa, wb) in a.iter().rev().zip(b.iter().rev()) {
        match wa.cmp(wb) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Whether an amplitude is an exact complex zero (either signed zero in
/// both components) — the only kind of entry the map culls, so the
/// occupied set matches the dense array's nonzero support exactly.
fn is_zero(a: Complex) -> bool {
    a.re == 0.0 && a.im == 0.0
}

/// The (word, mask) address of qubit `q` inside a key.
#[deny(clippy::arithmetic_side_effects)]
fn bit_addr(q: QubitId) -> (usize, u64) {
    (q.index() / 64, 1u64 << (q.index() % 64))
}

impl SparseVector {
    /// Creates `|0…0⟩` over `num_qubits` qubits: one occupied entry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above
    /// [`MAX_SPARSEVECTOR_QUBITS`].
    pub fn zeros(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_SPARSEVECTOR_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_SPARSEVECTOR_QUBITS,
            });
        }
        let words = num_qubits.div_ceil(64).max(1);
        Ok(Self {
            num_qubits,
            words,
            keys: vec![0; words],
            amps: vec![Complex::ONE],
            peak_entries: 1,
            last_run_peak: None,
        })
    }

    /// The number of occupied basis states (entries with a nonzero
    /// amplitude).
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.amps.len()
    }

    /// The occupied-entry high-water mark of the most recent compiled
    /// run, or `None` before the first one — the sparse analogue of
    /// `StateVector::last_run_peak_amplitudes`.
    #[must_use]
    pub fn last_run_peak_entries(&self) -> Option<u64> {
        self.last_run_peak
    }

    /// The amplitude of basis state `index` (an exact zero when the state
    /// is not occupied). Only the first `min(num_qubits, 128)` bits of the
    /// key are addressable this way — enough for every cross-validation
    /// width; wider states are read through [`bit`](Simulator::bit) /
    /// [`bits`](Self::bits).
    #[must_use]
    pub fn amplitude(&self, index: u128) -> Complex {
        let mut key = vec![0u64; self.words];
        for (w, slot) in key.iter_mut().enumerate().take(2) {
            *slot = (index >> (64 * w)) as u64;
        }
        match self.find(&key) {
            Ok(e) => self.amps[e],
            Err(_) => Complex::ZERO,
        }
    }

    /// Reads the register as little-endian bits (any width — the
    /// [`value`](Simulator::value) read is capped at 128 bits).
    ///
    /// # Errors
    ///
    /// As [`bit`](Simulator::bit), for any of the qubits.
    pub fn bits(&self, qubits: &[QubitId]) -> Result<Vec<bool>, SimError> {
        qubits.iter().map(|q| Simulator::bit(self, *q)).collect()
    }

    fn key(&self, e: usize) -> &[u64] {
        &self.keys[e * self.words..(e + 1) * self.words]
    }

    /// Builds a map directly from pre-sorted raw storage: `keys` holds
    /// `amps.len() · ⌈num_qubits/64⌉` little-endian words, entries sorted
    /// ascending, pairwise distinct, with no exact-zero amplitude — the
    /// representation-conversion seam (`crate::convert`). The peak
    /// counter starts at the entry count, like a fresh construction.
    pub(crate) fn from_sorted_entries(
        num_qubits: usize,
        keys: Vec<u64>,
        amps: Vec<Complex>,
    ) -> Self {
        let words = num_qubits.div_ceil(64).max(1);
        debug_assert_eq!(keys.len(), amps.len() * words);
        debug_assert!((1..amps.len()).all(|e| cmp_keys(
            &keys[(e - 1) * words..e * words],
            &keys[e * words..(e + 1) * words]
        ) == std::cmp::Ordering::Less));
        debug_assert!(!amps.iter().any(|a| is_zero(*a)));
        let peak = amps.len() as u64;
        Self {
            num_qubits,
            words,
            keys,
            amps,
            peak_entries: peak,
            last_run_peak: None,
        }
    }

    /// Raw key storage (`occupied · key_words` words, ascending entries).
    pub(crate) fn raw_keys(&self) -> &[u64] {
        &self.keys
    }

    /// Raw amplitude storage, parallel to [`raw_keys`](Self::raw_keys).
    pub(crate) fn raw_amps(&self) -> &[Complex] {
        &self.amps
    }

    /// Key width in 64-bit words.
    pub(crate) fn key_words(&self) -> usize {
        self.words
    }

    /// The occupied-entry high-water mark since the last reset.
    pub(crate) fn peak_entries(&self) -> u64 {
        self.peak_entries
    }

    /// Restarts the high-water mark at the current occupancy (a compiled
    /// run is beginning).
    pub(crate) fn reset_peak(&mut self) {
        self.peak_entries = self.amps.len() as u64;
    }

    /// Binary search for `key` among the sorted entries.
    #[deny(clippy::arithmetic_side_effects)]
    fn find(&self, key: &[u64]) -> Result<usize, usize> {
        let words = self.words;
        let n = self.amps.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            // `mid < n` and `keys.len() == n·words` (both live in memory,
            // so neither product nor successor can wrap).
            let mid = usize::midpoint(lo, hi);
            let base = mid.saturating_mul(words);
            match cmp_keys(&self.keys[base..base.saturating_add(words)], key) {
                std::cmp::Ordering::Less => lo = mid.saturating_add(1),
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    fn note_peak(&mut self) {
        let k = self.amps.len() as u64;
        if k > self.peak_entries {
            self.peak_entries = k;
        }
    }

    /// Restores the ascending-key invariant after an in-place key rewrite
    /// (permutation gates) or an `H` fan-out. Permutation gates are
    /// bijective on keys and `H` emits pairwise-distinct outputs, so a
    /// pure re-order suffices — no merging.
    fn resort(&mut self) {
        let k = self.amps.len();
        let words = self.words;
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_unstable_by(|&a, &b| {
            cmp_keys(
                &self.keys[a * words..(a + 1) * words],
                &self.keys[b * words..(b + 1) * words],
            )
        });
        if order.iter().enumerate().all(|(i, &e)| i == e) {
            return;
        }
        let mut keys = Vec::with_capacity(k * words);
        let mut amps = Vec::with_capacity(k);
        for &e in &order {
            keys.extend_from_slice(&self.keys[e * words..(e + 1) * words]);
            amps.push(self.amps[e]);
        }
        self.keys = keys;
        self.amps = amps;
    }

    /// Same validation as the dense engine: out-of-range and duplicated
    /// operands are typed errors, not silent corruption.
    fn validate_gate(&self, gate: &Gate) -> Result<(), SimError> {
        let mut seen: [Option<QubitId>; 3] = [None; 3];
        let mut count = 0usize;
        let mut oob: Option<QubitId> = None;
        let mut dup: Option<QubitId> = None;
        gate.for_each_qubit(&mut |q| {
            if q.index() >= self.num_qubits {
                oob.get_or_insert(q);
            }
            if seen[..count].contains(&Some(q)) {
                dup.get_or_insert(q);
            } else if count < seen.len() {
                seen[count] = Some(q);
                count += 1;
            }
        });
        if let Some(q) = oob {
            return Err(SimError::OutOfRange {
                what: format!("gate `{gate}` on qubit q{}", q.0),
            });
        }
        if let Some(q) = dup {
            return Err(SimError::DuplicateOperand {
                gate: gate.to_string(),
                qubit: q.0,
            });
        }
        Ok(())
    }

    /// Toggles `target` in every entry whose `controls` bits are all set:
    /// the X/CX/CCX family as pure key rewrites.
    fn permute_x(&mut self, controls: &[QubitId], target: QubitId) {
        let (tw, tm) = bit_addr(target);
        let ctrl: Vec<(usize, u64)> = controls.iter().map(|c| bit_addr(*c)).collect();
        let words = self.words;
        for e in 0..self.amps.len() {
            let key = &mut self.keys[e * words..(e + 1) * words];
            if ctrl.iter().all(|&(w, m)| key[w] & m != 0) {
                key[tw] ^= tm;
            }
        }
        self.resort();
    }

    /// Negates every entry whose `operands` bits are all set: the
    /// Z/CZ/CCZ family, with the dense scan path's exact `-a` arithmetic.
    fn diagonal_negate(&mut self, operands: &[QubitId]) {
        let ops: Vec<(usize, u64)> = operands.iter().map(|o| bit_addr(*o)).collect();
        let words = self.words;
        for (e, amp) in self.amps.iter_mut().enumerate() {
            let key = &self.keys[e * words..(e + 1) * words];
            if ops.iter().all(|&(w, m)| key[w] & m != 0) {
                *amp = -*amp;
            }
        }
    }

    /// Multiplies every entry whose `operands` bits are all set by
    /// `cis(theta)`: the R/C-R/CC-R family, with the dense scan path's
    /// exact `a * w` arithmetic.
    fn diagonal_phase(&mut self, operands: &[QubitId], theta: Angle) {
        let w = Complex::cis(theta.radians());
        let ops: Vec<(usize, u64)> = operands.iter().map(|o| bit_addr(*o)).collect();
        let words = self.words;
        for (e, amp) in self.amps.iter_mut().enumerate() {
            let key = &self.keys[e * words..(e + 1) * words];
            if ops.iter().all(|&(wd, m)| key[wd] & m != 0) {
                *amp = *amp * w;
            }
        }
    }

    /// Hadamard on `q`: pairs entries differing only in bit `q` and fans
    /// each pair out through the dense engine's exact per-pair arithmetic
    /// — `(a + b)·√½` into the clear half, `(a − b)·√½` into the set half,
    /// with an absent partner entering the sums as an exact complex zero
    /// (precisely the value the dense array holds there). Outputs that
    /// come out exactly zero are culled, keeping the map equal to the
    /// dense nonzero support.
    fn apply_h(&mut self, q: QubitId) {
        let (bw, bm) = bit_addr(q);
        let words = self.words;
        let k = self.amps.len();
        // Pair entries: order by key-with-bit-cleared, clear half first.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_unstable_by(|&a, &b| {
            let ka = &self.keys[a * words..(a + 1) * words];
            let kb = &self.keys[b * words..(b + 1) * words];
            for w in (0..words).rev() {
                let (mut wa, mut wb) = (ka[w], kb[w]);
                if w == bw {
                    wa &= !bm;
                    wb &= !bm;
                }
                match wa.cmp(&wb) {
                    std::cmp::Ordering::Equal => {}
                    other => return other,
                }
            }
            (ka[bw] & bm).cmp(&(kb[bw] & bm))
        });
        let mut keys = Vec::with_capacity((k + k) * words);
        let mut amps = Vec::with_capacity(k + k);
        let mut base = vec![0u64; words];
        let mut i = 0usize;
        while i < k {
            let e = order[i];
            base.copy_from_slice(&self.keys[e * words..(e + 1) * words]);
            base[bw] &= !bm;
            let (a, b) = if self.key(e)[bw] & bm == 0 {
                // Clear-half entry; its set-half partner, if occupied, is
                // the next entry in pair order.
                let mut b = Complex::ZERO;
                if i + 1 < k {
                    let f = order[i + 1];
                    let kf = self.key(f);
                    let partner_matches = (kf[bw] & bm != 0)
                        && kf.iter().enumerate().all(|(w, &word)| {
                            if w == bw {
                                word & !bm == base[w]
                            } else {
                                word == base[w]
                            }
                        });
                    if partner_matches {
                        b = self.amps[f];
                        i += 1;
                    }
                }
                (self.amps[e], b)
            } else {
                (Complex::ZERO, self.amps[e])
            };
            i += 1;
            let out0 = (a + b).scale(FRAC_1_SQRT_2);
            let out1 = (a - b).scale(FRAC_1_SQRT_2);
            if !is_zero(out0) {
                keys.extend_from_slice(&base);
                amps.push(out0);
            }
            if !is_zero(out1) {
                keys.extend_from_slice(&base);
                let last = keys.len() - words;
                keys[last + bw] |= bm;
                amps.push(out1);
            }
        }
        self.keys = keys;
        self.amps = amps;
        // Pair order is not global key order (the target bit outranks the
        // bits below it); one re-sort restores the invariant.
        self.resort();
        self.note_peak();
    }

    fn apply(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.validate_gate(gate)?;
        match *gate {
            Gate::X(q) => self.permute_x(&[], q),
            Gate::Cx(c, t) => self.permute_x(&[c], t),
            Gate::Ccx(c1, c2, t) => self.permute_x(&[c1, c2], t),
            Gate::Swap(a, b) => {
                // Swap two key bits where they differ: two entangled
                // toggles, one pass.
                let (aw, am) = bit_addr(a);
                let (bw, bm) = bit_addr(b);
                let words = self.words;
                for e in 0..self.amps.len() {
                    let key = &mut self.keys[e * words..(e + 1) * words];
                    if (key[aw] & am != 0) != (key[bw] & bm != 0) {
                        key[aw] ^= am;
                        key[bw] ^= bm;
                    }
                }
                self.resort();
            }
            Gate::Z(q) => self.diagonal_negate(&[q]),
            Gate::Cz(x, y) => self.diagonal_negate(&[x, y]),
            Gate::Ccz(x, y, z) => self.diagonal_negate(&[x, y, z]),
            Gate::Phase(q, theta) => self.diagonal_phase(&[q], theta),
            Gate::CPhase(c, t, theta) => self.diagonal_phase(&[c, t], theta),
            Gate::CcPhase(c1, c2, t, theta) => self.diagonal_phase(&[c1, c2, t], theta),
            Gate::H(q) => self.apply_h(q),
        }
        Ok(())
    }

    /// The Born probability that qubit `q` reads 1, clamped into `[0, 1]`
    /// — summed over occupied entries in ascending key order, which is
    /// bitwise the dense engine's ascending-index sum (its skipped
    /// entries contribute exact `+0.0` terms).
    fn z_prob_one(&self, q: QubitId) -> f64 {
        let (w, m) = bit_addr(q);
        let words = self.words;
        let p1: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(e, _)| self.keys[e * words + w] & m != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        p1.clamp(0.0, 1.0)
    }

    /// The renormalisation factor for projecting onto branch `outcome`,
    /// mirroring the dense `z_branch_scale` (including its kept-mass
    /// fallback for a forced zero-probability branch — never inf/NaN).
    fn z_branch_scale(&self, q: QubitId, outcome: bool, p1: f64) -> f64 {
        let p = if outcome { p1 } else { 1.0 - p1 };
        if p > 0.0 {
            1.0 / p.sqrt()
        } else {
            let (w, m) = bit_addr(q);
            let words = self.words;
            let kept: f64 = self
                .amps
                .iter()
                .enumerate()
                .filter(|(e, _)| (self.keys[e * words + w] & m != 0) == outcome)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            if kept > 0.0 {
                1.0 / kept.sqrt()
            } else {
                1.0
            }
        }
    }

    /// Projects onto branch `outcome` of qubit `q`: survivors are scaled
    /// by `scale` (bitwise the dense post-measurement values), the other
    /// half is removed.
    fn project(&mut self, q: QubitId, outcome: bool, scale: f64) {
        let (w, m) = bit_addr(q);
        let words = self.words;
        let k = self.amps.len();
        let mut keys = Vec::with_capacity(k * words);
        let mut amps = Vec::with_capacity(k);
        for e in 0..k {
            let key = &self.keys[e * words..(e + 1) * words];
            if (key[w] & m != 0) == outcome {
                let a = self.amps[e].scale(scale);
                if !is_zero(a) {
                    keys.extend_from_slice(key);
                    amps.push(a);
                }
            }
        }
        self.keys = keys;
        self.amps = amps;
    }

    /// Z-basis measurement with the definite-outcome rule: when `p₁` is
    /// exactly `0.0` or `1.0` the outcome is forced and **no** draw is
    /// consumed (the [`BasisTracker`](crate::BasisTracker) convention);
    /// otherwise one draw decides, exactly like the dense engine. Either
    /// way the post-measurement state is bitwise what the dense
    /// `measure_z` leaves for the same outcome (the forced branches'
    /// renormaliser is exactly `1.0`).
    fn measure_z(&mut self, q: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> bool {
        let p1 = self.z_prob_one(q);
        let outcome = if p1 == 0.0 {
            false
        } else if p1 == 1.0 {
            true
        } else {
            draw(p1)
        };
        let scale = self.z_branch_scale(q, outcome, p1);
        self.project(q, outcome, scale);
        outcome
    }

    /// The both-branch Z measurement behind
    /// [`measure_fork`](Simulator::measure_fork). A definite outcome
    /// (`p₁` exactly `0.0` or `1.0`) reports
    /// [`ConcreteFork::Definite`] — the sampling path consumes no
    /// randomness for it — after dropping the impossible half's
    /// (numerically massless) entries, so the surviving state is bitwise
    /// what [`measure_z`](Self::measure_z) leaves. A genuine split scales
    /// both halves with the dense `split_bit` arithmetic.
    fn fork_z(&mut self, q: QubitId) -> ConcreteFork<SparseVector> {
        let p1 = self.z_prob_one(q);
        if p1 == 0.0 || p1 == 1.0 {
            let outcome = p1 == 1.0;
            self.project(q, outcome, self.z_branch_scale(q, outcome, p1));
            return ConcreteFork::Definite(outcome);
        }
        let scale0 = self.z_branch_scale(q, false, p1);
        let scale1 = self.z_branch_scale(q, true, p1);
        let mut one = self.clone();
        one.last_run_peak = None;
        self.project(q, false, scale0);
        one.project(q, true, scale1);
        one.note_peak();
        ConcreteFork::Split {
            p_one: p1,
            one: Some(one),
        }
    }

    /// The typed fork behind [`measure_fork`](Simulator::measure_fork):
    /// same semantics, but the outcome-1 branch keeps its concrete
    /// `SparseVector` type so wrapper backends can re-wrap it.
    pub(crate) fn fork_concrete(
        &mut self,
        qubit: QubitId,
        basis: Basis,
    ) -> Result<ConcreteFork<SparseVector>, SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("measured qubit q{}", qubit.0),
            });
        }
        match basis {
            Basis::Z => Ok(self.fork_z(qubit)),
            Basis::X => {
                self.apply(&Gate::H(qubit))?;
                let fork = self.fork_z(qubit);
                self.apply(&Gate::H(qubit))?;
                match fork {
                    ConcreteFork::Definite(b) => Ok(ConcreteFork::Definite(b)),
                    ConcreteFork::Split { p_one, mut one } => {
                        if let Some(one) = one.as_mut() {
                            one.apply(&Gate::H(qubit))?;
                        }
                        Ok(ConcreteFork::Split { p_one, one })
                    }
                }
            }
        }
    }

    /// A definite-bit read under [`DEFINITE_TOL`], mirroring the dense
    /// engine's `definite_bit`.
    fn definite_bit(&self, q: QubitId) -> Result<bool, SimError> {
        let p1 = self.z_prob_one(q);
        if p1 >= 1.0 - DEFINITE_TOL {
            Ok(true)
        } else if p1 <= DEFINITE_TOL {
            Ok(false)
        } else {
            Err(SimError::ReadOfSuperposedQubit { qubit: q.0 })
        }
    }
}

impl Simulator for SparseVector {
    fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.apply(gate)
    }

    fn set_bit(&mut self, q: QubitId, value: bool) -> Result<(), SimError> {
        if q.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        if self.definite_bit(q)? != value {
            self.apply(&Gate::X(q))?;
        }
        Ok(())
    }

    fn bit(&self, q: QubitId) -> Result<bool, SimError> {
        if q.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        self.definite_bit(q)
    }

    fn peak_amplitudes(&self) -> Option<u64> {
        self.last_run_peak
    }

    fn global_phase(&self) -> Option<Angle> {
        // Meaningful when the state is (numerically) one basis state with
        // a dyadic unit-circle amplitude — the dense engine's policy.
        let (dominant, amp) = self
            .amps
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.norm_sqr().total_cmp(&b.norm_sqr()))?;
        let residue: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(e, _)| *e != dominant)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        if residue > DEFINITE_TOL {
            return None;
        }
        if (amp.norm() - 1.0).abs() > 1e-6 {
            return None;
        }
        let tau = std::f64::consts::TAU;
        let turns = (amp.im.atan2(amp.re) / tau).rem_euclid(1.0);
        const LOG2_DENOM: u32 = 24;
        let scaled = (turns * f64::from(1u32 << LOG2_DENOM)).round();
        let numerator = (scaled as u128) % (1u128 << LOG2_DENOM);
        let angle = Angle::from_fraction(numerator, LOG2_DENOM);
        let back = Complex::cis(angle.radians());
        if (back - *amp).norm() < 1e-6 {
            Some(angle)
        } else {
            None
        }
    }

    fn measure(
        &mut self,
        qubit: QubitId,
        basis: Basis,
        draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("measured qubit q{}", qubit.0),
            });
        }
        match basis {
            Basis::Z => Ok(self.measure_z(qubit, draw)),
            Basis::X => {
                // Rotate to Z, measure, rotate back — the dense engine's
                // conjugation, so the post-measurement state is |+⟩/|−⟩.
                self.apply(&Gate::H(qubit))?;
                let outcome = self.measure_z(qubit, draw);
                self.apply(&Gate::H(qubit))?;
                Ok(outcome)
            }
        }
    }

    fn measure_fork(&mut self, qubit: QubitId, basis: Basis) -> Result<Option<Fork>, SimError> {
        Ok(Some(self.fork_concrete(qubit, basis)?.into_fork()))
    }

    fn occupancy_peak(&self) -> Option<u64> {
        Some(self.peak_entries)
    }

    fn reset(&mut self, qubit: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> Result<(), SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("reset qubit q{}", qubit.0),
            });
        }
        if self.measure_z(qubit, draw) {
            self.apply(&Gate::X(qubit))?;
        }
        Ok(())
    }

    /// Compiled execution through the shared program-counter core
    /// (`execute_compiled_core`), with the sparse backend's hook choices:
    /// plain per-gate application (a sparse X is already `O(occupied)` —
    /// no bit-flip frame to batch), fused blocks replayed as their
    /// constituent gates (bitwise the unfused stream), and `Instr::Drop`
    /// as a no-op — a dropped qubit is definite, so every occupied key
    /// agrees on it and there is nothing to compact; the memory story the
    /// drop pass buys the dense engine is the sparse map's resting state.
    /// The occupied-entry high-water mark is reset here and reported
    /// through [`peak_amplitudes`](Simulator::peak_amplitudes).
    fn run_compiled(
        &mut self,
        compiled: &CompiledCircuit,
        rng: &mut dyn RngCore,
    ) -> Result<Executed, SimError> {
        exec::check_width(compiled.num_qubits(), self.num_qubits)?;
        self.peak_entries = self.amps.len() as u64;
        let mut executed = Executed::default();
        exec::execute_compiled_core(
            self,
            compiled,
            rng,
            &mut executed,
            |s, g| s.apply_gate(g),
            |s, fu| {
                for g in fu.global_gates() {
                    s.apply_gate(&g)?;
                }
                Ok(())
            },
            |_, q| Ok(q),
            |_, _| {},
            |_, _| Ok(()),
        )?;
        self.last_run_peak = Some(self.peak_entries);
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    /// A draw callback that must never be consulted.
    fn no_draw() -> impl FnMut(f64) -> bool {
        |_| panic!("a definite measurement must not consume randomness")
    }

    #[test]
    fn width_guard() {
        assert!(matches!(
            SparseVector::zeros(MAX_SPARSEVECTOR_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
        assert!(SparseVector::zeros(0).is_ok());
    }

    #[test]
    fn out_of_range_and_duplicate_gates_are_rejected() {
        let theta = Angle::turn_over_power_of_two(2);
        let mut sv = SparseVector::zeros(2).unwrap();
        for gate in [
            Gate::X(q(2)),
            Gate::H(q(9)),
            Gate::Cx(q(0), q(2)),
            Gate::CPhase(q(0), q(5), theta),
        ] {
            assert!(matches!(
                sv.apply(&gate).unwrap_err(),
                SimError::OutOfRange { .. }
            ));
        }
        for gate in [Gate::Cx(q(1), q(1)), Gate::Swap(q(0), q(0))] {
            assert!(matches!(
                sv.apply(&gate).unwrap_err(),
                SimError::DuplicateOperand { .. }
            ));
        }
        assert_eq!(sv.occupied(), 1, "state untouched by rejected gates");
    }

    #[test]
    fn permutation_gates_track_basis_states_at_width_300() {
        let n = 300usize;
        let mut sv = SparseVector::zeros(n).unwrap();
        sv.set_bit(q(0), true).unwrap();
        sv.set_bit(q(150), true).unwrap();
        sv.apply(&Gate::Ccx(q(0), q(150), q(299))).unwrap();
        assert!(sv.bit(q(299)).unwrap());
        sv.apply(&Gate::Swap(q(299), q(63))).unwrap();
        assert!(sv.bit(q(63)).unwrap());
        assert!(!sv.bit(q(299)).unwrap());
        assert_eq!(sv.occupied(), 1);
        assert!(Simulator::global_phase(&sv).unwrap().is_zero());
    }

    #[test]
    fn hadamard_fans_out_and_recombines_exactly() {
        let mut sv = SparseVector::zeros(65).unwrap();
        sv.set_bit(q(64), true).unwrap(); // second key word in play
        sv.apply(&Gate::H(q(64))).unwrap(); // |−⟩
        assert_eq!(sv.occupied(), 2);
        assert_eq!(sv.amplitude(1u128 << 64).re, -FRAC_1_SQRT_2);
        sv.apply(&Gate::H(q(64))).unwrap(); // back to |1⟩, exactly
        assert_eq!(sv.occupied(), 1, "the |0⟩ component cancels to exact 0");
        // The surviving amplitude carries the dense engine's exact
        // rounding: (√½ − (−√½))·√½ evaluated in that order.
        let expect = 2.0 * FRAC_1_SQRT_2 * FRAC_1_SQRT_2;
        assert_eq!(sv.amplitude(1u128 << 64).re.to_bits(), expect.to_bits());
        assert!(sv.bit(q(64)).unwrap());
    }

    #[test]
    fn definite_measurement_consumes_no_randomness() {
        let mut sv = SparseVector::zeros(2).unwrap();
        sv.set_bit(q(0), true).unwrap();
        let outcome = sv.measure(q(0), Basis::Z, &mut no_draw()).unwrap();
        assert!(outcome);
        sv.reset(q(0), &mut no_draw()).unwrap();
        assert!(!sv.bit(q(0)).unwrap());
        // X-basis definite: |+⟩ measured in X.
        sv.apply(&Gate::H(q(1))).unwrap();
        let outcome = sv.measure(q(1), Basis::X, &mut no_draw()).unwrap();
        assert!(!outcome);
    }

    #[test]
    fn superposed_measurement_draws_once_with_the_born_probability() {
        for forced in [false, true] {
            let mut sv = SparseVector::zeros(1).unwrap();
            sv.apply(&Gate::H(q(0))).unwrap();
            let mut draws = Vec::new();
            let mut draw = |p: f64| {
                draws.push(p);
                forced
            };
            let outcome = sv.measure(q(0), Basis::Z, &mut draw).unwrap();
            assert_eq!(outcome, forced);
            assert_eq!(draws.len(), 1);
            assert!((draws[0] - 0.5).abs() < 1e-12);
            assert_eq!(sv.bit(q(0)).unwrap(), forced);
            assert_eq!(sv.occupied(), 1);
        }
    }

    #[test]
    fn fork_definite_projects_and_split_matches_forced_measure() {
        // Definite fork: state equals what measure would leave.
        let mut sv = SparseVector::zeros(1).unwrap();
        sv.set_bit(q(0), true).unwrap();
        match sv.measure_fork(q(0), Basis::Z).unwrap().unwrap() {
            Fork::Definite(b) => assert!(b),
            Fork::Split { .. } => panic!("definite measurement must not split"),
        }
        assert!(sv.bit(q(0)).unwrap());

        // Genuine split: both branches bitwise match forced measures.
        let build = || {
            let mut sv = SparseVector::zeros(2).unwrap();
            sv.apply(&Gate::H(q(0))).unwrap();
            sv.apply(&Gate::Cx(q(0), q(1))).unwrap();
            sv
        };
        let mut forked = build();
        let Fork::Split { p_one, one } = forked.measure_fork(q(0), Basis::Z).unwrap().unwrap()
        else {
            panic!("superposed measurement must split");
        };
        assert!((p_one - 0.5).abs() < 1e-12);
        // The kept (zero) branch is bitwise a forced-outcome measure.
        let mut reference = build();
        let mut draw = |_: f64| false;
        reference.measure(q(0), Basis::Z, &mut draw).unwrap();
        for idx in 0..4u128 {
            let (r, s) = (reference.amplitude(idx), forked.amplitude(idx));
            assert_eq!(r.re.to_bits(), s.re.to_bits(), "zero branch amp {idx}");
            assert_eq!(r.im.to_bits(), s.im.to_bits(), "zero branch amp {idx}");
        }
        // The one branch (behind the trait object) collapsed to |11⟩.
        let one = one.unwrap();
        assert!(one.bit(q(0)).unwrap());
        assert!(one.bit(q(1)).unwrap());
    }

    #[test]
    fn compiled_run_reports_the_occupied_high_water_mark() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.ccx(r[0], r[1], r[2]);
        b.h(r[2]);
        let m = b.measure(r[2], Basis::Z);
        let (_, fix) = b.record(|bb| bb.x(r[2]));
        b.emit_conditional(m, &fix);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        let mut sv = SparseVector::zeros(3).unwrap();
        assert_eq!(Simulator::peak_amplitudes(&sv), None, "no compiled run yet");
        sv.set_bit(q(0), true).unwrap();
        sv.set_bit(q(1), true).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        Simulator::run_compiled(&mut sv, &compiled, &mut rng).unwrap();
        assert_eq!(
            Simulator::peak_amplitudes(&sv),
            Some(2),
            "the AND ancilla's H is the only fan-out"
        );
        assert!(!sv.bit(q(2)).unwrap(), "ancilla uncomputed");
    }

    #[test]
    fn set_value_and_wide_bits_roundtrip() {
        let n = 200usize;
        let mut sv = SparseVector::zeros(n).unwrap();
        let qubits: Vec<QubitId> = (0..n as u32).map(QubitId).collect();
        let value = 0xDEAD_BEEF_CAFE_F00Du128;
        sv.set_value(&qubits, value).unwrap();
        let bits = sv.bits(&qubits).unwrap();
        for (i, bit) in bits.iter().enumerate() {
            assert_eq!(*bit, i < 128 && (value >> i) & 1 == 1, "bit {i}");
        }
        assert!(sv.value(&qubits).is_err(), "value() capped at 128 bits");
        assert_eq!(sv.value(&qubits[..128]).unwrap(), value);
    }
}
