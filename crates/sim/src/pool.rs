//! The persistent amplitude worker pool.
//!
//! Chunk-parallel kernels (see [`crate::kernels`]) split one gate's sweep
//! over the amplitude array into disjoint index ranges and execute them
//! concurrently. Spawning OS threads per gate would dwarf the sweep itself
//! (a compiled run applies thousands of kernels), so each
//! [`StateVector`](crate::StateVector) that runs with `MBU_AMP_THREADS > 1`
//! owns one [`AmpPool`]: `threads − 1` parked worker threads plus the
//! calling thread, woken per kernel call and re-parked after a barrier.
//!
//! The pool is deliberately minimal: one job at a time (the owning
//! simulator is `&mut` during execution, so calls never overlap), fixed
//! chunk→worker assignment (worker `w` runs chunk `w`, the caller runs
//! chunk 0), and a condvar barrier. Determinism lives one layer up —
//! chunk *boundaries* are pure functions of the work size and thread
//! count, and every chunk writes disjoint amplitudes, so results are
//! bit-identical to serial execution no matter how chunks are scheduled.
//!
//! ## Why `unsafe` (and why it is sound)
//!
//! Persistent workers outlive any one kernel call, but the job closure
//! borrows the amplitude array of that call. [`AmpPool::run`] erases the
//! closure's lifetime to hand it to the workers, which is sound because
//! the call *blocks* until every worker has acknowledged completion — the
//! borrow is dead before `run` returns, and workers never touch a task
//! pointer after acknowledging it.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A persistent pool of amplitude worker threads (see the module docs).
pub(crate) struct AmpPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new job epoch.
    work: Condvar,
    /// The caller waits here for `pending == 0`.
    done: Condvar,
}

struct State {
    /// Bumped once per job; workers run each epoch exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet acknowledged the current epoch.
    pending: usize,
    /// A worker's chunk panicked (re-raised on the calling thread).
    panicked: bool,
    shutdown: bool,
}

#[derive(Clone, Copy)]
struct Job {
    task: TaskPtr,
    chunks: usize,
}

/// A lifetime-erased pointer to the job closure.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the referent is `Sync` (shared references may cross threads) and
// the pointer is only dereferenced between job publication and the final
// acknowledgement, while `AmpPool::run` keeps the underlying closure alive
// on the calling thread's stack.
#[allow(unsafe_code)]
unsafe impl Send for TaskPtr {}

impl AmpPool {
    /// A pool executing with `threads` total lanes: `threads − 1` spawned
    /// workers plus the calling thread.
    ///
    /// Panic triage: the `expect`s in this module are deliberate. Spawn
    /// failure means the OS refused a thread — no caller input reaches
    /// that — and every `expect("pool lock")` fires only on mutex
    /// poisoning, i.e. after a worker already panicked, which `run`
    /// re-raises on the calling thread anyway. Converting them to
    /// `SimError`s would thread fallibility through every gate kernel for
    /// states that are unreachable without a prior abort-worthy bug.
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                pending: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mbu-amp-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn amplitude worker")
            })
            .collect();
        Self {
            shared,
            threads,
            handles,
        }
    }

    /// Total execution lanes (workers + the calling thread).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(0)`, `f(1)`, …, `f(chunks − 1)` concurrently (chunk 0 on
    /// the calling thread) and returns once every chunk has finished.
    /// `chunks` must not exceed [`threads`](Self::threads); chunks must
    /// touch disjoint data.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic on the calling thread) if any worker chunk
    /// panicked.
    pub(crate) fn run(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        debug_assert!(chunks <= self.threads, "{chunks} chunks > {}", self.threads);
        if chunks <= 1 || self.handles.is_empty() {
            for c in 0..chunks {
                f(c);
            }
            return;
        }
        // SAFETY: the erased borrow outlives the job because this function
        // blocks on `pending == 0` below before returning; workers stop
        // dereferencing the pointer before decrementing `pending`.
        #[allow(unsafe_code)]
        let task = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.job = Some(Job { task, chunks });
            st.epoch += 1;
            st.pending = self.handles.len();
            self.shared.work.notify_all();
        }
        // The caller's own chunk must not unwind past the completion
        // barrier below: workers still hold the lifetime-erased task
        // pointer until they acknowledge, so an unguarded panic here would
        // free the closure (and the amplitude borrow) under them. Catch,
        // drain the barrier, then re-raise.
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut st = self.shared.state.lock().expect("pool lock");
        while st.pending > 0 {
            st = self.shared.done.wait(st).expect("pool lock");
        }
        st.job = None;
        let worker_panicked = std::mem::take(&mut st.panicked);
        drop(st);
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "amplitude worker panicked");
    }
}

impl Drop for AmpPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for AmpPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AmpPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// One worker: waits for a fresh epoch, runs its assigned chunk (worker
/// `index` owns chunk `index`; the caller owns chunk 0), acknowledges.
fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(job) = st.job {
                        seen = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st).expect("pool lock");
            }
        };
        let ok = if index < job.chunks {
            // SAFETY: `AmpPool::run` keeps the closure alive until this
            // worker (and all others) acknowledge below.
            #[allow(unsafe_code)]
            let f = unsafe { &*job.task.0 };
            catch_unwind(AssertUnwindSafe(|| f(index))).is_ok()
        } else {
            true
        };
        let mut st = shared.state.lock().expect("pool lock");
        if !ok {
            st.panicked = true;
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = AmpPool::new(4);
        for chunks in [1, 2, 3, 4] {
            let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(chunks, &|c| {
                hits[c].fetch_add(1, Ordering::SeqCst);
            });
            for (c, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {c} of {chunks}");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn sequential_jobs_reuse_the_same_workers() {
        let pool = AmpPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(3, &|c| {
                total.fetch_add(c + 1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 600);
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = AmpPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run(1, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn caller_chunk_panics_drain_the_barrier_first() {
        // A panic in chunk 0 (the caller's) must still wait for the
        // workers before unwinding — otherwise they would dereference the
        // dangling task closure — and must leave the pool reusable.
        let pool = AmpPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|c| assert_ne!(c, 0, "caller chunk panics"));
        }));
        assert!(result.is_err());
        let hits = AtomicUsize::new(0);
        pool.run(3, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let pool = AmpPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|c| assert_ne!(c, 1, "chunk 1 panics"));
        }));
        assert!(result.is_err());
        // The pool survives and stays usable.
        let hits = AtomicUsize::new(0);
        pool.run(2, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
