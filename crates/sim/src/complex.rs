//! A minimal complex-number type (keeps the dependency set to the allowed
//! list; no `num-complex`).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use mbu_sim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}` for `θ` in radians.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_sim::Complex;
    ///
    /// let minus_one = Complex::cis(std::f64::consts::PI);
    /// assert!((minus_one - (-Complex::ONE)).norm() < 1e-12);
    /// ```
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, Complex::new(1.0, 1.0));
        assert_eq!(a - b, Complex::new(2.0, -5.0));
        // (1.5 − 2i)(−0.5 + 3i) = −0.75 + 4.5i + 1i + 6 = 5.25 + 5.5i
        assert_eq!(a * b, Complex::new(5.25, 5.5));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!((z * z.conj() - Complex::new(25.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn cis_on_axis_angles() {
        use std::f64::consts::FRAC_PI_2;
        assert!((Complex::cis(0.0) - Complex::ONE).norm() < 1e-12);
        assert!((Complex::cis(FRAC_PI_2) - Complex::I).norm() < 1e-12);
    }

    #[test]
    fn display_shows_both_parts() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(0.5, 0.25).to_string(), "0.5+0.25i");
    }
}
