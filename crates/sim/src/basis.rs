//! The phase-tracking computational-basis backend.
//!
//! Each qubit is in one of two modes:
//!
//! * **Z-mode** — a definite computational-basis bit `|0⟩` or `|1⟩`;
//! * **X-mode** — `|+⟩` or `|−⟩` (a sign bit), the state a garbage qubit
//!   passes through during measurement-based uncomputation.
//!
//! The full state is a tensor product of per-qubit modes times an exact
//! dyadic global phase. This fragment is closed under everything the paper's
//! Toffoli-family circuits do:
//!
//! * permutation gates (X, CX, CCX) between Z-mode qubits;
//! * diagonal gates (Z, CZ, CCZ, R, C-R, CC-R) on Z-mode qubits — they only
//!   contribute a trackable global phase;
//! * `H` toggling a qubit between modes (entering/leaving the MBU protocol);
//! * *phase kickback*: an X/CX/CCX targeting an X-mode qubit flips the
//!   global phase when the (Z-mode) controls are satisfied and the target is
//!   `|−⟩` — exactly the mechanism of Lemma 4.1's correction;
//! * Z-type gates with exactly one X-mode operand toggling `|+⟩ ↔ |−⟩`;
//! * measurements in either basis.
//!
//! Anything that would entangle (e.g. CNOT with an X-mode control and
//! Z-mode target) returns [`SimError::UnsupportedEntanglement`]. That the
//! paper's circuits never trigger this error is itself checked by the test
//! suite.

use mbu_circuit::{Angle, Basis, Circuit, CompiledCircuit, Gate, QubitId};
use rand::RngCore;

use crate::error::SimError;
use crate::exec::{self, Executed};
use crate::simulator::{Fork, Simulator};

/// Per-qubit state of the tracker. Crate-visible so the state-conversion
/// module can enumerate the tracked product state into an amplitude
/// representation without round-tripping through gate applications.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Mode {
    /// `|0⟩` (false) or `|1⟩` (true).
    Z(bool),
    /// `|+⟩` (false) or `|−⟩` (true).
    X(bool),
}

/// A phase-tracking computational-basis simulator.
///
/// Executes Toffoli-family circuits — including MBU protocols — in `O(1)`
/// per gate with an *exact* global phase, at any width. See the module
/// documentation for the supported fragment.
///
/// # Examples
///
/// ```
/// use mbu_circuit::CircuitBuilder;
/// use mbu_sim::BasisTracker;
/// use rand::SeedableRng;
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 2);
/// b.cx(q[0], q[1]);
/// let circuit = b.finish();
///
/// let mut sim = BasisTracker::zeros(2);
/// sim.set_bit(q[0], true).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// sim.run(&circuit, &mut rng).unwrap();
/// assert_eq!(sim.bit(q[1]).unwrap(), true);
/// ```
#[derive(Clone, Debug)]
pub struct BasisTracker {
    qubits: Vec<Mode>,
    /// Global phase as a fraction of a turn: the state carries
    /// `e^{2πi·phase}`.
    phase: Angle,
    /// How many qubits are currently in X-mode: the tracked product state
    /// occupies `2^x_count` computational-basis states, the figure the
    /// amplitude backends call "occupied entries". Maintained
    /// incrementally by [`set_mode`](Self::set_mode) so occupancy stats
    /// stay `O(1)` per gate like everything else here.
    x_count: usize,
    /// Occupied-state high-water mark since the last compiled-run start
    /// (saturating at `u64::MAX` — the tracker happily holds more X-mode
    /// qubits than any counter of states could).
    peak: u64,
    /// The high-water mark of the most recent compiled run, once one ran.
    last_run_peak: Option<u64>,
}

/// Occupancy statistics are bookkeeping, not state: two trackers are equal
/// when they hold the same per-qubit modes and global phase, whatever
/// their high-water marks remember.
impl PartialEq for BasisTracker {
    fn eq(&self, other: &Self) -> bool {
        self.qubits == other.qubits && self.phase == other.phase
    }
}

impl Eq for BasisTracker {}

impl BasisTracker {
    /// Creates `|0…0⟩` over `num_qubits` qubits.
    #[must_use]
    pub fn zeros(num_qubits: usize) -> Self {
        Self {
            qubits: vec![Mode::Z(false); num_qubits],
            phase: Angle::ZERO,
            x_count: 0,
            peak: 1,
            last_run_peak: None,
        }
    }

    /// The number of computational-basis states the tracked product state
    /// occupies: `2^(X-mode qubits)`, saturating at `u64::MAX`. The same
    /// quantity the amplitude backends report as occupied entries, so all
    /// three backends answer [`Simulator::peak_amplitudes`] in one unit.
    #[must_use]
    pub fn occupied(&self) -> u64 {
        u32::try_from(self.x_count)
            .ok()
            .and_then(|k| 1u64.checked_shl(k))
            .unwrap_or(u64::MAX)
    }

    /// The occupied-state high-water mark of the most recent compiled
    /// run, or `None` before the first one.
    #[must_use]
    pub fn last_run_peak_occupied(&self) -> Option<u64> {
        self.last_run_peak
    }

    /// The single mode-write funnel: adjusts the incremental X-mode count
    /// and the occupancy high-water mark. Every mode transition routes
    /// through here (a plain `qubits.swap` is exempt — it moves modes
    /// without changing the census).
    fn set_mode(&mut self, i: usize, mode: Mode) {
        match (self.qubits[i], mode) {
            (Mode::Z(_), Mode::X(_)) => {
                self.x_count += 1;
                let occupied = self.occupied();
                if occupied > self.peak {
                    self.peak = occupied;
                }
            }
            (Mode::X(_), Mode::Z(_)) => self.x_count -= 1,
            _ => {}
        }
        self.qubits[i] = mode;
    }

    /// The number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// The per-qubit mode table, for the state-conversion module.
    pub(crate) fn modes(&self) -> &[Mode] {
        &self.qubits
    }

    /// Sets qubit `q` to the computational-basis bit `value`.
    ///
    /// Inherent front for [`Simulator::set_bit`]. This used to panic on an
    /// out-of-range qubit — a reachable crash for any caller preparing
    /// inputs from external data — and now reports it instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if `q` is outside the state.
    pub fn set_bit(&mut self, q: QubitId, value: bool) -> Result<(), SimError> {
        Simulator::set_bit(self, q, value)
    }

    /// Writes the little-endian bits of `value` into `qubits`.
    ///
    /// Inherent front for [`Simulator::set_value`]. This used to panic on
    /// an out-of-range qubit — a reachable crash for any caller preparing
    /// inputs from external data — and now reports it instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if any qubit is outside the state.
    pub fn set_value(&mut self, qubits: &[QubitId], value: u128) -> Result<(), SimError> {
        Simulator::set_value(self, qubits, value)
    }

    /// Reads qubit `q`'s computational bit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ReadOfSuperposedQubit`] if the qubit is in
    /// X-mode, or [`SimError::OutOfRange`] if `q` is outside the state.
    pub fn bit(&self, q: QubitId) -> Result<bool, SimError> {
        Simulator::bit(self, q)
    }

    /// Reads the little-endian integer held by `qubits`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ReadOfSuperposedQubit`] if any qubit is in
    /// X-mode, or [`SimError::OutOfRange`] for registers wider than 128.
    pub fn value(&self, qubits: &[QubitId]) -> Result<u128, SimError> {
        Simulator::value(self, qubits)
    }

    /// Reads the register as little-endian bits (any width).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ReadOfSuperposedQubit`] if any qubit is in
    /// X-mode.
    pub fn bits(&self, qubits: &[QubitId]) -> Result<Vec<bool>, SimError> {
        qubits.iter().map(|q| self.bit(*q)).collect()
    }

    /// The tracked global phase, as an exact fraction of a turn.
    ///
    /// A correct uncomputation leaves this at [`Angle::ZERO`]; a sign error
    /// in an MBU correction shows up here as `2π/2` — this is how the test
    /// suite checks *phase* correctness at widths where no state vector
    /// fits.
    #[must_use]
    pub fn global_phase(&self) -> Angle {
        self.phase
    }

    /// Runs an adaptive circuit, sampling measurements from `rng`.
    ///
    /// Convenience wrapper over the [`Simulator`] trait method for callers
    /// holding a concrete tracker and a concrete generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedEntanglement`] if the circuit leaves
    /// the tracked fragment, or propagates executor errors.
    pub fn run<R: RngCore>(
        &mut self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<Executed, SimError> {
        Simulator::run(self, circuit, rng)
    }

    fn flip_phase(&mut self) {
        self.phase = self.phase + Angle::HALF_TURN;
    }

    /// Applies an X to `q`: flips a Z-mode bit; on X-mode, `X|−⟩ = −|−⟩`.
    fn apply_x(&mut self, q: QubitId) {
        match self.qubits[q.index()] {
            Mode::Z(b) => self.set_mode(q.index(), Mode::Z(!b)),
            Mode::X(sign) => {
                if sign {
                    self.flip_phase();
                }
            }
        }
    }

    /// Applies a Z-type phase of `theta` controlled on all `operands`.
    ///
    /// Z-mode operands with bit 0 make the gate the identity; Z-mode
    /// operands with bit 1 are satisfied controls. What remains must be
    /// either nothing (global phase) or — for `theta = π` only — a single
    /// X-mode qubit, whose sign toggles (`Z|±⟩ = |∓⟩`).
    fn apply_phase_on(
        &mut self,
        operands: &[QubitId],
        theta: Angle,
        gate: &Gate,
    ) -> Result<(), SimError> {
        let mut x_mode: Option<QubitId> = None;
        for q in operands {
            match self.qubits[q.index()] {
                Mode::Z(false) => return Ok(()), // unsatisfied control
                Mode::Z(true) => {}
                Mode::X(_) => {
                    if x_mode.replace(*q).is_some() {
                        return Err(SimError::UnsupportedEntanglement {
                            gate: gate.to_string(),
                            reason: "two operands of a diagonal gate are in superposition",
                        });
                    }
                }
            }
        }
        match x_mode {
            None => {
                self.phase = self.phase + theta;
                Ok(())
            }
            Some(q) => {
                if theta == Angle::HALF_TURN {
                    // Z on |±⟩ toggles the sign.
                    let Mode::X(sign) = self.qubits[q.index()] else {
                        unreachable!("x_mode only holds X-mode qubits");
                    };
                    self.set_mode(q.index(), Mode::X(!sign));
                    Ok(())
                } else {
                    Err(SimError::UnsupportedEntanglement {
                        gate: gate.to_string(),
                        reason: "non-π rotation of a superposed qubit",
                    })
                }
            }
        }
    }

    /// Applies an X to `target` under Z-mode controls. If any control is
    /// unsatisfied the gate is the identity; a superposed control is
    /// unsupported (it would entangle) unless the target is also superposed,
    /// in which case CNOT acts in the X basis: the *control's* sign absorbs
    /// the target's sign.
    fn apply_controlled_x(
        &mut self,
        controls: &[QubitId],
        target: QubitId,
        gate: &Gate,
    ) -> Result<(), SimError> {
        // In the X basis a CNOT inverts: |s_c⟩|s_t⟩ ↦ |s_c ⊕ s_t⟩|s_t⟩.
        // Support the all-X-mode two-qubit case used when composing MBU
        // fragments; otherwise controls must be Z-mode.
        if controls.len() == 1 {
            if let (Mode::X(sc), Mode::X(st)) = (
                self.qubits[controls[0].index()],
                self.qubits[target.index()],
            ) {
                self.set_mode(controls[0].index(), Mode::X(sc ^ st));
                return Ok(());
            }
        }
        for c in controls {
            match self.qubits[c.index()] {
                Mode::Z(false) => return Ok(()),
                Mode::Z(true) => {}
                Mode::X(_) => {
                    return Err(SimError::UnsupportedEntanglement {
                        gate: gate.to_string(),
                        reason: "control qubit is in superposition",
                    })
                }
            }
        }
        self.apply_x(target);
        Ok(())
    }

    fn apply(&mut self, gate: &Gate) -> Result<(), SimError> {
        match *gate {
            Gate::X(q) => {
                self.apply_x(q);
                Ok(())
            }
            Gate::Z(q) => self.apply_phase_on(&[q], Angle::HALF_TURN, gate),
            Gate::H(q) => {
                // H|0⟩=|+⟩, H|1⟩=|−⟩, H|+⟩=|0⟩, H|−⟩=|1⟩.
                let mode = match self.qubits[q.index()] {
                    Mode::Z(b) => Mode::X(b),
                    Mode::X(s) => Mode::Z(s),
                };
                self.set_mode(q.index(), mode);
                Ok(())
            }
            Gate::Phase(q, theta) => self.apply_phase_on(&[q], theta, gate),
            Gate::Cx(c, t) => self.apply_controlled_x(&[c], t, gate),
            Gate::Cz(a, b) => self.apply_phase_on(&[a, b], Angle::HALF_TURN, gate),
            Gate::Ccx(c1, c2, t) => self.apply_controlled_x(&[c1, c2], t, gate),
            Gate::Ccz(a, b, c) => self.apply_phase_on(&[a, b, c], Angle::HALF_TURN, gate),
            Gate::CPhase(c, t, theta) => self.apply_phase_on(&[c, t], theta, gate),
            Gate::CcPhase(c1, c2, t, theta) => self.apply_phase_on(&[c1, c2, t], theta, gate),
            Gate::Swap(a, b) => {
                self.qubits.swap(a.index(), b.index());
                Ok(())
            }
        }
    }
}

impl Simulator for BasisTracker {
    fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.apply(gate)
    }

    fn set_bit(&mut self, q: QubitId, value: bool) -> Result<(), SimError> {
        if q.index() >= self.qubits.len() {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        self.set_mode(q.index(), Mode::Z(value));
        Ok(())
    }

    fn bit(&self, q: QubitId) -> Result<bool, SimError> {
        match self.qubits.get(q.index()) {
            None => Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            }),
            Some(Mode::Z(b)) => Ok(*b),
            Some(Mode::X(_)) => Err(SimError::ReadOfSuperposedQubit { qubit: q.0 }),
        }
    }

    fn global_phase(&self) -> Option<Angle> {
        Some(self.phase)
    }

    fn measure(
        &mut self,
        qubit: QubitId,
        basis: Basis,
        draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError> {
        let i = qubit.index();
        match (basis, self.qubits[i]) {
            // Measuring a definite bit is deterministic.
            (Basis::Z, Mode::Z(b)) => Ok(b),
            (Basis::X, Mode::X(s)) => Ok(s),
            // Measuring across bases is a fair coin; the surviving
            // amplitude's sign becomes a global phase.
            (Basis::Z, Mode::X(s)) => {
                let outcome = draw(0.5);
                // (|0⟩ + (−1)^s|1⟩)/√2: outcome 1 picks up the sign.
                if s && outcome {
                    self.flip_phase();
                }
                self.set_mode(i, Mode::Z(outcome));
                Ok(outcome)
            }
            (Basis::X, Mode::Z(b)) => {
                let outcome = draw(0.5);
                // |b⟩ = (|+⟩ + (−1)^b|−⟩)/√2: outcome |−⟩ picks up (−1)^b.
                if b && outcome {
                    self.flip_phase();
                }
                self.set_mode(i, Mode::X(outcome));
                Ok(outcome)
            }
        }
    }

    fn reset(&mut self, qubit: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> Result<(), SimError> {
        match self.qubits[qubit.index()] {
            Mode::Z(_) => {}
            Mode::X(s) => {
                // Collapse first (a fair coin); |−⟩ collapsing to |1⟩
                // contributes a π phase, exactly as a measurement would.
                let outcome = draw(0.5);
                if s && outcome {
                    self.flip_phase();
                }
            }
        }
        self.set_mode(qubit.index(), Mode::Z(false));
        Ok(())
    }

    /// Both-branch measurement for the branch-tree engine. Same-basis
    /// measurements are deterministic for the tracker — it consumes no
    /// randomness for them (see [`measure`](Simulator::measure)) — so they
    /// report [`Fork::Definite`]; cross-basis measurements are fair coins
    /// whose two collapsed children (including the |−⟩-collapse phase
    /// flip) are produced by cloning the per-qubit mode table.
    fn measure_fork(&mut self, qubit: QubitId, basis: Basis) -> Result<Option<Fork>, SimError> {
        let i = qubit.index();
        if i >= self.qubits.len() {
            return Err(SimError::OutOfRange {
                what: format!("measured qubit q{}", qubit.0),
            });
        }
        let split = |zero: &mut Self, one_mode: Mode, flip: bool| {
            let mut one = zero.clone();
            one.last_run_peak = None;
            one.set_mode(i, one_mode);
            if flip {
                one.flip_phase();
            }
            Fork::Split {
                p_one: 0.5,
                one: Some(Box::new(one)),
            }
        };
        match (basis, self.qubits[i]) {
            (Basis::Z, Mode::Z(b)) => Ok(Some(Fork::Definite(b))),
            (Basis::X, Mode::X(s)) => Ok(Some(Fork::Definite(s))),
            (Basis::Z, Mode::X(s)) => {
                // (|0⟩ + (−1)^s|1⟩)/√2: outcome 1 picks up the sign.
                let fork = split(self, Mode::Z(true), s);
                self.set_mode(i, Mode::Z(false));
                Ok(Some(fork))
            }
            (Basis::X, Mode::Z(b)) => {
                // |b⟩ = (|+⟩ + (−1)^b|−⟩)/√2: outcome |−⟩ picks up (−1)^b.
                let fork = split(self, Mode::X(true), b);
                self.set_mode(i, Mode::X(false));
                Ok(Some(fork))
            }
        }
    }

    fn peak_amplitudes(&self) -> Option<u64> {
        self.last_run_peak
    }

    /// The occupied-state high-water mark since construction (or since the
    /// most recent compiled-run start, which resets it) — live occupancy
    /// in the same unit the amplitude backends use, available even for
    /// gate-at-a-time callers like the branch-tree engine.
    fn occupancy_peak(&self) -> Option<u64> {
        Some(self.peak)
    }

    /// Compiled execution with occupancy bookkeeping: the default
    /// program-counter loop, bracketed by a high-water-mark reset and
    /// capture so the tracker reports
    /// [`peak_amplitudes`](Simulator::peak_amplitudes) in the same
    /// occupied-states unit as the amplitude backends.
    fn run_compiled(
        &mut self,
        compiled: &CompiledCircuit,
        rng: &mut dyn RngCore,
    ) -> Result<Executed, SimError> {
        exec::check_width(compiled.num_qubits(), self.num_qubits())?;
        self.peak = self.occupied();
        let mut executed = Executed::default();
        exec::execute_compiled(self, compiled, rng, &mut executed)?;
        self.last_run_peak = Some(self.peak);
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn permutation_gates_track_bits() {
        let mut t = BasisTracker::zeros(3);
        t.set_value(&[q(0), q(1), q(2)], 0b011).unwrap();
        t.apply(&Gate::Ccx(q(0), q(1), q(2))).unwrap();
        assert_eq!(t.value(&[q(0), q(1), q(2)]).unwrap(), 0b111);
        t.apply(&Gate::Cx(q(2), q(0))).unwrap();
        assert!(!t.bit(q(0)).unwrap());
        assert!(t.global_phase().is_zero());
    }

    #[test]
    fn diagonal_gates_accumulate_phase() {
        let mut t = BasisTracker::zeros(2);
        t.set_value(&[q(0), q(1)], 0b11).unwrap();
        t.apply(&Gate::Cz(q(0), q(1))).unwrap();
        assert_eq!(t.global_phase(), Angle::HALF_TURN);
        t.apply(&Gate::Cz(q(0), q(1))).unwrap();
        assert!(t.global_phase().is_zero());
    }

    #[test]
    fn unsatisfied_control_is_identity() {
        let mut t = BasisTracker::zeros(2);
        t.set_bit(q(0), false).unwrap();
        t.set_bit(q(1), true).unwrap();
        t.apply(&Gate::Cz(q(0), q(1))).unwrap();
        assert!(t.global_phase().is_zero());
        t.apply(&Gate::Cx(q(0), q(1))).unwrap();
        assert!(t.bit(q(1)).unwrap());
    }

    #[test]
    fn hadamard_toggles_modes() {
        let mut t = BasisTracker::zeros(1);
        t.set_bit(q(0), true).unwrap();
        t.apply(&Gate::H(q(0))).unwrap(); // |−⟩
        assert!(t.bit(q(0)).is_err());
        t.apply(&Gate::H(q(0))).unwrap(); // back to |1⟩
        assert!(t.bit(q(0)).unwrap());
        assert!(t.global_phase().is_zero());
    }

    #[test]
    fn z_toggles_plus_minus() {
        let mut t = BasisTracker::zeros(1);
        t.apply(&Gate::H(q(0))).unwrap(); // |+⟩
        t.apply(&Gate::Z(q(0))).unwrap(); // |−⟩
        t.apply(&Gate::H(q(0))).unwrap(); // |1⟩
        assert!(t.bit(q(0)).unwrap());
    }

    #[test]
    fn cnot_kickback_on_minus_target() {
        // CX with control |1⟩ and target |−⟩ flips the global phase.
        let mut t = BasisTracker::zeros(2);
        t.set_bit(q(0), true).unwrap();
        t.set_bit(q(1), true).unwrap();
        t.apply(&Gate::H(q(1))).unwrap(); // |−⟩
        t.apply(&Gate::Cx(q(0), q(1))).unwrap();
        assert_eq!(t.global_phase(), Angle::HALF_TURN);
        // Control |0⟩: no kickback.
        t.set_bit(q(0), false).unwrap();
        t.apply(&Gate::Cx(q(0), q(1))).unwrap();
        assert_eq!(t.global_phase(), Angle::HALF_TURN);
    }

    #[test]
    fn toffoli_kickback_needs_both_controls() {
        let mut t = BasisTracker::zeros(3);
        t.set_value(&[q(0), q(1)], 0b01).unwrap();
        t.set_bit(q(2), true).unwrap();
        t.apply(&Gate::H(q(2))).unwrap(); // |−⟩
        t.apply(&Gate::Ccx(q(0), q(1), q(2))).unwrap();
        assert!(t.global_phase().is_zero(), "one control unsatisfied");
        t.set_value(&[q(0), q(1)], 0b11).unwrap();
        t.apply(&Gate::Ccx(q(0), q(1), q(2))).unwrap();
        assert_eq!(t.global_phase(), Angle::HALF_TURN);
    }

    #[test]
    fn entangling_gates_error_out() {
        let mut t = BasisTracker::zeros(2);
        t.apply(&Gate::H(q(0))).unwrap();
        let err = t.apply(&Gate::Cx(q(0), q(1))).unwrap_err();
        assert!(matches!(err, SimError::UnsupportedEntanglement { .. }));

        let mut t = BasisTracker::zeros(2);
        t.apply(&Gate::H(q(0))).unwrap();
        t.apply(&Gate::H(q(1))).unwrap();
        let err = t.apply(&Gate::Cz(q(0), q(1))).unwrap_err();
        assert!(matches!(err, SimError::UnsupportedEntanglement { .. }));
    }

    #[test]
    fn measure_z_of_definite_bit_is_deterministic() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        b.x(r[0]);
        let _ = b.measure(r[0], Basis::Z);
        let circuit = b.finish();
        for seed in 0..8 {
            let mut t = BasisTracker::zeros(1);
            let ex = t.run(&circuit, &mut rng(seed)).unwrap();
            assert!(ex.outcome(0).unwrap());
        }
    }

    #[test]
    fn measure_z_of_minus_state_tracks_sign() {
        // |−⟩ measured in Z: outcome 1 carries amplitude −1/√2 → phase π.
        for seed in 0..16 {
            let mut t = BasisTracker::zeros(1);
            t.set_bit(q(0), true).unwrap();
            t.apply(&Gate::H(q(0))).unwrap(); // |−⟩
            let mut r = rng(seed);
            let mut draw = move |p: f64| r.gen_bool(p);
            let outcome = t.measure(q(0), Basis::Z, &mut draw).unwrap();
            assert_eq!(t.bit(q(0)).unwrap(), outcome);
            let expected = if outcome {
                Angle::HALF_TURN
            } else {
                Angle::ZERO
            };
            assert_eq!(t.global_phase(), expected);
        }
    }

    #[test]
    fn mbu_protocol_restores_zero_phase_both_branches() {
        // Lemma 4.1 end to end on a basis state, with Ug a CNOT computing
        // g(x) = x into the garbage qubit.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2); // q0 = x, q1 = garbage holding g(x) = x
        b.cx(r[0], r[1]); // compute garbage
                          // MBU: H, measure; if 1 then H, Ug, H, X.
        b.h(r[1]);
        let m = b.measure(r[1], Basis::Z);
        let (_, fix) = b.record(|b| {
            b.h(r[1]);
            b.cx(r[0], r[1]); // Ug
            b.h(r[1]);
            b.x(r[1]);
        });
        b.emit_conditional(m, &fix);
        let circuit = b.finish();

        let mut seen = [false, false];
        for seed in 0..32 {
            let mut t = BasisTracker::zeros(2);
            t.set_bit(q(0), true).unwrap(); // g(x) = 1, the interesting branch
            let ex = t.run(&circuit, &mut rng(seed)).unwrap();
            let outcome = ex.outcome(0).unwrap();
            seen[usize::from(outcome)] = true;
            assert!(!t.bit(q(1)).unwrap(), "garbage uncomputed");
            assert!(t.bit(q(0)).unwrap(), "data preserved");
            assert!(t.global_phase().is_zero(), "phase cancels exactly");
        }
        assert!(seen[0] && seen[1], "both outcomes exercised");
    }

    #[test]
    fn compiled_drops_are_noops_on_the_tracker() {
        // The compiled reclamation pass emits `Drop` for the measured MBU
        // garbage; the tracker has per-qubit state (nothing to compact), so
        // it must execute straight through the drop with the protocol's
        // invariants intact — which is what keeps cross-validation against
        // the reclaiming state vector meaningful.
        use mbu_circuit::CompiledCircuit;
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.ccx(r[0], r[1], r[2]);
        b.h(r[2]);
        let m = b.measure(r[2], Basis::Z);
        let (_, fix) = b.record(|b| {
            b.cz(r[0], r[1]);
            b.x(r[2]);
        });
        b.emit_conditional(m, &fix);
        let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
        assert!(compiled.reclaims_qubits(), "{compiled}");
        for seed in 0..16 {
            let mut t = BasisTracker::zeros(3);
            t.set_bit(q(0), true).unwrap();
            t.set_bit(q(1), true).unwrap();
            let mut r = rng(seed);
            let ex = Simulator::run_compiled(&mut t, &compiled, &mut r).unwrap();
            assert!(ex.outcome(0).is_ok());
            assert!(!t.bit(q(2)).unwrap(), "AND ancilla uncomputed");
            assert!(t.bit(q(0)).unwrap() && t.bit(q(1)).unwrap());
            assert!(t.global_phase().is_zero(), "seed {seed}");
            assert_eq!(
                Simulator::peak_amplitudes(&t),
                Some(2),
                "the AND ancilla's |±⟩ excursion is the occupancy peak"
            );
        }
    }

    #[test]
    fn occupancy_stats_count_x_mode_qubits() {
        let mut t = BasisTracker::zeros(300);
        assert_eq!(t.occupied(), 1);
        assert_eq!(Simulator::peak_amplitudes(&t), None, "no compiled run yet");
        for i in 0..70u32 {
            t.apply(&Gate::H(q(i))).unwrap();
        }
        assert_eq!(t.occupied(), u64::MAX, "2^70 saturates the counter");
        for i in 0..70u32 {
            t.apply(&Gate::H(q(i))).unwrap();
        }
        assert_eq!(t.occupied(), 1, "H is self-inverse in the census too");
        // Every other transition keeps the census exact: measurement
        // collapse, reset, set_bit over an X-mode qubit, swap.
        t.apply(&Gate::H(q(0))).unwrap();
        t.apply(&Gate::H(q(1))).unwrap();
        t.apply(&Gate::Swap(q(1), q(2))).unwrap();
        assert_eq!(t.occupied(), 4);
        let mut draw = |p: f64| p >= 0.5;
        t.measure(q(0), Basis::Z, &mut draw).unwrap();
        assert_eq!(t.occupied(), 2);
        t.reset(q(2), &mut draw).unwrap();
        assert_eq!(t.occupied(), 1);
        t.apply(&Gate::H(q(5))).unwrap();
        t.set_bit(q(5), false).unwrap();
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn fork_children_inherit_an_exact_census() {
        let mut t = BasisTracker::zeros(2);
        t.apply(&Gate::H(q(0))).unwrap();
        t.apply(&Gate::H(q(1))).unwrap();
        let Some(Fork::Split { one, .. }) = t.measure_fork(q(0), Basis::Z).unwrap() else {
            panic!("cross-basis measurement must split");
        };
        assert_eq!(t.occupied(), 2, "zero branch collapsed one qubit");
        let one = one.unwrap();
        assert_eq!(
            one.peak_amplitudes(),
            None,
            "children report no stale compiled-run peak"
        );
    }

    #[test]
    fn executed_counts_reflect_taken_branch() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        b.h(r[0]);
        let m = b.measure(r[0], Basis::Z);
        let (_, fix) = b.record(|b| b.x(r[0]));
        b.emit_conditional(m, &fix);
        let circuit = b.finish();

        let mut took = 0;
        let trials = 200;
        for seed in 0..trials {
            let mut t = BasisTracker::zeros(1);
            let ex = t.run(&circuit, &mut rng(seed)).unwrap();
            took += u64::from(ex.counts.x == 1);
            // Whatever branch: the X resets the qubit to |0⟩.
            assert!(!t.bit(q(0)).unwrap());
        }
        // Should be a fair coin, loosely.
        assert!(took > 50 && took < 150, "took {took}/{trials}");
    }

    #[test]
    fn wide_registers_work() {
        let n = 300;
        let t = BasisTracker::zeros(n);
        let qubits: Vec<QubitId> = (0..n as u32).map(QubitId).collect();
        let bits = t.bits(&qubits).unwrap();
        assert_eq!(bits.len(), n);
        assert!(t.value(&qubits[..128]).is_ok());
        assert!(t.value(&qubits).is_err(), "value() limited to 128 bits");
    }

    #[test]
    fn set_bit_out_of_range_errors_instead_of_panicking() {
        // Regression: this used to `.expect("qubit out of range")` and
        // abort the process on bad input; it now reports a typed error
        // and leaves the tracker untouched.
        let mut t = BasisTracker::zeros(3);
        assert!(matches!(
            t.set_bit(q(3), true),
            Err(SimError::OutOfRange { .. })
        ));
        assert_eq!(t.value(&[q(0), q(1), q(2)]).unwrap(), 0);
    }

    #[test]
    fn set_value_out_of_range_errors_instead_of_panicking() {
        // Regression twin for the register-wide front: any qubit past the
        // tracker's width fails the whole write with a typed error.
        let mut t = BasisTracker::zeros(3);
        assert!(matches!(
            t.set_value(&[q(1), q(7)], 3),
            Err(SimError::OutOfRange { .. })
        ));
    }
}
