//! The shared circuit executors: the interpreted walker over the [`Op`]
//! tree, and the compiled program-counter loop over a flat
//! [`CompiledCircuit`](mbu_circuit::CompiledCircuit) instruction stream.
//! Both resolve conditionals against the classical record and tally the
//! gates that actually ran, producing identical [`Executed`] records for a
//! lowered (pass-free) program.

use std::sync::OnceLock;

use mbu_circuit::{knobs, CompiledCircuit, FusedUnitary, Gate, GateCounts, Instr, Op};
use rand::{Rng, RngCore};

use crate::error::SimError;
use crate::simulator::Simulator;

/// Whether the `MBU_VERIFY` admission gate is on: executors then run the
/// static verifier (`mbu_circuit::verify`) on every compiled program
/// before the first instruction and refuse malformed streams with
/// [`SimError::VerificationRejected`]. Off by default — programs from
/// this workspace's compiler were already verified under the careful
/// profile; the knob is for streams of unknown provenance (or for
/// belt-and-braces release runs, where compile-time verification is
/// compiled out). Resolved once per process.
fn verify_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        knobs::switch(
            "MBU_VERIFY",
            std::env::var("MBU_VERIFY").ok().as_deref(),
            false,
        )
    })
}

/// Runs the admission gate on `compiled` when `MBU_VERIFY` is on.
pub(crate) fn admit_compiled(compiled: &CompiledCircuit) -> Result<(), SimError> {
    if verify_enabled() {
        compiled
            .verify()
            .map_err(|e| SimError::VerificationRejected { why: e.to_string() })?;
    }
    Ok(())
}

/// What a simulation run actually did.
///
/// `counts` tallies only operations that executed: a conditional block whose
/// classical bit read 0 contributes nothing. Averaging `counts` over seeded
/// runs reproduces the paper's "in expectation" columns empirically — the
/// [`ShotRunner`](crate::ShotRunner) does exactly that, in parallel.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Executed {
    /// Gates and measurements that actually ran.
    pub counts: GateCounts,
    /// The classical record: `Some(outcome)` per written bit.
    pub classical: Vec<Option<bool>>,
}

impl Executed {
    /// The outcome of classical bit `i`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnwrittenClassicalBit`] if no measurement wrote
    /// bit `i` during the run.
    pub fn outcome(&self, i: usize) -> Result<bool, SimError> {
        self.classical
            .get(i)
            .copied()
            .flatten()
            .ok_or(SimError::UnwrittenClassicalBit { clbit: i as u32 })
    }
}

/// The shared width guard: every `run_compiled` entry point rejects a
/// program wider than the state with the same [`SimError::OutOfRange`]
/// message, so backends cannot drift apart in what they report.
pub(crate) fn check_width(program_qubits: usize, state_qubits: usize) -> Result<(), SimError> {
    if program_qubits > state_qubits {
        return Err(SimError::OutOfRange {
            what: format!("{program_qubits}-qubit compiled program on {state_qubits}-qubit state"),
        });
    }
    Ok(())
}

/// Executes `ops` on `sim`, recording outcomes and executed counts.
///
/// Works through the object-safe [`Simulator`] surface so one executor
/// serves every backend, boxed or not.
pub(crate) fn execute_dyn<S: Simulator + ?Sized>(
    sim: &mut S,
    ops: &[Op],
    rng: &mut dyn RngCore,
    executed: &mut Executed,
) -> Result<(), SimError> {
    for op in ops {
        match op {
            Op::Gate(g) => {
                sim.apply_gate(g)?;
                executed.counts.record_gate(g);
            }
            Op::Measure {
                qubit,
                basis,
                clbit,
            } => {
                let mut draw = |p1: f64| rng.gen_bool(p1.clamp(0.0, 1.0));
                let outcome = sim.measure(*qubit, *basis, &mut draw)?;
                executed.counts.record_measurement(*basis);
                let idx = clbit.index();
                if executed.classical.len() <= idx {
                    executed.classical.resize(idx + 1, None);
                }
                executed.classical[idx] = Some(outcome);
            }
            Op::Conditional { clbit, ops } => {
                let bit = executed
                    .classical
                    .get(clbit.index())
                    .copied()
                    .flatten()
                    .ok_or(SimError::UnwrittenClassicalBit { clbit: clbit.0 })?;
                if bit {
                    execute_dyn(sim, ops, rng, executed)?;
                }
            }
            Op::Reset(qubit) => {
                let mut draw = |p1: f64| rng.gen_bool(p1.clamp(0.0, 1.0));
                sim.reset(*qubit, &mut draw)?;
                executed.counts.reset += 1;
            }
        }
    }
    Ok(())
}

/// Executes a compiled program on `sim`: a single program-counter loop, no
/// recursion, no tree walk. `BranchUnless` reads the classical record like
/// the interpreted executor's conditionals (reading an unwritten bit is an
/// error even when the branch would be taken, matching `execute_dyn`).
pub(crate) fn execute_compiled<S: Simulator + ?Sized>(
    sim: &mut S,
    compiled: &CompiledCircuit,
    rng: &mut dyn RngCore,
    executed: &mut Executed,
) -> Result<(), SimError> {
    execute_compiled_core(
        sim,
        compiled,
        rng,
        executed,
        |s, g| s.apply_gate(g),
        // No dense kernel: replay the block's constituent gates — the
        // unitary (and, for amplitude backends, every intermediate
        // rounding step) is exactly the unfused stream's.
        |s, fu| {
            for g in fu.global_gates() {
                s.apply_gate(&g)?;
            }
            Ok(())
        },
        |_, q| Ok(q),
        |_, _| {},
        |_, _| Ok(()),
    )
}

/// The compiled program-counter loop, parametrised over gate application
/// (`apply`), fused-block application (`apply_fused`), a hook run before
/// every non-unitary instruction (`before_nonunitary`), a handler for
/// [`Instr::Drop`] (`on_drop`) and a per-instruction hook (`at_pc`). Backends with deferred per-gate state —
/// the state vector's bit-flip frame — route through this with a custom
/// `apply` and a flush hook, so measurement, reset, branch and
/// classical-record semantics live in exactly one place.
///
/// `apply_fused` executes one [`Instr::Fused`] dense block; the executed
/// tally always records the block's constituent gates here, so fusion is
/// invisible in [`Executed`] statistics whatever the backend does.
/// `before_nonunitary` receives the measured/reset qubit and returns the
/// qubit the backend call should address: the reclaiming state-vector
/// executor uses it to translate a logical qubit to its physical bit
/// position in the compacted amplitude array (and to materialise it first
/// if it had been factored out) — it is fallible because that translation
/// can reject malformed positions. Plain backends return the qubit
/// unchanged. `on_drop` is the reclamation hook; for backends without a
/// compaction story a drop is a semantic no-op and the default handler
/// does nothing.
///
/// `at_pc` fires at the top of every loop iteration, before the
/// instruction at `pc` dispatches. Because every program point the loop
/// can land on after a barrier or branch is a segment start (see
/// `CompiledCircuit::segments`), a backend that re-plans its state
/// representation per segment (the hybrid auto backend) keys a
/// segment-start table on the hook's `pc`; everyone else passes a no-op.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_compiled_core<S: Simulator + ?Sized>(
    sim: &mut S,
    compiled: &CompiledCircuit,
    rng: &mut dyn RngCore,
    executed: &mut Executed,
    mut apply: impl FnMut(&mut S, &Gate) -> Result<(), SimError>,
    mut apply_fused: impl FnMut(&mut S, &FusedUnitary) -> Result<(), SimError>,
    mut before_nonunitary: impl FnMut(
        &mut S,
        mbu_circuit::QubitId,
    ) -> Result<mbu_circuit::QubitId, SimError>,
    mut on_drop: impl FnMut(&mut S, mbu_circuit::QubitId),
    mut at_pc: impl FnMut(&mut S, usize) -> Result<(), SimError>,
) -> Result<(), SimError> {
    admit_compiled(compiled)?;
    let instrs = compiled.instrs();
    let mut pc = 0usize;
    while let Some(instr) = instrs.get(pc) {
        at_pc(sim, pc)?;
        match instr {
            Instr::Gate(g) => {
                apply(sim, g)?;
                executed.counts.record_gate(g);
            }
            Instr::Fused(idx) => {
                let fu = &compiled.fused_unitaries()[*idx as usize];
                apply_fused(sim, fu)?;
                // Tally the constituents (family-only, so local operand
                // renaming is irrelevant): executed counts match the
                // unfused stream exactly.
                for g in fu.gates() {
                    executed.counts.record_gate(g);
                }
            }
            Instr::Measure {
                qubit,
                basis,
                clbit,
            } => {
                let target = before_nonunitary(sim, *qubit)?;
                let mut draw = |p1: f64| rng.gen_bool(p1.clamp(0.0, 1.0));
                let outcome = sim.measure(target, *basis, &mut draw)?;
                executed.counts.record_measurement(*basis);
                let idx = clbit.index();
                if executed.classical.len() <= idx {
                    executed.classical.resize(idx + 1, None);
                }
                executed.classical[idx] = Some(outcome);
            }
            Instr::Reset(qubit) => {
                let target = before_nonunitary(sim, *qubit)?;
                let mut draw = |p1: f64| rng.gen_bool(p1.clamp(0.0, 1.0));
                sim.reset(target, &mut draw)?;
                executed.counts.reset += 1;
            }
            Instr::Drop(qubit) => on_drop(sim, *qubit),
            Instr::BranchUnless { clbit, skip } => {
                let bit = executed
                    .classical
                    .get(clbit.index())
                    .copied()
                    .flatten()
                    .ok_or(SimError::UnwrittenClassicalBit { clbit: clbit.0 })?;
                if !bit {
                    pc += *skip as usize;
                }
            }
        }
        pc += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::{Angle, Basis, Circuit, ClbitId, Gate, QubitId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A backend that records nothing and answers measurements with a
    /// scripted sequence.
    struct Scripted {
        outcomes: Vec<bool>,
        next: usize,
        gates_seen: usize,
    }

    impl Simulator for Scripted {
        fn num_qubits(&self) -> usize {
            u32::MAX as usize
        }

        fn apply_gate(&mut self, _gate: &Gate) -> Result<(), SimError> {
            self.gates_seen += 1;
            Ok(())
        }

        fn measure(
            &mut self,
            _qubit: QubitId,
            _basis: Basis,
            _draw: &mut dyn FnMut(f64) -> bool,
        ) -> Result<bool, SimError> {
            let r = self.outcomes[self.next];
            self.next += 1;
            Ok(r)
        }

        fn reset(
            &mut self,
            _qubit: QubitId,
            _draw: &mut dyn FnMut(f64) -> bool,
        ) -> Result<(), SimError> {
            Ok(())
        }

        fn set_bit(&mut self, _q: QubitId, _value: bool) -> Result<(), SimError> {
            Ok(())
        }

        fn bit(&self, _q: QubitId) -> Result<bool, SimError> {
            Ok(false)
        }

        fn global_phase(&self) -> Option<Angle> {
            None
        }
    }

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn conditionals_skip_when_bit_is_zero() {
        let ops = vec![
            Op::Measure {
                qubit: q(0),
                basis: Basis::Z,
                clbit: ClbitId(0),
            },
            Op::Conditional {
                clbit: ClbitId(0),
                ops: vec![Op::Gate(Gate::X(q(0)))],
            },
        ];
        let mut rng = StdRng::seed_from_u64(0);

        let mut backend = Scripted {
            outcomes: vec![false],
            next: 0,
            gates_seen: 0,
        };
        let mut ex = Executed::default();
        execute_dyn(&mut backend, &ops, &mut rng, &mut ex).unwrap();
        assert_eq!(backend.gates_seen, 0);
        assert_eq!(ex.counts.x, 0);
        assert!(!ex.outcome(0).unwrap());

        let mut backend = Scripted {
            outcomes: vec![true],
            next: 0,
            gates_seen: 0,
        };
        let mut ex = Executed::default();
        execute_dyn(&mut backend, &ops, &mut rng, &mut ex).unwrap();
        assert_eq!(backend.gates_seen, 1);
        assert_eq!(ex.counts.x, 1);
    }

    #[test]
    fn unwritten_classical_bit_is_an_error() {
        let ops = vec![Op::Conditional {
            clbit: ClbitId(5),
            ops: vec![],
        }];
        let mut backend = Scripted {
            outcomes: vec![],
            next: 0,
            gates_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut ex = Executed::default();
        let err = execute_dyn(&mut backend, &ops, &mut rng, &mut ex).unwrap_err();
        assert_eq!(err, SimError::UnwrittenClassicalBit { clbit: 5 });
    }

    #[test]
    fn compiled_branches_mirror_interpreted_conditionals() {
        let ops = vec![
            Op::Measure {
                qubit: q(0),
                basis: Basis::Z,
                clbit: ClbitId(0),
            },
            Op::Conditional {
                clbit: ClbitId(0),
                ops: vec![Op::Gate(Gate::X(q(0)))],
            },
            Op::Gate(Gate::H(q(1))),
        ];
        let circuit = Circuit::from_ops(2, 1, ops);
        let compiled = CompiledCircuit::lower(&circuit).unwrap();
        let mut rng = StdRng::seed_from_u64(0);

        for (outcome, expect_gates) in [(false, 1), (true, 2)] {
            let mut backend = Scripted {
                outcomes: vec![outcome],
                next: 0,
                gates_seen: 0,
            };
            let mut ex = Executed::default();
            execute_compiled(&mut backend, &compiled, &mut rng, &mut ex).unwrap();
            assert_eq!(backend.gates_seen, expect_gates, "outcome {outcome}");
            assert_eq!(ex.outcome(0).unwrap(), outcome);
            assert_eq!(ex.counts.h, 1);
        }
    }

    #[test]
    fn compiled_branch_on_unwritten_bit_is_an_error() {
        // Hand-built program: a branch guarding nothing, bit never written.
        let circuit = Circuit::from_ops(
            1,
            1,
            vec![Op::Conditional {
                clbit: ClbitId(0),
                ops: vec![],
            }],
        );
        let compiled = CompiledCircuit::lower(&circuit).unwrap();
        let mut backend = Scripted {
            outcomes: vec![],
            next: 0,
            gates_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut ex = Executed::default();
        let err = execute_compiled(&mut backend, &compiled, &mut rng, &mut ex).unwrap_err();
        assert_eq!(err, SimError::UnwrittenClassicalBit { clbit: 0 });
    }

    #[test]
    fn drops_are_noops_for_generic_backends() {
        // A measured-then-dead qubit gets an `Instr::Drop` from the default
        // passes; backends without a compaction story (like this scripted
        // one, or the basis tracker) must execute straight through it with
        // identical records and counts.
        let ops = vec![
            Op::Measure {
                qubit: q(0),
                basis: Basis::Z,
                clbit: ClbitId(0),
            },
            Op::Gate(Gate::H(q(1))),
        ];
        let circuit = Circuit::from_ops(2, 1, ops);
        let compiled = CompiledCircuit::compile(&circuit).unwrap();
        assert!(compiled.reclaims_qubits(), "{compiled}");
        let mut backend = Scripted {
            outcomes: vec![true],
            next: 0,
            gates_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut ex = Executed::default();
        execute_compiled(&mut backend, &compiled, &mut rng, &mut ex).unwrap();
        assert_eq!(backend.gates_seen, 1);
        assert!(ex.outcome(0).unwrap());
        assert_eq!(ex.counts.h, 1);
    }

    #[test]
    fn executor_works_through_a_boxed_dyn_simulator() {
        let ops = vec![Op::Gate(Gate::X(q(0)))];
        let mut boxed: Box<dyn Simulator> = Box::new(Scripted {
            outcomes: vec![],
            next: 0,
            gates_seen: 0,
        });
        let mut rng = StdRng::seed_from_u64(0);
        let mut ex = Executed::default();
        execute_dyn(boxed.as_mut(), &ops, &mut rng, &mut ex).unwrap();
        assert_eq!(ex.counts.x, 1);
    }
}
