//! The shared circuit executor: walks ops, resolves conditionals against the
//! classical record, and tallies the gates that actually ran.

use mbu_circuit::{GateCounts, Op};
use rand::{Rng, RngCore};

use crate::error::SimError;
use crate::simulator::Simulator;

/// What a simulation run actually did.
///
/// `counts` tallies only operations that executed: a conditional block whose
/// classical bit read 0 contributes nothing. Averaging `counts` over seeded
/// runs reproduces the paper's "in expectation" columns empirically — the
/// [`ShotRunner`](crate::ShotRunner) does exactly that, in parallel.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Executed {
    /// Gates and measurements that actually ran.
    pub counts: GateCounts,
    /// The classical record: `Some(outcome)` per written bit.
    pub classical: Vec<Option<bool>>,
}

impl Executed {
    /// The outcome of classical bit `i`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnwrittenClassicalBit`] if no measurement wrote
    /// bit `i` during the run.
    pub fn outcome(&self, i: usize) -> Result<bool, SimError> {
        self.classical
            .get(i)
            .copied()
            .flatten()
            .ok_or(SimError::UnwrittenClassicalBit { clbit: i as u32 })
    }
}

/// Executes `ops` on `sim`, recording outcomes and executed counts.
///
/// Works through the object-safe [`Simulator`] surface so one executor
/// serves every backend, boxed or not.
pub(crate) fn execute_dyn<S: Simulator + ?Sized>(
    sim: &mut S,
    ops: &[Op],
    rng: &mut dyn RngCore,
    executed: &mut Executed,
) -> Result<(), SimError> {
    for op in ops {
        match op {
            Op::Gate(g) => {
                sim.apply_gate(g)?;
                executed.counts.record_gate(g);
            }
            Op::Measure {
                qubit,
                basis,
                clbit,
            } => {
                let mut draw = |p1: f64| rng.gen_bool(p1.clamp(0.0, 1.0));
                let outcome = sim.measure(*qubit, *basis, &mut draw)?;
                executed.counts.record_measurement(*basis);
                let idx = clbit.index();
                if executed.classical.len() <= idx {
                    executed.classical.resize(idx + 1, None);
                }
                executed.classical[idx] = Some(outcome);
            }
            Op::Conditional { clbit, ops } => {
                let bit = executed
                    .classical
                    .get(clbit.index())
                    .copied()
                    .flatten()
                    .ok_or(SimError::UnwrittenClassicalBit { clbit: clbit.0 })?;
                if bit {
                    execute_dyn(sim, ops, rng, executed)?;
                }
            }
            Op::Reset(qubit) => {
                let mut draw = |p1: f64| rng.gen_bool(p1.clamp(0.0, 1.0));
                sim.reset(*qubit, &mut draw)?;
                executed.counts.reset += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::{Angle, Basis, ClbitId, Gate, QubitId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A backend that records nothing and answers measurements with a
    /// scripted sequence.
    struct Scripted {
        outcomes: Vec<bool>,
        next: usize,
        gates_seen: usize,
    }

    impl Simulator for Scripted {
        fn num_qubits(&self) -> usize {
            u32::MAX as usize
        }

        fn apply_gate(&mut self, _gate: &Gate) -> Result<(), SimError> {
            self.gates_seen += 1;
            Ok(())
        }

        fn measure(
            &mut self,
            _qubit: QubitId,
            _basis: Basis,
            _draw: &mut dyn FnMut(f64) -> bool,
        ) -> Result<bool, SimError> {
            let r = self.outcomes[self.next];
            self.next += 1;
            Ok(r)
        }

        fn reset(
            &mut self,
            _qubit: QubitId,
            _draw: &mut dyn FnMut(f64) -> bool,
        ) -> Result<(), SimError> {
            Ok(())
        }

        fn set_bit(&mut self, _q: QubitId, _value: bool) -> Result<(), SimError> {
            Ok(())
        }

        fn bit(&self, _q: QubitId) -> Result<bool, SimError> {
            Ok(false)
        }

        fn global_phase(&self) -> Option<Angle> {
            None
        }
    }

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn conditionals_skip_when_bit_is_zero() {
        let ops = vec![
            Op::Measure {
                qubit: q(0),
                basis: Basis::Z,
                clbit: ClbitId(0),
            },
            Op::Conditional {
                clbit: ClbitId(0),
                ops: vec![Op::Gate(Gate::X(q(0)))],
            },
        ];
        let mut rng = StdRng::seed_from_u64(0);

        let mut backend = Scripted {
            outcomes: vec![false],
            next: 0,
            gates_seen: 0,
        };
        let mut ex = Executed::default();
        execute_dyn(&mut backend, &ops, &mut rng, &mut ex).unwrap();
        assert_eq!(backend.gates_seen, 0);
        assert_eq!(ex.counts.x, 0);
        assert!(!ex.outcome(0).unwrap());

        let mut backend = Scripted {
            outcomes: vec![true],
            next: 0,
            gates_seen: 0,
        };
        let mut ex = Executed::default();
        execute_dyn(&mut backend, &ops, &mut rng, &mut ex).unwrap();
        assert_eq!(backend.gates_seen, 1);
        assert_eq!(ex.counts.x, 1);
    }

    #[test]
    fn unwritten_classical_bit_is_an_error() {
        let ops = vec![Op::Conditional {
            clbit: ClbitId(5),
            ops: vec![],
        }];
        let mut backend = Scripted {
            outcomes: vec![],
            next: 0,
            gates_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut ex = Executed::default();
        let err = execute_dyn(&mut backend, &ops, &mut rng, &mut ex).unwrap_err();
        assert_eq!(err, SimError::UnwrittenClassicalBit { clbit: 5 });
    }

    #[test]
    fn executor_works_through_a_boxed_dyn_simulator() {
        let ops = vec![Op::Gate(Gate::X(q(0)))];
        let mut boxed: Box<dyn Simulator> = Box::new(Scripted {
            outcomes: vec![],
            next: 0,
            gates_seen: 0,
        });
        let mut rng = StdRng::seed_from_u64(0);
        let mut ex = Executed::default();
        execute_dyn(boxed.as_mut(), &ops, &mut rng, &mut ex).unwrap();
        assert_eq!(ex.counts.x, 1);
    }
}
