//! The public backend abstraction: every simulator behind one trait.
//!
//! [`Simulator`] is the object-safe seam between circuit execution and the
//! concrete state representations. It unifies what used to be a private
//! `Backend` trait (gate application, measurement, reset) with the state
//! access every harness needs (`set_value` / `value` / `bit` /
//! `global_phase`), so benchmarks, ensemble runs and cross-backend tests
//! can be written once against `dyn Simulator` and executed on either the
//! [`BasisTracker`](crate::BasisTracker) or the
//! [`StateVector`](crate::StateVector) — or any future backend (stabilizer,
//! sharded state vector) that implements the trait.

use mbu_circuit::{Angle, Basis, Circuit, CompiledCircuit, Gate, QubitId};
use rand::RngCore;

use crate::error::SimError;
use crate::exec::{self, Executed};

/// The outcome of a forked measurement (see [`Simulator::measure_fork`]).
///
/// Forking is the primitive behind branch-tree execution
/// ([`BranchEnsemble`](crate::BranchEnsemble)): instead of sampling one
/// outcome, the backend produces *both* post-measurement branches so each
/// unique measurement history is simulated exactly once.
pub enum Fork {
    /// The measurement is deterministic: the state is unchanged and the
    /// backend would consume **no** randomness for it (e.g. the basis
    /// tracker measuring a definite bit in its own basis). No branch point
    /// exists.
    Definite(bool),
    /// The measurement consumes a draw: the receiver has collapsed to
    /// the outcome-`false` branch, `one` holds the outcome-`true` branch,
    /// and `p_one` is the Born probability of outcome 1 — exactly the
    /// value the backend would have handed to the sampling callback, so a
    /// per-shot run can be replayed bit-identically by drawing
    /// `gen_bool(p_one)` at every `Split` along its path.
    Split {
        /// Born probability of outcome 1, as the sampling path computes it.
        p_one: f64,
        /// The outcome-`true` branch (renormalised post-measurement
        /// state). `None` exactly when `p_one == 0.0`: the branch is
        /// impossible, schedulers prune it without looking, and the
        /// backend needn't pay an amplitude-array allocation to
        /// materialise a state nobody can reach.
        one: Option<Box<dyn Simulator + Send>>,
    },
}

/// A fork whose outcome-1 branch keeps its concrete state type.
///
/// The typed twin of [`Fork`]: backends implement their fork logic once
/// against their own state type, and the trait's
/// [`measure_fork`](Simulator::measure_fork) wraps the branch into a
/// `Box<dyn Simulator + Send>`. Wrapper backends (the hybrid auto
/// backend) call the concrete method instead, so forked branches stay
/// wrapped — each branch inherits the wrapper's planning state rather
/// than escaping as a bare inner state.
pub(crate) enum ConcreteFork<S> {
    /// Deterministic measurement: state untouched, no randomness used.
    Definite(bool),
    /// The receiver collapsed to the outcome-0 branch; `one` is the
    /// outcome-1 branch (`None` exactly when `p_one == 0.0`).
    Split {
        /// Born probability of outcome 1.
        p_one: f64,
        /// The outcome-`true` branch.
        one: Option<S>,
    },
}

impl<S: Simulator + Send + 'static> ConcreteFork<S> {
    /// Type-erases the branch into the public [`Fork`] shape.
    pub(crate) fn into_fork(self) -> Fork {
        match self {
            ConcreteFork::Definite(b) => Fork::Definite(b),
            ConcreteFork::Split { p_one, one } => Fork::Split {
                p_one,
                one: one.map(|s| Box::new(s) as Box<dyn Simulator + Send>),
            },
        }
    }
}

/// A quantum-circuit simulation backend.
///
/// Object-safe: harnesses hold `Box<dyn Simulator>` and stay agnostic of
/// the state representation. The required methods split in two groups:
///
/// * **execution primitives** ([`apply_gate`](Simulator::apply_gate),
///   [`measure`](Simulator::measure), [`reset`](Simulator::reset)) consumed
///   by the shared executor behind [`run`](Simulator::run);
/// * **state access** ([`set_bit`](Simulator::set_bit) /
///   [`set_value`](Simulator::set_value) to prepare inputs,
///   [`bit`](Simulator::bit) / [`value`](Simulator::value) /
///   [`global_phase`](Simulator::global_phase) to read results).
///
/// # Examples
///
/// Running the same circuit on both backends through the trait:
///
/// ```
/// use mbu_circuit::CircuitBuilder;
/// use mbu_sim::{BasisTracker, Simulator, StateVector};
/// use rand::SeedableRng;
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 2);
/// b.cx(q[0], q[1]);
/// let circuit = b.finish();
///
/// let mut backends: Vec<Box<dyn Simulator>> = vec![
///     Box::new(BasisTracker::zeros(2)),
///     Box::new(StateVector::zeros(2).unwrap()),
/// ];
/// for sim in &mut backends {
///     sim.set_value(q.qubits(), 0b01).unwrap();
///     let mut rng = rand::rngs::StdRng::seed_from_u64(0);
///     sim.run(&circuit, &mut rng).unwrap();
///     assert_eq!(sim.value(q.qubits()).unwrap(), 0b11);
/// }
/// ```
pub trait Simulator {
    /// The number of qubits in the state.
    fn num_qubits(&self) -> usize;

    /// Applies one gate.
    ///
    /// # Errors
    ///
    /// Backend-specific: the basis tracker reports
    /// [`SimError::UnsupportedEntanglement`] for gates leaving its
    /// fragment.
    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError>;

    /// Applies one compiled fusion block
    /// ([`mbu_circuit::FusedUnitary`]).
    ///
    /// The default replays the block's constituent gates through
    /// [`apply_gate`](Simulator::apply_gate) — bitwise the unfused
    /// stream, since fusion never reorders gates. Amplitude backends
    /// override it with a single-sweep kernel that produces bit-identical
    /// amplitudes; either way the caller tallies the constituents, so the
    /// choice is invisible in executed-gate statistics.
    ///
    /// # Errors
    ///
    /// As [`apply_gate`](Simulator::apply_gate), plus backend-specific
    /// block validation (e.g. [`SimError::InvalidFusedBlock`]).
    fn apply_fused(&mut self, block: &mbu_circuit::FusedUnitary) -> Result<(), SimError> {
        for g in block.global_gates() {
            self.apply_gate(&g)?;
        }
        Ok(())
    }

    /// Measures `qubit` in `basis`; `draw(p1)` must return `true` with
    /// probability `p1` (the backend computes the Born probability of
    /// outcome 1).
    ///
    /// # Errors
    ///
    /// Backend-specific measurement failures.
    fn measure(
        &mut self,
        qubit: QubitId,
        basis: Basis,
        draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError>;

    /// Resets `qubit` to `|0⟩` (measure-and-flip semantics).
    ///
    /// # Errors
    ///
    /// Backend-specific reset failures.
    fn reset(&mut self, qubit: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> Result<(), SimError>;

    /// Forks the state at a measurement instead of sampling it: on
    /// `Ok(Some(Fork::Split { p_one, one }))` the receiver has become the
    /// outcome-0 branch, `one` is the outcome-1 branch and `p_one` its
    /// probability; `Ok(Some(Fork::Definite(b)))` reports a measurement
    /// that is deterministic for this backend (state untouched, no
    /// randomness would be consumed). Every branch with nonzero
    /// probability must be **bit-identical** to what
    /// [`measure`](Simulator::measure) would leave for the corresponding
    /// forced outcome, so branch-tree execution can replay per-shot runs
    /// exactly; a branch with probability exactly 0 is only guaranteed to
    /// carry (numerically) no mass — schedulers prune it without looking.
    ///
    /// The default returns `Ok(None)`: the backend does not support
    /// branch-sharing execution, and schedulers fall back to per-shot
    /// Monte Carlo.
    ///
    /// # Errors
    ///
    /// As [`measure`](Simulator::measure), for backends that do fork.
    fn measure_fork(&mut self, qubit: QubitId, basis: Basis) -> Result<Option<Fork>, SimError> {
        let _ = (qubit, basis);
        Ok(None)
    }

    /// Sets qubit `q` to the computational-basis bit `value`.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfRange`] if `q` is outside the state;
    /// [`SimError::ReadOfSuperposedQubit`] if the qubit holds no definite
    /// bit the backend could overwrite (state-vector backend only).
    fn set_bit(&mut self, q: QubitId, value: bool) -> Result<(), SimError>;

    /// Writes the little-endian bits of `value` into `qubits`.
    ///
    /// # Errors
    ///
    /// As [`set_bit`](Simulator::set_bit), for any of the qubits.
    fn set_value(&mut self, qubits: &[QubitId], value: u128) -> Result<(), SimError> {
        for (i, q) in qubits.iter().enumerate() {
            self.set_bit(*q, i < 128 && (value >> i) & 1 == 1)?;
        }
        Ok(())
    }

    /// Reads qubit `q`'s computational bit.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfRange`] if `q` is outside the state;
    /// [`SimError::ReadOfSuperposedQubit`] if the qubit holds no definite
    /// bit.
    fn bit(&self, q: QubitId) -> Result<bool, SimError>;

    /// Reads the little-endian integer held by `qubits`.
    ///
    /// # Errors
    ///
    /// As [`bit`](Simulator::bit), plus [`SimError::OutOfRange`] for
    /// registers wider than 128 bits.
    fn value(&self, qubits: &[QubitId]) -> Result<u128, SimError> {
        if qubits.len() > 128 {
            return Err(SimError::OutOfRange {
                what: format!("register of width {}", qubits.len()),
            });
        }
        let mut v = 0u128;
        for (i, q) in qubits.iter().enumerate() {
            if self.bit(*q)? {
                v |= 1u128 << i;
            }
        }
        Ok(v)
    }

    /// The peak number of amplitudes (or analogous state entries) the most
    /// recent compiled run operated on, when the backend tracks it.
    ///
    /// The state vector reports its live working set: the full `2^n` on
    /// the non-reclaiming engine, the largest compacted array when qubit
    /// reclamation was active. Backends with per-qubit state (the basis
    /// tracker) return `None`. The [`ShotRunner`](crate::ShotRunner) folds
    /// this into per-ensemble peak-memory statistics.
    fn peak_amplitudes(&self) -> Option<u64> {
        None
    }

    /// The peak number of *occupied* state entries the most recent
    /// compiled run reached, when the backend tracks one.
    ///
    /// Where [`peak_amplitudes`](Simulator::peak_amplitudes) reports the
    /// allocated working set (the dense backend's full `2^n` array), this
    /// reports logical occupancy: the sparse backend's high-water entry
    /// count, the basis tracker's `2^(X-mode qubits)` branch bound, the
    /// hybrid backend's fold across its representation phases. Branch-tree
    /// execution aggregates it per leaf so shared-trajectory runs report
    /// peak statistics too.
    fn occupancy_peak(&self) -> Option<u64> {
        None
    }

    /// Hook fired when a compiled-program executor enters the
    /// deterministic segment `start..end` of `compiled` (see
    /// `CompiledCircuit::segments`).
    ///
    /// Backends that adapt their state representation mid-run (the hybrid
    /// auto backend) re-plan here — inspecting the segment's structure and
    /// their live occupancy, and converting representations when the
    /// segment would run cheaper elsewhere. The default does nothing:
    /// fixed-representation backends have nothing to plan.
    ///
    /// # Errors
    ///
    /// Backend-specific conversion failures.
    fn plan_segment(
        &mut self,
        compiled: &CompiledCircuit,
        start: usize,
        end: usize,
    ) -> Result<(), SimError> {
        let _ = (compiled, start, end);
        Ok(())
    }

    /// Requests `threads` intra-state amplitude worker lanes for
    /// subsequent gate execution, where the backend supports them.
    ///
    /// The state vector honours this (its chunk-parallel kernels then
    /// split each gate's sweep across a persistent worker pool —
    /// bit-identical results at any lane count); per-qubit backends
    /// ignore it. The [`ShotRunner`](crate::ShotRunner) calls this on
    /// every freshly built simulator to divide one thread budget between
    /// shot-level and amplitude-level parallelism.
    fn set_amp_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// The exact dyadic global phase of the state, when the backend can
    /// produce one.
    ///
    /// The basis tracker always can; the state vector reports the phase of
    /// the dominant amplitude when the state is (numerically) a single
    /// basis state with a dyadic phase, and `None` otherwise.
    fn global_phase(&self) -> Option<Angle>;

    /// Runs an adaptive circuit, sampling measurement outcomes from `rng`,
    /// and reports what actually executed.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfRange`] if the circuit is wider than the state, or
    /// any backend error from the executed operations.
    fn run(&mut self, circuit: &Circuit, rng: &mut dyn RngCore) -> Result<Executed, SimError> {
        if circuit.num_qubits() > self.num_qubits() {
            return Err(SimError::OutOfRange {
                what: format!(
                    "{}-qubit circuit on {}-qubit state",
                    circuit.num_qubits(),
                    self.num_qubits()
                ),
            });
        }
        let mut executed = Executed::default();
        exec::execute_dyn(self, circuit.ops(), rng, &mut executed)?;
        Ok(executed)
    }

    /// Runs a pre-compiled program: a flat program-counter loop with no
    /// per-shot tree walk. Compile once with
    /// [`CompiledCircuit::lower`] (exact operation sequence) or
    /// [`CompiledCircuit::compile`] (exact peephole passes), then execute
    /// it any number of times — the program is immutable and freely
    /// shareable across threads.
    ///
    /// For a lowered (pass-free) program this produces bit-identical
    /// results to [`run`](Simulator::run) given the same `rng` stream.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfRange`] if the program is wider than the state, or
    /// any backend error from the executed instructions.
    fn run_compiled(
        &mut self,
        compiled: &CompiledCircuit,
        rng: &mut dyn RngCore,
    ) -> Result<Executed, SimError> {
        exec::check_width(compiled.num_qubits(), self.num_qubits())?;
        let mut executed = Executed::default();
        exec::execute_compiled(self, compiled, rng, &mut executed)?;
        Ok(executed)
    }
}
