//! Branch-sharing shot ensembles: the branch-tree execution engine.
//!
//! The paper's MBU circuits are long deterministic arithmetic blocks
//! punctuated by a handful of mid-circuit ancilla measurements. The
//! [`ShotRunner`](crate::ShotRunner) re-executes the entire deterministic
//! prefix from scratch for every shot; this module shares it instead. The
//! compiled program's segmentation ([`CompiledCircuit::segments`]) yields
//! deterministic unitary runs between non-unitary barriers, and the
//! backends' [`measure_fork`](Simulator::measure_fork) produces *both*
//! post-measurement branches at each barrier — so [`BranchEnsemble`] walks
//! the resulting **outcome tree**, executing each unique measurement
//! history exactly once:
//!
//! * **exact mode** ([`BranchEnsemble::distribution`]) — consumes no
//!   randomness at all and returns the full outcome/record distribution
//!   with weights from the branch probabilities: Monte-Carlo answers with
//!   zero sampling noise;
//! * **sampled mode** ([`BranchEnsemble::run`]) — draws shot counts per
//!   leaf by replaying every shot's seeded RNG stream against the tree's
//!   branch probabilities (an exact multinomial sample over the leaves),
//!   producing an [`Ensemble`] whose classical aggregates are
//!   **bit-identical** to per-shot [`ShotRunner`](crate::ShotRunner)
//!   execution with the same master seed: the fork probabilities are the
//!   very values the sampling path would have handed to `gen_bool`, in the
//!   same order along every path.
//!
//! Branches whose conditional probability falls below the floor
//! (`MBU_BRANCH_EPS`, default `1e-12`, `0` = full expansion down to
//! exactly-impossible branches) are pruned; their mass is tracked in
//! [`BranchDistribution::pruned_mass`], and a replayed shot that lands in
//! pruned territory quietly falls back to per-shot execution of exactly
//! that shot. When the tree would exceed the node budget, the sampled mode
//! falls back to per-shot Monte Carlo wholesale (the exact mode reports
//! [`SimError::BranchBudgetExceeded`]).
//!
//! The engine reuses the single thread budget of the shot engine: active
//! tree leaves are scheduled like shots (`w = min(leaves, B)` workers) and
//! each leaf's state runs its amplitude kernels with the leftover
//! `⌊B / w⌋` lanes, so a lone deep branch still saturates the machine.

use std::collections::BTreeMap;
use std::thread;

use mbu_circuit::{Basis, Circuit, CompiledCircuit, Gate, Instr, PassConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;
use crate::exec::Executed;
use crate::shots::{
    count_fields, resolve_threads, shot_seed, split_budget, Accumulator, CountStats, Ensemble,
    ShotRunner, DEFAULT_MASTER_SEED, NFIELDS,
};
use crate::simulator::{Fork, Simulator};

/// Default ceiling on materialised tree nodes (forks + leaves + pending
/// branches) before the engine declares the circuit too branchy for
/// tree execution: 4096 nodes cover 12 fully-random fork points, far past
/// any Table-1 workload (MBU modular adders fork a handful of times).
pub const DEFAULT_NODE_BUDGET: usize = 4096;

/// Default pruning floor for a branch's conditional probability, and the
/// ceiling [`BranchEnsemble::with_eps`] clamps to (pruning both children
/// of a fork must stay impossible).
const DEFAULT_BRANCH_EPS: f64 = 1e-12;
const MAX_BRANCH_EPS: f64 = 0.25;

/// The process-wide `MBU_BRANCH_EPS` default, resolved once through the
/// shared [`mbu_circuit::knobs`] policy (garbage warns and keeps the
/// default; values are clamped like [`BranchEnsemble::with_eps`]).
fn branch_eps_default() -> f64 {
    static DEFAULT: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        mbu_circuit::knobs::fraction(
            "MBU_BRANCH_EPS",
            std::env::var("MBU_BRANCH_EPS").ok().as_deref(),
            DEFAULT_BRANCH_EPS,
        )
        .min(MAX_BRANCH_EPS)
    })
}

/// A reference into the outcome tree.
#[derive(Clone, Copy, Debug)]
enum Link {
    /// A fork node (index into `Tree::forks`).
    Fork(usize),
    /// A finished trajectory (index into `Tree::leaves`).
    Leaf(usize),
    /// A branch dropped below the pruning floor.
    Pruned,
}

/// One randomness-consuming branch point: the probability its draw uses
/// and the two subtrees.
#[derive(Debug)]
struct ForkNode {
    /// The Born probability of outcome 1 — exactly the value the sampling
    /// path hands to `gen_bool` at this measurement.
    p_one: f64,
    /// Absolute probability mass pruned at this fork (path weight times
    /// the pruned children's conditional probability).
    pruned: f64,
    zero: Link,
    one: Link,
}

/// One complete measurement history.
#[derive(Debug)]
struct LeafNode {
    /// Path probability (product of branch probabilities).
    weight: f64,
    /// What the trajectory executed, or the error it died on (the same
    /// error a per-shot run of this history reports).
    result: Result<Executed, SimError>,
    /// The trajectory's occupancy high-water mark
    /// ([`Simulator::occupancy_peak`]), when the backend reports one — so
    /// sampled-mode ensembles can fold the same worst-case peak statistic
    /// per-shot execution reports, instead of losing it to sharing.
    peak: Option<u64>,
}

/// The fully built outcome tree.
#[derive(Debug)]
struct Tree {
    forks: Vec<ForkNode>,
    leaves: Vec<LeafNode>,
    root: Link,
}

impl Tree {
    fn set(&mut self, slot: Slot, link: Link) {
        match slot {
            Slot::Root => self.root = link,
            Slot::Zero(f) => self.forks[f].zero = link,
            Slot::One(f) => self.forks[f].one = link,
        }
    }

    fn node_count(&self) -> usize {
        self.forks.len() + self.leaves.len()
    }

    /// Leaf and fork indices in **canonical** traversal order: depth
    /// first, the outcome-0 subtree before the outcome-1 subtree at every
    /// fork. The build schedules work by thread availability, so the
    /// `forks`/`leaves` *storage* order depends on the thread budget —
    /// every aggregate that folds non-associative `f64`s must iterate in
    /// this canonical order instead, keeping exact-mode results
    /// bit-identical at any thread count.
    fn canonical_order(&self) -> (Vec<usize>, Vec<usize>) {
        let mut leaves = Vec::with_capacity(self.leaves.len());
        let mut forks = Vec::with_capacity(self.forks.len());
        let mut stack = vec![self.root];
        while let Some(link) = stack.pop() {
            match link {
                Link::Pruned => {}
                Link::Leaf(i) => leaves.push(i),
                Link::Fork(f) => {
                    forks.push(f);
                    // `zero` is pushed last so it pops (and emits) first.
                    stack.push(self.forks[f].one);
                    stack.push(self.forks[f].zero);
                }
            }
        }
        (leaves, forks)
    }
}

/// Where a work item's result will be linked into the tree.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Root,
    Zero(usize),
    One(usize),
}

/// One active trajectory awaiting execution of its next segment run.
struct Work {
    slot: Slot,
    pc: usize,
    sim: Box<dyn Simulator + Send>,
    executed: Executed,
    weight: f64,
}

/// A forked child that has not run yet: its state, record so far, and the
/// conditional probability of its branch.
struct ChildSeed {
    sim: Box<dyn Simulator + Send>,
    executed: Executed,
    p: f64,
}

/// What advancing one trajectory to its next branch point produced.
/// (Boxed fork payload: the variant carries two whole child states and
/// would otherwise dwarf `Leaf`/`Unsupported`.)
enum Advanced {
    /// The trajectory finished (or died on an error).
    Leaf(Result<Executed, SimError>),
    /// The trajectory hit a randomness-consuming instruction and split.
    Fork(Box<ForkStep>),
    /// The backend declined `measure_fork`: no branch-sharing execution.
    Unsupported,
}

/// The payload of [`Advanced::Fork`].
struct ForkStep {
    p_one: f64,
    /// The surviving children (`None` = pruned), resuming at `pc`.
    zero: Option<ChildSeed>,
    one: Option<ChildSeed>,
    /// Conditional probability mass pruned at this fork.
    pruned: f64,
    pc: usize,
}

/// Writes a measurement outcome into a classical record, mirroring the
/// compiled executor's resize-and-store.
fn write_clbit(executed: &mut Executed, idx: usize, outcome: bool) {
    if executed.classical.len() <= idx {
        executed.classical.resize(idx + 1, None);
    }
    executed.classical[idx] = Some(outcome);
}

/// Runs one trajectory from `pc` until it finishes, errors, or forks.
/// Unitary segments are applied run-at-a-time via the compiled program's
/// segmentation (`run_end[pc]` is the end of the segment starting at
/// `pc`); counts are tallied exactly as the per-shot executor tallies
/// them, so leaf records are interchangeable with per-shot [`Executed`]s.
fn advance(
    compiled: &CompiledCircuit,
    run_end: &[usize],
    mut pc: usize,
    sim: &mut Box<dyn Simulator + Send>,
    executed: &mut Executed,
    eps: f64,
) -> Advanced {
    /// Whether a branch with conditional probability `p` is dropped.
    fn pruned(p: f64, eps: f64) -> bool {
        p <= eps || p <= 0.0
    }
    let instrs = compiled.instrs();
    while let Some(instr) = instrs.get(pc) {
        match instr {
            Instr::Gate(_) | Instr::Fused(_) => {
                // A whole deterministic segment in one go. Announce the
                // segment first: planning backends (the hybrid) re-decide
                // their representation here, exactly as their compiled
                // loop would at this segment start — so forked branches
                // keep making per-branch representation choices.
                let end = run_end[pc];
                if let Err(e) = sim.plan_segment(compiled, pc, end) {
                    return Advanced::Leaf(Err(e));
                }
                while pc < end {
                    match &instrs[pc] {
                        Instr::Gate(g) => {
                            if let Err(e) = sim.apply_gate(g) {
                                return Advanced::Leaf(Err(e));
                            }
                            executed.counts.record_gate(g);
                        }
                        Instr::Fused(idx) => {
                            let fu = &compiled.fused_unitaries()[*idx as usize];
                            // One sweep per block on backends with a fused
                            // kernel (bit-identical to replaying the
                            // constituents); others replay via the trait
                            // default.
                            if let Err(e) = sim.apply_fused(fu) {
                                return Advanced::Leaf(Err(e));
                            }
                            for g in fu.gates() {
                                executed.counts.record_gate(g);
                            }
                        }
                        _ => unreachable!("segments hold only unitary instructions"),
                    }
                    pc += 1;
                }
            }
            Instr::Drop(_) => pc += 1,
            Instr::BranchUnless { clbit, skip } => {
                let Some(bit) = executed.classical.get(clbit.index()).copied().flatten() else {
                    return Advanced::Leaf(Err(SimError::UnwrittenClassicalBit { clbit: clbit.0 }));
                };
                if !bit {
                    pc += *skip as usize;
                }
                pc += 1;
            }
            Instr::Measure {
                qubit,
                basis,
                clbit,
            } => {
                executed.counts.record_measurement(*basis);
                match sim.measure_fork(*qubit, *basis) {
                    Err(e) => return Advanced::Leaf(Err(e)),
                    Ok(None) => return Advanced::Unsupported,
                    Ok(Some(Fork::Definite(outcome))) => {
                        write_clbit(executed, clbit.index(), outcome);
                        pc += 1;
                    }
                    Ok(Some(Fork::Split { p_one, one })) => {
                        let p0 = 1.0 - p_one;
                        let mut dropped = 0.0;
                        let zero = if pruned(p0, eps) {
                            dropped += p0.max(0.0);
                            None
                        } else {
                            let mut executed = executed.clone();
                            write_clbit(&mut executed, clbit.index(), false);
                            // The receiver *is* the zero branch; hand its
                            // state over via a placeholder swap-free move:
                            // the caller rebuilds children from seeds.
                            Some((executed, p0))
                        };
                        let one_seed = match one {
                            // `one` is `None` exactly when the branch is
                            // impossible (p_one == 0), which `pruned`
                            // always drops anyway.
                            Some(one) if !pruned(p_one, eps) => {
                                let mut executed = executed.clone();
                                write_clbit(&mut executed, clbit.index(), true);
                                Some(ChildSeed {
                                    sim: one,
                                    executed,
                                    p: p_one,
                                })
                            }
                            _ => {
                                dropped += p_one.max(0.0);
                                None
                            }
                        };
                        let zero_seed = zero.map(|(executed, p)| ChildSeed {
                            sim: std::mem::replace(sim, Box::new(NoSim)),
                            executed,
                            p,
                        });
                        return Advanced::Fork(Box::new(ForkStep {
                            p_one,
                            zero: zero_seed,
                            one: one_seed,
                            pruned: dropped,
                            pc: pc + 1,
                        }));
                    }
                }
            }
            Instr::Reset(qubit) => {
                executed.counts.reset += 1;
                match sim.measure_fork(*qubit, Basis::Z) {
                    Err(e) => return Advanced::Leaf(Err(e)),
                    Ok(None) => return Advanced::Unsupported,
                    Ok(Some(Fork::Definite(outcome))) => {
                        // Measure-and-flip semantics without a record: the
                        // backend consumed no randomness, so neither do we.
                        if outcome {
                            if let Err(e) = sim.apply_gate(&Gate::X(*qubit)) {
                                return Advanced::Leaf(Err(e));
                            }
                        }
                        pc += 1;
                    }
                    Ok(Some(Fork::Split { p_one, one })) => {
                        let p0 = 1.0 - p_one;
                        let mut dropped = 0.0;
                        let one_seed = match one {
                            Some(mut one) if !pruned(p_one, eps) => {
                                // The 1-branch gets the reset's corrective X.
                                if let Err(e) = one.apply_gate(&Gate::X(*qubit)) {
                                    return Advanced::Leaf(Err(e));
                                }
                                Some(ChildSeed {
                                    sim: one,
                                    executed: executed.clone(),
                                    p: p_one,
                                })
                            }
                            _ => {
                                dropped += p_one.max(0.0);
                                None
                            }
                        };
                        let zero_seed = if pruned(p0, eps) {
                            dropped += p0.max(0.0);
                            None
                        } else {
                            Some(ChildSeed {
                                sim: std::mem::replace(sim, Box::new(NoSim)),
                                executed: executed.clone(),
                                p: p0,
                            })
                        };
                        return Advanced::Fork(Box::new(ForkStep {
                            p_one,
                            zero: zero_seed,
                            one: one_seed,
                            pruned: dropped,
                            pc: pc + 1,
                        }));
                    }
                }
            }
        }
    }
    Advanced::Leaf(Ok(std::mem::take(executed)))
}

/// A placeholder left behind when a work item's state moves into a child
/// seed; never executed.
struct NoSim;

impl Simulator for NoSim {
    fn num_qubits(&self) -> usize {
        0
    }

    fn apply_gate(&mut self, _gate: &Gate) -> Result<(), SimError> {
        unreachable!("placeholder simulator is never executed")
    }

    fn measure(
        &mut self,
        _qubit: mbu_circuit::QubitId,
        _basis: Basis,
        _draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError> {
        unreachable!("placeholder simulator is never executed")
    }

    fn reset(
        &mut self,
        _qubit: mbu_circuit::QubitId,
        _draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<(), SimError> {
        unreachable!("placeholder simulator is never executed")
    }

    fn set_bit(&mut self, _q: mbu_circuit::QubitId, _value: bool) -> Result<(), SimError> {
        unreachable!("placeholder simulator is never executed")
    }

    fn bit(&self, _q: mbu_circuit::QubitId) -> Result<bool, SimError> {
        unreachable!("placeholder simulator is never executed")
    }

    fn global_phase(&self) -> Option<mbu_circuit::Angle> {
        None
    }
}

/// A seeded branch-tree ensemble scheduler: the branch-sharing counterpart
/// of [`ShotRunner`](crate::ShotRunner).
///
/// # Examples
///
/// The fair-coin statistics of an X-basis measurement, with zero sampling
/// noise — no RNG is consumed at all:
///
/// ```
/// use mbu_circuit::{Basis, CircuitBuilder};
/// use mbu_sim::{BasisTracker, BranchEnsemble};
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 1);
/// let _flag = b.measure(q[0], Basis::X);
/// let circuit = b.finish();
///
/// let dist = BranchEnsemble::new(0)
///     .distribution(&circuit, || Box::new(BasisTracker::zeros(1)))
///     .unwrap();
/// assert_eq!(dist.outcome_frequency(0), Some(0.5)); // exactly
/// assert_eq!(dist.num_leaves(), 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BranchEnsemble {
    shots: u64,
    master_seed: u64,
    /// Total thread budget shared by leaf workers and amplitude lanes.
    threads: usize,
    /// Pinned per-leaf amplitude lanes; `None` auto-schedules.
    amp_threads: Option<usize>,
    passes: Option<PassConfig>,
    eps: f64,
    node_budget: usize,
}

impl BranchEnsemble {
    /// A branch-tree scheduler whose sampled mode replays `shots` shots
    /// (the exact mode ignores the count — `new(0)` is fine for
    /// distribution-only use). Defaults mirror [`ShotRunner::new`]: the
    /// same master seed, the `MBU_SHOT_THREADS` / `MBU_AMP_THREADS` thread
    /// knobs, plus the `MBU_BRANCH_EPS` pruning floor and the
    /// [`DEFAULT_NODE_BUDGET`] node budget.
    #[must_use]
    pub fn new(shots: u64) -> Self {
        Self {
            shots,
            master_seed: DEFAULT_MASTER_SEED,
            threads: resolve_threads(std::env::var("MBU_SHOT_THREADS").ok().as_deref()),
            amp_threads: crate::statevector::amp_threads_env(),
            passes: None,
            eps: branch_eps_default(),
            node_budget: DEFAULT_NODE_BUDGET,
        }
    }

    /// Replaces the master seed (sampled mode only — the exact mode is
    /// seedless). Equal master seeds reproduce a [`ShotRunner`] with the
    /// same seed bit-for-bit.
    #[must_use]
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the total thread budget (clamped to at least 1); results never
    /// depend on it.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Pins the per-leaf amplitude lane count instead of letting the
    /// scheduler derive it from the budget.
    #[must_use]
    pub fn with_amp_threads(mut self, amp_threads: usize) -> Self {
        self.amp_threads = Some(amp_threads.max(1));
        self
    }

    /// Enables peephole passes on the compiled program (mirrors
    /// [`ShotRunner::with_passes`]).
    #[must_use]
    pub fn with_passes(mut self, config: PassConfig) -> Self {
        self.passes = Some(config);
        self
    }

    /// Sets the pruning floor: a branch whose conditional probability is
    /// `≤ eps` is dropped from the tree (clamped into `[0, 0.25]` so both
    /// children of a fork can never prune at once). `0` keeps everything
    /// except exactly-impossible branches — full expansion.
    #[must_use]
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps.clamp(0.0, MAX_BRANCH_EPS);
        self
    }

    /// Sets the node budget: the maximum number of materialised tree
    /// nodes (forks, leaves and pending branches) before tree execution is
    /// abandoned (clamped to at least 1).
    #[must_use]
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget.max(1);
        self
    }

    /// The number of shots the sampled mode replays.
    #[must_use]
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The active pruning floor.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The active node budget.
    #[must_use]
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }

    /// The RNG seed the sampled mode uses for shot `shot` — identical to
    /// [`ShotRunner::seed_for_shot`] with the same master seed.
    #[must_use]
    pub fn seed_for_shot(&self, shot: u64) -> u64 {
        shot_seed(self.master_seed, shot)
    }

    fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit, SimError> {
        match self.passes {
            None => CompiledCircuit::lower(circuit),
            Some(config) => CompiledCircuit::with_config(circuit, &config),
        }
        .map_err(|e| SimError::InvalidCircuit { why: e.to_string() })
    }

    /// Builds the outcome tree: frontier rounds of active trajectories,
    /// each round scheduled under the shared thread budget (leaves like
    /// shots, amplitude lanes inside each leaf), results linked back in
    /// deterministic item order so the tree never depends on scheduling.
    fn build_tree<F>(&self, compiled: &CompiledCircuit, factory: &F) -> Result<Tree, SimError>
    where
        F: Fn() -> Box<dyn Simulator + Send> + Sync,
    {
        let root_sim = factory();
        if compiled.num_qubits() > root_sim.num_qubits() {
            return Err(SimError::OutOfRange {
                what: format!(
                    "{}-qubit compiled program on {}-qubit state",
                    compiled.num_qubits(),
                    root_sim.num_qubits()
                ),
            });
        }
        // Segment lookup: run_end[pc] = end of the unitary run starting at
        // (or containing) pc. The walker only enters runs at segment
        // starts — barriers and branch targets are all segment boundaries.
        let mut run_end: Vec<usize> = (0..compiled.instrs().len()).collect();
        for seg in compiled.segments() {
            run_end[seg.start..seg.end].fill(seg.end);
        }
        let run_end = &run_end[..];

        let mut tree = Tree {
            forks: Vec::new(),
            leaves: Vec::new(),
            root: Link::Pruned,
        };
        let mut frontier = vec![Work {
            slot: Slot::Root,
            pc: 0,
            sim: root_sim,
            executed: Executed::default(),
            weight: 1.0,
        }];
        while !frontier.is_empty() {
            // Depth-first rounds: take the most recently forked branches
            // (at most one round's worth of workers), leaving the rest on
            // the stack. Subtrees finish before their siblings expand, so
            // the number of *live* states stays O(tree depth + threads)
            // instead of O(frontier width) — a breadth-first frontier on a
            // measurement-heavy circuit would hold thousands of amplitude
            // arrays at once before the node budget even tripped.
            let take = frontier.len().min(self.threads.max(1));
            let items: Vec<Work> = frontier.split_off(frontier.len() - take);
            let (workers, lanes) = split_budget(self.threads, items.len() as u64, self.amp_threads);
            let results = run_round(items, workers, lanes, compiled, run_end, self.eps);
            for (slot, weight, advanced, peak) in results {
                match advanced {
                    Advanced::Unsupported => return Err(SimError::BranchUnsupported),
                    Advanced::Leaf(result) => {
                        let i = tree.leaves.len();
                        tree.leaves.push(LeafNode {
                            weight,
                            result,
                            peak,
                        });
                        tree.set(slot, Link::Leaf(i));
                    }
                    Advanced::Fork(step) => {
                        let ForkStep {
                            p_one,
                            zero,
                            one,
                            pruned,
                            pc,
                        } = *step;
                        let f = tree.forks.len();
                        tree.forks.push(ForkNode {
                            p_one,
                            pruned: weight * pruned,
                            zero: Link::Pruned,
                            one: Link::Pruned,
                        });
                        tree.set(slot, Link::Fork(f));
                        for (seed, slot) in [(zero, Slot::Zero(f)), (one, Slot::One(f))] {
                            if let Some(seed) = seed {
                                frontier.push(Work {
                                    slot,
                                    pc,
                                    sim: seed.sim,
                                    executed: seed.executed,
                                    weight: weight * seed.p,
                                });
                            }
                        }
                    }
                }
            }
            // Budget check after every round, the last included. The
            // guarded quantity — materialised nodes plus pending branches
            // (each pending branch becomes at least one node) — is a
            // non-decreasing lower bound on the final tree size, so the
            // abort decision is a property of the tree: a program either
            // fits the budget under every schedule or trips it under
            // every schedule, never depending on the thread count.
            if tree.node_count() + frontier.len() > self.node_budget {
                return Err(SimError::BranchBudgetExceeded {
                    budget: self.node_budget,
                });
            }
        }
        Ok(tree)
    }

    /// **Exact mode**: walks every surviving measurement history once and
    /// returns the complete outcome/record distribution. Consumes no
    /// randomness — the method does not even take an RNG.
    ///
    /// # Errors
    ///
    /// [`SimError::BranchUnsupported`] if the backend declines
    /// [`measure_fork`](Simulator::measure_fork),
    /// [`SimError::BranchBudgetExceeded`] if the tree outgrows the node
    /// budget, or the first trajectory error in deterministic tree order
    /// (the same error per-shot execution of that history reports).
    pub fn distribution<F>(
        &self,
        circuit: &Circuit,
        factory: F,
    ) -> Result<BranchDistribution, SimError>
    where
        F: Fn() -> Box<dyn Simulator + Send> + Sync,
    {
        let compiled = self.compile(circuit)?;
        let tree = self.build_tree(&compiled, &factory)?;
        let (leaf_order, _) = tree.canonical_order();
        for &i in &leaf_order {
            if let Err(e) = &tree.leaves[i].result {
                return Err(e.clone());
            }
        }
        Ok(BranchDistribution::from_tree(tree))
    }

    /// **Sampled mode**: builds the tree once, then replays each of the
    /// `shots` seeded RNG streams against the fork probabilities — an
    /// exact multinomial draw of shot counts over the leaves whose
    /// classical aggregates (records, outcome counts, executed-count
    /// means/variances) are **bit-identical** to a
    /// [`ShotRunner`](crate::ShotRunner) with the same master seed,
    /// circuit and passes. Peak-memory statistics survive the sharing:
    /// each leaf records its trajectory's occupancy high-water mark
    /// ([`Simulator::occupancy_peak`]), so [`Ensemble::peak_amplitudes`]
    /// is the worst peak over the leaves the replayed shots actually
    /// landed in — `Some` wherever the backend reports occupancy, like
    /// per-shot execution. (A reclaiming dense backend is the one place
    /// the *value* can differ: tree mode never drops qubits mid-segment,
    /// so it reports the full array where a reclaiming per-shot run
    /// reports the compacted live set.)
    ///
    /// Falls back to per-shot Monte Carlo — delegating to an equivalently
    /// configured `ShotRunner`, still bit-identical — when the backend
    /// cannot fork or the tree exceeds the node budget. A single replayed
    /// shot that walks into pruned mass falls back for that shot alone.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyEnsemble`] for a zero-shot run, compile errors,
    /// or the error of the lowest-indexed failing shot.
    pub fn run<F>(&self, circuit: &Circuit, factory: F) -> Result<Ensemble, SimError>
    where
        F: Fn() -> Box<dyn Simulator + Send> + Sync,
    {
        if self.shots == 0 {
            return Err(SimError::EmptyEnsemble);
        }
        let compiled = self.compile(circuit)?;
        let tree = match self.build_tree(&compiled, &factory) {
            Ok(tree) => tree,
            Err(SimError::BranchUnsupported | SimError::BranchBudgetExceeded { .. }) => {
                return self.monte_carlo(circuit, &factory);
            }
            Err(e) => return Err(e),
        };
        let mut acc = Accumulator::default();
        let mut first_error: Option<SimError> = None;
        for shot in 0..self.shots {
            let seed = self.seed_for_shot(shot);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut link = tree.root;
            loop {
                match link {
                    Link::Fork(f) => {
                        let node = &tree.forks[f];
                        link = if rng.gen_bool(node.p_one.clamp(0.0, 1.0)) {
                            node.one
                        } else {
                            node.zero
                        };
                    }
                    Link::Leaf(i) => {
                        match &tree.leaves[i].result {
                            Ok(executed) => acc.add_shot(executed, tree.leaves[i].peak),
                            Err(e) => {
                                if first_error.is_none() {
                                    first_error = Some(e.clone());
                                }
                            }
                        }
                        break;
                    }
                    Link::Pruned => {
                        // The shot drew into mass the tree dropped: run
                        // exactly this shot per-shot, from its own seed —
                        // identical to what the ShotRunner would have done
                        // with the same shot index.
                        let mut sim = factory();
                        let mut rng = StdRng::seed_from_u64(seed);
                        match sim.run_compiled(&compiled, &mut rng) {
                            Ok(executed) => acc.add_shot(&executed, sim.peak_amplitudes()),
                            Err(e) => {
                                if first_error.is_none() {
                                    first_error = Some(e);
                                }
                            }
                        }
                        break;
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(Ensemble::from_acc(acc))
    }

    /// The wholesale per-shot fallback: a [`ShotRunner`] configured
    /// identically, so the result is what tree execution would have
    /// replayed.
    fn monte_carlo<F>(&self, circuit: &Circuit, factory: &F) -> Result<Ensemble, SimError>
    where
        F: Fn() -> Box<dyn Simulator + Send> + Sync,
    {
        let mut runner = ShotRunner::new(self.shots)
            .with_master_seed(self.master_seed)
            .with_threads(self.threads);
        if let Some(lanes) = self.amp_threads {
            runner = runner.with_amp_threads(lanes);
        }
        if let Some(passes) = self.passes {
            runner = runner.with_passes(passes);
        }
        runner.run(circuit, || -> Box<dyn Simulator> { factory() })
    }
}

/// Executes one frontier round: `workers` scoped threads over contiguous
/// item chunks, every item's state pinned to `lanes` amplitude lanes.
/// Results come back in item order regardless of scheduling. The fourth
/// tuple field is the state's occupancy peak after the advance —
/// meaningful for leaves (a forked item's receiver state has moved into a
/// child seed, leaving the reporting-nothing placeholder behind).
fn run_round(
    items: Vec<Work>,
    workers: usize,
    lanes: usize,
    compiled: &CompiledCircuit,
    run_end: &[usize],
    eps: f64,
) -> Vec<(Slot, f64, Advanced, Option<u64>)> {
    let advance_item = |mut work: Work| -> (Slot, f64, Advanced, Option<u64>) {
        work.sim.set_amp_threads(lanes);
        let advanced = advance(
            compiled,
            run_end,
            work.pc,
            &mut work.sim,
            &mut work.executed,
            eps,
        );
        (work.slot, work.weight, advanced, work.sim.occupancy_peak())
    };
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(advance_item).collect();
    }
    let workers = workers.min(items.len());
    let per = items.len() / workers;
    let extra = items.len() % workers;
    let mut chunks: Vec<Vec<Work>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    for w in 0..workers {
        let len = per + usize::from(w < extra);
        chunks.push(items.by_ref().take(len).collect());
    }
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(|| chunk.into_iter().map(advance_item).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// The exact outcome distribution of a circuit: one entry per surviving
/// measurement history, weighted by its path probability. Produced by
/// [`BranchEnsemble::distribution`] with **zero** sampling noise and zero
/// RNG consumption.
#[derive(Debug)]
pub struct BranchDistribution {
    /// `(weight, executed)` per leaf, in canonical tree order (depth
    /// first, outcome 0 before outcome 1) — independent of how the build
    /// was scheduled.
    leaves: Vec<(f64, Executed)>,
    /// Classical records aggregated over leaves (distinct histories can
    /// share a record when a reset forks without writing a bit).
    records: BTreeMap<Vec<Option<bool>>, f64>,
    total_weight: f64,
    pruned_mass: f64,
    fork_nodes: usize,
}

impl BranchDistribution {
    fn from_tree(tree: Tree) -> Self {
        // Canonical traversal order for every `f64` fold: the tree's
        // storage order depends on build scheduling, and summing weights
        // in a schedule-dependent order would make exact-mode aggregates
        // drift by ulps across thread budgets.
        let (leaf_order, fork_order) = tree.canonical_order();
        let fork_nodes = tree.forks.len();
        let pruned_mass: f64 = fork_order.iter().map(|&f| tree.forks[f].pruned).sum();
        let mut slots: Vec<Option<LeafNode>> = tree.leaves.into_iter().map(Some).collect();
        let leaves: Vec<(f64, Executed)> = leaf_order
            .iter()
            .map(|&i| {
                // Panic triage: both expects guard tree-construction
                // invariants (`canonical_order` visits each leaf once, and
                // the walk returns `Err` before building an ensemble when
                // any leaf failed) — no simulator input reaches them.
                let leaf = slots[i].take().expect("each leaf linked exactly once");
                let executed = leaf
                    .result
                    .expect("error leaves surfaced before construction");
                (leaf.weight, executed)
            })
            .collect();
        let mut records = BTreeMap::new();
        let mut total_weight = 0.0;
        for (weight, executed) in &leaves {
            *records.entry(executed.classical.clone()).or_insert(0.0) += weight;
            total_weight += weight;
        }
        Self {
            leaves,
            records,
            total_weight,
            pruned_mass,
            fork_nodes,
        }
    }

    /// The number of surviving measurement histories.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The number of randomness-consuming branch points explored.
    #[must_use]
    pub fn fork_nodes(&self) -> usize {
        self.fork_nodes
    }

    /// Total probability mass of the surviving leaves (1 minus the pruned
    /// mass, up to floating-point addition).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Probability mass dropped by `MBU_BRANCH_EPS` pruning.
    #[must_use]
    pub fn pruned_mass(&self) -> f64 {
        self.pruned_mass
    }

    /// The leaves: `(weight, executed record)` per measurement history, in
    /// canonical tree order (depth first, outcome 0 before outcome 1).
    pub fn leaves(&self) -> impl Iterator<Item = (f64, &Executed)> {
        self.leaves.iter().map(|(w, e)| (*w, e))
    }

    /// The exact expected executed count per operation family — what a
    /// Monte-Carlo [`Ensemble::mean`](crate::Ensemble::mean) estimates
    /// with sampling noise, computed here as a weighted average over
    /// measurement histories.
    #[must_use]
    pub fn mean_counts(&self) -> CountStats {
        let mut sums = [0.0f64; NFIELDS];
        for (weight, executed) in &self.leaves {
            for (sum, field) in sums.iter_mut().zip(count_fields(&executed.counts)) {
                *sum += weight * field as f64;
            }
        }
        let total = self.total_weight.max(f64::MIN_POSITIVE);
        CountStats::from_fields(std::array::from_fn(|i| sums[i] / total))
    }

    /// The exact probability that classical bit `clbit` reads 1, among the
    /// histories that wrote it; `None` if no surviving history did.
    #[must_use]
    pub fn outcome_frequency(&self, clbit: usize) -> Option<f64> {
        let mut wrote = 0.0f64;
        let mut ones = 0.0f64;
        for (weight, executed) in &self.leaves {
            if let Some(Some(bit)) = executed.classical.get(clbit) {
                wrote += weight;
                if *bit {
                    ones += weight;
                }
            }
        }
        (wrote > 0.0).then(|| ones / wrote)
    }

    /// Exact frequencies of complete classical records (normalised over
    /// the surviving mass), in record order.
    pub fn record_frequencies(&self) -> impl Iterator<Item = (&[Option<bool>], f64)> {
        let total = self.total_weight.max(f64::MIN_POSITIVE);
        self.records
            .iter()
            .map(move |(k, w)| (k.as_slice(), w / total))
    }

    /// The number of distinct complete classical records.
    #[must_use]
    pub fn distinct_records(&self) -> usize {
        self.records.len()
    }

    /// The number of classical bits any history wrote.
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.leaves
            .iter()
            .map(|(_, e)| e.classical.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasisTracker, StateVector};
    use mbu_circuit::CircuitBuilder;

    /// The fair-coin circuit of the shot-engine tests: X-measure |0⟩, with
    /// a conditional correction so the branches execute different counts.
    fn coin_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        let m = b.measure(q[0], Basis::X);
        let (_, fix) = b.record(|bb| {
            bb.h(q[0]);
            bb.x(q[0]);
        });
        b.emit_conditional(m, &fix);
        b.finish()
    }

    fn tracker_factory(n: usize) -> impl Fn() -> Box<dyn Simulator + Send> + Sync {
        move || Box::new(BasisTracker::zeros(n))
    }

    /// The classical face of an ensemble: the aggregates the bit-identity
    /// contract covers (shots, count moments, records). Peak-memory stats
    /// are asserted separately — they match on these workloads too, but
    /// through leaf occupancy peaks rather than shot-by-shot identity.
    fn classical_face(e: &crate::Ensemble) -> impl PartialEq + std::fmt::Debug {
        let records: Vec<(Vec<Option<bool>>, u64)> = e
            .record_frequencies()
            .map(|(r, n)| (r.to_vec(), n))
            .collect();
        (e.shots(), e.mean(), e.variance(), records)
    }

    #[test]
    fn exact_coin_distribution_is_noise_free() {
        let dist = BranchEnsemble::new(0)
            .distribution(&coin_circuit(), tracker_factory(1))
            .unwrap();
        assert_eq!(dist.num_leaves(), 2);
        assert_eq!(dist.fork_nodes(), 1);
        assert_eq!(dist.outcome_frequency(0), Some(0.5));
        assert_eq!(dist.pruned_mass(), 0.0);
        assert!((dist.total_weight() - 1.0).abs() < 1e-15);
        // The conditional branch (1 H + 1 X) runs with probability exactly
        // ½ — the Bernoulli mean with no sampling error at all.
        assert_eq!(dist.mean_counts().x, 0.5);
        assert_eq!(dist.mean_counts().h, 0.5);
        assert_eq!(dist.mean_counts().measure_x, 1.0);
        let records: Vec<_> = dist.record_frequencies().collect();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|(_, f)| (f - 0.5).abs() < 1e-15));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn sampled_mode_is_bit_identical_to_per_shot_execution() {
        let circuit = coin_circuit();
        for seed in [0u64, 7, 99] {
            let branch = BranchEnsemble::new(500)
                .with_master_seed(seed)
                .run(&circuit, tracker_factory(1))
                .unwrap();
            let per_shot = ShotRunner::new(500)
                .with_master_seed(seed)
                .run(&circuit, || Box::new(BasisTracker::zeros(1)))
                .unwrap();
            assert_eq!(
                classical_face(&branch),
                classical_face(&per_shot),
                "seed {seed}"
            );
            // Peak stats survive the sharing: leaves record occupancy
            // peaks, so the tree reports the same worst case the per-shot
            // census does.
            assert_eq!(branch.peak_amplitudes(), Some(2), "seed {seed}");
            assert_eq!(per_shot.peak_amplitudes(), Some(2), "seed {seed}");
        }
    }

    #[test]
    fn definite_measurements_do_not_fork_the_tracker() {
        // Z-measuring definite bits is deterministic for the tracker: one
        // leaf, no fork nodes, no RNG replay divergence.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        b.x(q[1]);
        let _ = b.measure(q[0], Basis::Z);
        let _ = b.measure(q[1], Basis::Z);
        let circuit = b.finish();
        let dist = BranchEnsemble::new(0)
            .distribution(&circuit, tracker_factory(2))
            .unwrap();
        assert_eq!(dist.num_leaves(), 1);
        assert_eq!(dist.fork_nodes(), 0);
        assert_eq!(dist.outcome_frequency(0), Some(0.0));
        assert_eq!(dist.outcome_frequency(1), Some(1.0));
        // And replay matches the shot engine bit for bit.
        let branch = BranchEnsemble::new(64)
            .run(&circuit, tracker_factory(2))
            .unwrap();
        let per_shot = ShotRunner::new(64)
            .run(&circuit, || Box::new(BasisTracker::zeros(2)))
            .unwrap();
        assert_eq!(classical_face(&branch), classical_face(&per_shot));
        assert_eq!(per_shot.peak_amplitudes(), Some(1), "all-definite run");
        assert_eq!(branch.peak_amplitudes(), Some(1), "all-definite tree");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn shared_trajectory_ensembles_report_peak_occupancy() {
        // Regression: tree-mode ensembles used to report `None` for the
        // peak stat on every backend. Each backend that tracks occupancy
        // must now surface the same `Some` the shot engine reports.
        let circuit = coin_circuit();
        let tracker = BranchEnsemble::new(50)
            .run(&circuit, tracker_factory(1))
            .unwrap();
        assert_eq!(tracker.peak_amplitudes(), Some(2), "|±⟩ excursion");
        let dense = BranchEnsemble::new(50)
            .run(&circuit, || {
                Box::new(StateVector::zeros(1).unwrap()) as Box<dyn Simulator + Send>
            })
            .unwrap();
        assert_eq!(dense.peak_amplitudes(), Some(2), "full 1-qubit array");
        let sparse = BranchEnsemble::new(50)
            .run(&circuit, || {
                Box::new(crate::SparseVector::zeros(1).unwrap()) as Box<dyn Simulator + Send>
            })
            .unwrap();
        assert_eq!(sparse.peak_amplitudes(), Some(2), "both entries occupied");
        let phase = BranchEnsemble::new(50)
            .run(&circuit, || {
                Box::new(crate::PhaseAccumulator::zeros(1).unwrap()) as Box<dyn Simulator + Send>
            })
            .unwrap();
        assert_eq!(phase.peak_amplitudes(), Some(2), "both branches occupied");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn phase_leaves_census_occupied_branches_not_the_hilbert_space() {
        // Regression for the phase-representation census: a branch tree
        // over [`crate::PhaseAccumulator`] leaves must aggregate the
        // *occupied-branch* peak (2 here — one coin), not the dense
        // dimension 2^100 (which doesn't even fit the `u64` the stat rides
        // in). The width is far past every dense cap, so a wrong
        // aggregation path would either overflow or refuse outright.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 100);
        b.h(q[0]);
        // A diagonal tail in Fourier mode: phases fold into the branch
        // accumulators without any occupancy growth.
        for i in 1..40 {
            b.cx(q[0], q[i]);
        }
        let _ = b.measure(q[0], Basis::Z);
        let circuit = b.finish();
        let tree = BranchEnsemble::new(32)
            .run(&circuit, || {
                Box::new(crate::PhaseAccumulator::zeros(100).unwrap()) as Box<dyn Simulator + Send>
            })
            .unwrap();
        assert_eq!(tree.peak_amplitudes(), Some(2), "occupied census, not 2^n");
        let dist = BranchEnsemble::new(0)
            .distribution(&circuit, || {
                Box::new(crate::PhaseAccumulator::zeros(100).unwrap()) as Box<dyn Simulator + Send>
            })
            .unwrap();
        assert_eq!(dist.num_leaves(), 2);
        assert_eq!(dist.fork_nodes(), 1);
        // `(√½)²` in floats, not exactly ½ — the phase backend's branch
        // weights are amplitude norms like every amplitude backend's.
        let p0 = dist.outcome_frequency(0).unwrap();
        assert!((p0 - 0.5).abs() < 1e-12, "got {p0}");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn state_vector_trees_match_tracker_trees() {
        let circuit = coin_circuit();
        let sv_dist = BranchEnsemble::new(0)
            .distribution(&circuit, || {
                Box::new(StateVector::zeros(1).unwrap()) as Box<dyn Simulator + Send>
            })
            .unwrap();
        assert_eq!(sv_dist.num_leaves(), 2);
        let f = sv_dist.outcome_frequency(0).unwrap();
        assert!((f - 0.5).abs() < 1e-12, "got {f}");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn resets_fork_and_rejoin_with_identical_records() {
        // H then reset: the reset forks (the qubit is superposed) but
        // writes no classical bit, so both histories share the record.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        b.h(q[0]);
        b.reset(q[0]);
        let m = b.measure(q[0], Basis::Z);
        let _ = m;
        let circuit = b.finish();
        let factory = || Box::new(StateVector::zeros(1).unwrap()) as Box<dyn Simulator + Send>;
        let dist = BranchEnsemble::new(0)
            .distribution(&circuit, factory)
            .unwrap();
        // Reset forks once; the post-reset Z measure is p=0/1 per branch
        // (the state vector always splits, but one side is impossible and
        // pruned), leaving two surviving histories with one record.
        assert_eq!(dist.distinct_records(), 1);
        assert_eq!(dist.outcome_frequency(0), Some(0.0));
        // Sampled mode still replays per-shot RNG identically (the reset
        // consumes one draw per shot on the sampling path).
        let branch = BranchEnsemble::new(200).run(&circuit, factory).unwrap();
        let per_shot = ShotRunner::new(200)
            .run(&circuit, || Box::new(StateVector::zeros(1).unwrap()))
            .unwrap();
        assert_eq!(
            branch.record_frequencies().collect::<Vec<_>>(),
            per_shot.record_frequencies().collect::<Vec<_>>()
        );
        assert_eq!(branch.mean(), per_shot.mean());
        assert_eq!(branch.variance(), per_shot.variance());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn node_budget_is_a_typed_error_exactly_and_a_fallback_when_sampling() {
        let circuit = coin_circuit();
        let tight = BranchEnsemble::new(100).with_node_budget(1);
        let err = tight
            .distribution(&circuit, tracker_factory(1))
            .unwrap_err();
        assert_eq!(err, SimError::BranchBudgetExceeded { budget: 1 });
        // Sampled mode falls back to per-shot Monte Carlo — bit-identical
        // to the ShotRunner, peak stats included (it *is* the ShotRunner).
        let fell_back = tight.run(&circuit, tracker_factory(1)).unwrap();
        let per_shot = ShotRunner::new(100)
            .run(&circuit, || Box::new(BasisTracker::zeros(1)))
            .unwrap();
        assert_eq!(fell_back, per_shot);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn backends_without_fork_support_fall_back() {
        /// A backend that answers everything but declines to fork.
        struct NoFork;
        impl Simulator for NoFork {
            fn num_qubits(&self) -> usize {
                8
            }
            fn apply_gate(&mut self, _g: &Gate) -> Result<(), SimError> {
                Ok(())
            }
            fn measure(
                &mut self,
                _q: mbu_circuit::QubitId,
                _b: Basis,
                draw: &mut dyn FnMut(f64) -> bool,
            ) -> Result<bool, SimError> {
                Ok(draw(0.5))
            }
            fn reset(
                &mut self,
                _q: mbu_circuit::QubitId,
                _d: &mut dyn FnMut(f64) -> bool,
            ) -> Result<(), SimError> {
                Ok(())
            }
            fn set_bit(&mut self, _q: mbu_circuit::QubitId, _v: bool) -> Result<(), SimError> {
                Ok(())
            }
            fn bit(&self, _q: mbu_circuit::QubitId) -> Result<bool, SimError> {
                Ok(false)
            }
            fn global_phase(&self) -> Option<mbu_circuit::Angle> {
                None
            }
        }
        let circuit = coin_circuit();
        let runner = BranchEnsemble::new(50);
        let err = runner
            .distribution(&circuit, || Box::new(NoFork))
            .unwrap_err();
        assert_eq!(err, SimError::BranchUnsupported);
        let fell_back = runner.run(&circuit, || Box::new(NoFork)).unwrap();
        let per_shot = ShotRunner::new(50)
            .run(&circuit, || Box::new(NoFork))
            .unwrap();
        assert_eq!(fell_back, per_shot);
    }

    #[test]
    fn zero_shot_sampled_runs_are_a_typed_error() {
        let err = BranchEnsemble::new(0)
            .run(&coin_circuit(), tracker_factory(1))
            .unwrap_err();
        assert_eq!(err, SimError::EmptyEnsemble);
    }

    #[test]
    fn full_expansion_keeps_only_possible_branches() {
        // A definite Z-measurement on the state vector always Splits, but
        // the impossible side has p = 0 exactly: pruned even at eps = 0,
        // keeping full expansion finite on deterministic circuits.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 1);
        b.x(q[0]);
        let _ = b.measure(q[0], Basis::Z);
        let circuit = b.finish();
        let dist = BranchEnsemble::new(0)
            .with_eps(0.0)
            .distribution(&circuit, || {
                Box::new(StateVector::zeros(1).unwrap()) as Box<dyn Simulator + Send>
            })
            .unwrap();
        assert_eq!(dist.num_leaves(), 1);
        assert_eq!(dist.fork_nodes(), 1, "the draw still happens on replay");
        assert_eq!(dist.outcome_frequency(0), Some(1.0));
        assert_eq!(dist.pruned_mass(), 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn parallel_tree_builds_match_serial_ones() {
        // Three forks → up to 8 leaves: enough frontier width to schedule
        // real worker rounds. The distribution must be identical at any
        // thread budget.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 3);
        for i in 0..3 {
            let _ = b.measure(q[i], Basis::X);
        }
        let circuit = b.finish();
        let serial = BranchEnsemble::new(0)
            .with_threads(1)
            .distribution(&circuit, tracker_factory(3))
            .unwrap();
        for threads in [2, 4, 8] {
            let parallel = BranchEnsemble::new(0)
                .with_threads(threads)
                .distribution(&circuit, tracker_factory(3))
                .unwrap();
            assert_eq!(parallel.num_leaves(), serial.num_leaves());
            let s: Vec<_> = serial
                .record_frequencies()
                .map(|(r, f)| (r.to_vec(), f))
                .collect();
            let p: Vec<_> = parallel
                .record_frequencies()
                .map(|(r, f)| (r.to_vec(), f))
                .collect();
            assert_eq!(s, p, "threads {threads}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn exact_aggregates_are_bit_identical_across_thread_budgets() {
        // Non-dyadic fork probabilities (cos²(π/8) from an H·R·H
        // sandwich): summing leaf weights in build-schedule order would
        // drift by ulps between thread budgets. The canonical-order folds
        // must make every exact aggregate bit-identical instead.
        use mbu_circuit::Angle;
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 2);
        for i in 0..2 {
            b.h(q[i]);
            b.phase(q[i], Angle::turn_over_power_of_two(3));
            b.h(q[i]);
        }
        let _ = b.measure(q[0], Basis::Z);
        let _ = b.measure(q[1], Basis::X);
        let circuit = b.finish();
        let factory = || Box::new(StateVector::zeros(2).unwrap()) as Box<dyn Simulator + Send>;
        let base = BranchEnsemble::new(0)
            .with_threads(1)
            .distribution(&circuit, factory)
            .unwrap();
        assert_eq!(base.num_leaves(), 4, "two genuine forks");
        for threads in [2, 3, 8] {
            let d = BranchEnsemble::new(0)
                .with_threads(threads)
                .distribution(&circuit, factory)
                .unwrap();
            assert_eq!(d.mean_counts(), base.mean_counts(), "threads {threads}");
            assert_eq!(d.total_weight().to_bits(), base.total_weight().to_bits());
            assert_eq!(d.pruned_mass().to_bits(), base.pruned_mass().to_bits());
            let rb: Vec<_> = base
                .record_frequencies()
                .map(|(r, f)| (r.to_vec(), f.to_bits()))
                .collect();
            let rd: Vec<_> = d
                .record_frequencies()
                .map(|(r, f)| (r.to_vec(), f.to_bits()))
                .collect();
            assert_eq!(rb, rd, "threads {threads}");
            let lb: Vec<_> = base
                .leaves()
                .map(|(w, e)| (w.to_bits(), e.clone()))
                .collect();
            let ld: Vec<_> = d.leaves().map(|(w, e)| (w.to_bits(), e.clone())).collect();
            assert_eq!(lb, ld, "threads {threads}: canonical leaf order");
        }
    }

    #[test]
    fn eps_is_clamped_below_a_double_prune() {
        let runner = BranchEnsemble::new(1).with_eps(0.9);
        assert!(runner.eps() <= 0.25);
        let runner = runner.with_eps(-1.0);
        assert_eq!(runner.eps(), 0.0);
    }
}
