//! The Fourier-basis phase-accumulator backend.
//!
//! [`PhaseAccumulator`] represents the state as a small set of occupied
//! basis *branches*, where each qubit is globally in one of two modes:
//!
//! * **Z-mode** — the qubit holds one definite bit per branch, stored in
//!   the branch's basis key (exactly the sparse map's picture);
//! * **Fourier-mode** — the qubit holds the factor
//!   `(|0⟩ + e^{2πi·φ}|1⟩)/√2` per branch, with `φ` an *exact*
//!   arbitrary-precision dyadic fraction ([`Dyadic`]) instead of a pair of
//!   amplitudes.
//!
//! A branch's value is `amp · e^{2πi·phase} · |key⟩ ⊗ Π_q (|0⟩ +
//! e^{2πi·φ_q}|1⟩)/√2` over its Fourier qubits. Branches keep pairwise
//! distinct keys, so they stay orthogonal and `Σ|amp|²` remains a valid
//! probability decomposition.
//!
//! The payoff is the interior of a QFT adder (the paper's Draper/Beauregard
//! circuits): `H` promotes a definite bit into Fourier mode without
//! growing the branch set, every diagonal gate (`Phase`/`CPhase`/
//! `CCPhase`/`Z` family) becomes an O(occupied) exact dyadic-angle
//! addition with **no amplitude sweeps**, and the closing `IQFT`'s `H`
//! meets `φ ∈ {0, ½}` and collapses the qubit back to a definite bit —
//! the whole adder runs at constant occupancy. A Draper addition over
//! n = 1024 qubits, where a dense array cannot allocate and the sparse map
//! would fan out to `2^{1025}` entries, executes in O(gates).
//!
//! Outside that closed fragment the backend stays universal by *lossless
//! materialisation*: a Fourier qubit whose phase is not a half-turn
//! multiple is expanded into explicit 0/1 branches (doubling occupancy,
//! exactly like the sparse `H`), and the gate proceeds on keys.

use std::cmp::Ordering;

use mbu_circuit::{knobs, Angle, Basis, CompiledCircuit, Gate, QubitId};
use rand::RngCore;

use crate::complex::Complex;
use crate::error::SimError;
use crate::exec::{self, Executed};
use crate::simulator::{ConcreteFork, Fork, Simulator};
use crate::sparse::MAX_SPARSEVECTOR_QUBITS;

/// Branch-count ceiling for materialisation fallbacks: a gate that would
/// expand the occupied set past this many branches reports
/// [`SimError::BranchBudgetExceeded`] instead of exhausting memory.
pub const MAX_PHASE_BRANCHES: usize = 1usize << 20;

/// Definite-bit read tolerance, mirroring the dense/sparse engines.
const DEFINITE_TOL: f64 = 1e-9;

/// An exact dyadic fraction of a full turn in `[0, 1)`, at arbitrary
/// precision: the little-endian words encode an integer `N` and the value
/// is `N / 2^{64·len}`. Canonical form strips least-significant zero
/// words, so equality is exact. This is the per-qubit phase accumulator —
/// a 1024-bit QFT needs fractions down to `2^{-1025}`, far past any fixed
/// word size.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub(crate) struct Dyadic {
    /// Little-endian words of `N`; empty means zero. The least-significant
    /// word is nonzero in canonical form.
    words: Vec<u64>,
}

impl Dyadic {
    /// The zero fraction.
    pub(crate) fn zero() -> Self {
        Self { words: Vec::new() }
    }

    /// The fraction 1/2 — the phase a set bit contributes under `H`.
    pub(crate) fn half() -> Self {
        Self {
            words: vec![1u64 << 63],
        }
    }

    pub(crate) fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    fn is_half(&self) -> bool {
        self.words.len() == 1 && self.words[0] == 1u64 << 63
    }

    /// Whether the fraction is a multiple of 1/2 — the collapse condition
    /// for `H` on a Fourier qubit.
    fn is_half_multiple(&self) -> bool {
        self.is_zero() || self.is_half()
    }

    fn canonicalize(&mut self) {
        let drop = self.words.iter().take_while(|w| **w == 0).count();
        if drop == self.words.len() {
            self.words.clear();
        } else if drop > 0 {
            self.words.drain(..drop);
        }
    }

    /// Adds `other` mod 1.
    pub(crate) fn add_assign(&mut self, other: &Dyadic) {
        if other.words.is_empty() {
            return;
        }
        let l = self.words.len().max(other.words.len());
        let pad_s = l - self.words.len();
        let pad_o = l - other.words.len();
        let mut out = vec![0u64; l];
        for (i, w) in self.words.iter().enumerate() {
            out[i + pad_s] = *w;
        }
        let mut carry = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            let o = if i >= pad_o {
                other.words[i - pad_o]
            } else {
                0
            };
            let (s1, c1) = slot.overflowing_add(o);
            let (s2, c2) = s1.overflowing_add(carry);
            *slot = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        // A final carry is a full turn: dropped (mod 1).
        self.words = out;
        self.canonicalize();
    }

    /// Negates mod 1 (`x ↦ 1 − x` for nonzero `x`).
    pub(crate) fn negate(&mut self) {
        if self.words.is_empty() {
            return;
        }
        let mut carry = 1u64;
        for w in &mut self.words {
            let (s, c) = (!*w).overflowing_add(carry);
            *w = s;
            carry = u64::from(c);
        }
        self.canonicalize();
    }

    /// The exact dyadic image of an [`Angle`].
    pub(crate) fn from_angle(theta: Angle) -> Self {
        if theta.is_zero() {
            return Self::zero();
        }
        let d = theta.log2_denom();
        let l = (d as usize).div_ceil(64);
        let s = (l as u32) * 64 - d; // 0..=63
        let num = theta.numerator();
        let lo = num as u64;
        let hi = (num >> 64) as u64;
        let (w0, w1, w2) = if s == 0 {
            (lo, hi, 0u64)
        } else {
            (lo << s, (hi << s) | (lo >> (64 - s)), hi >> (64 - s))
        };
        let mut words = vec![0u64; l];
        for (i, w) in [w0, w1, w2].into_iter().enumerate() {
            if i < l {
                words[i] = w;
            } else {
                debug_assert_eq!(w, 0, "angle numerator exceeds its denominator");
            }
        }
        let mut out = Self { words };
        out.canonicalize();
        if theta.is_negated() {
            out.negate();
        }
        out
    }

    /// Adds an [`Angle`] mod 1.
    pub(crate) fn add_angle(&mut self, theta: Angle) {
        if theta.is_zero() {
            return;
        }
        self.add_assign(&Dyadic::from_angle(theta));
    }

    /// The fraction as an `f64` in `[0, 1)`.
    fn to_f64(&self) -> f64 {
        let mut x = 0.0f64;
        for w in &self.words {
            x = (x + *w as f64) * (1.0 / 18_446_744_073_709_551_616.0);
        }
        x
    }

    /// `e^{2πi·x}`, with the four quarter-turn points produced exactly
    /// (±1, ±i) so phase bookkeeping on the QFT fragment stays bitwise.
    pub(crate) fn cis(&self) -> Complex {
        if self.words.is_empty() {
            return Complex::ONE;
        }
        if self.words.len() == 1 {
            match self.words[0] {
                w if w == 1u64 << 63 => return Complex::new(-1.0, 0.0),
                w if w == 1u64 << 62 => return Complex::I,
                w if w == 3u64 << 62 => return Complex::new(0.0, -1.0),
                _ => {}
            }
        }
        Complex::cis(std::f64::consts::TAU * self.to_f64())
    }

    /// The fraction as an exact [`Angle`], when its reduced numerator (or
    /// its complement's — [`Angle`]'s negated form covers fractions close
    /// to a full turn) fits 128 bits.
    pub(crate) fn to_angle(&self) -> Option<Angle> {
        if let Some(a) = self.to_angle_direct() {
            return Some(a);
        }
        // Near-full-turn fractions (an IQFT column's accumulated negative
        // rotations) have huge direct numerators but a small complement:
        // extract `1 − x` and hand back its exact negation.
        let mut complement = self.clone();
        complement.negate();
        complement.to_angle_direct().map(|a| -a)
    }

    /// [`to_angle`](Self::to_angle)'s positive-form arm: the reduced
    /// numerator itself must fit 128 bits.
    fn to_angle_direct(&self) -> Option<Angle> {
        if self.words.is_empty() {
            return Some(Angle::ZERO);
        }
        let l = self.words.len();
        let tz = self.words[0].trailing_zeros(); // bottom word nonzero
        let top_word = (0..l).rev().find(|&i| self.words[i] != 0)?;
        let top_bit = top_word * 64 + (63 - self.words[top_word].leading_zeros() as usize);
        if top_bit - tz as usize >= 128 {
            return None;
        }
        let mut num: u128 = 0;
        for (i, w) in self.words.iter().enumerate() {
            let w = u128::from(*w);
            let pos = (i * 64) as i64 - i64::from(tz);
            if pos >= 0 {
                if pos < 128 {
                    num |= w << pos;
                }
            } else {
                num |= w >> (-pos);
            }
        }
        let denom = u32::try_from(l * 64).ok()? - tz;
        Some(Angle::from_fraction(num, denom))
    }
}

/// One occupied basis branch.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    /// Little-endian key words; Fourier-mode qubits' bits are canonically
    /// zero here.
    pub(crate) key: Vec<u64>,
    /// Branch amplitude (never an exact complex zero).
    pub(crate) amp: Complex,
    /// Exact global phase of the branch, as a fraction of a turn.
    pub(crate) phase: Dyadic,
    /// Per-Fourier-qubit phases, parallel to the state's sorted
    /// `fourier_qubits` list.
    pub(crate) phis: Vec<Dyadic>,
}

/// Ascending numeric comparison of two equal-width little-endian keys.
fn cmp_keys(a: &[u64], b: &[u64]) -> Ordering {
    for (wa, wb) in a.iter().rev().zip(b.iter().rev()) {
        match wa.cmp(wb) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

fn is_zero_amp(a: Complex) -> bool {
    a.re == 0.0 && a.im == 0.0
}

/// The (word, mask) address of qubit `q` inside a key.
fn bit_addr(q: QubitId) -> (usize, u64) {
    (q.index() / 64, 1u64 << (q.index() % 64))
}

/// The phase-accumulator simulation backend (`MBU_BACKEND=phase`).
///
/// See the [module docs](self) for the representation. Functionally exact
/// on the full gate set; asymptotically fast on the Fourier-arithmetic
/// fragment (QFT adders on basis inputs run at constant occupancy).
///
/// # Examples
///
/// A QFT · IQFT round trip over 200 qubits — far past any amplitude
/// backend — stays at one occupied branch:
///
/// ```
/// use mbu_circuit::{Angle, CircuitBuilder};
/// use mbu_sim::{PhaseAccumulator, Simulator};
/// use rand::SeedableRng;
///
/// let m = 200usize;
/// let mut b = CircuitBuilder::new();
/// let r = b.qreg("r", m);
/// for i in (0..m).rev() {
///     b.h(r[i]);
///     for j in (0..i).rev() {
///         b.cphase(r[j], r[i], Angle::turn_over_power_of_two((i - j + 1) as u32));
///     }
/// }
/// for i in 0..m {
///     for j in 0..i {
///         b.cphase(r[j], r[i], -Angle::turn_over_power_of_two((i - j + 1) as u32));
///     }
///     b.h(r[i]);
/// }
/// let mut sim = PhaseAccumulator::zeros(m).unwrap();
/// sim.set_bit(r[3], true).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// sim.run(&b.finish(), &mut rng).unwrap();
/// assert!(sim.bit(r[3]).unwrap());
/// assert_eq!(sim.occupied(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct PhaseAccumulator {
    num_qubits: usize,
    /// Key width in 64-bit words: `⌈num_qubits/64⌉`, at least 1.
    words: usize,
    /// Per-qubit mode flag: `true` = Fourier.
    fourier: Vec<bool>,
    /// Sorted list of Fourier-mode qubits; every branch's `phis` is
    /// parallel to it.
    fourier_qubits: Vec<u32>,
    /// Occupied branches, sorted ascending by key, pairwise distinct.
    branches: Vec<Branch>,
    /// Occupied-branch high-water mark since the last compiled-run start.
    peak_branches: u64,
    /// High-water mark of the most recent compiled run, once one ran.
    last_run_peak: Option<u64>,
}

impl PhaseAccumulator {
    /// Creates `|0…0⟩` over `num_qubits` qubits: one occupied branch,
    /// everything in Z-mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above
    /// [`MAX_SPARSEVECTOR_QUBITS`] (the backends share the width cap).
    pub fn zeros(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_SPARSEVECTOR_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_SPARSEVECTOR_QUBITS,
            });
        }
        let words = num_qubits.div_ceil(64).max(1);
        Ok(Self {
            num_qubits,
            words,
            fourier: vec![false; num_qubits],
            fourier_qubits: Vec::new(),
            branches: vec![Branch {
                key: vec![0; words],
                amp: Complex::ONE,
                phase: Dyadic::zero(),
                phis: Vec::new(),
            }],
            peak_branches: 1,
            last_run_peak: None,
        })
    }

    /// The number of occupied branches.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.branches.len()
    }

    /// The number of qubits currently held in Fourier mode.
    #[must_use]
    pub fn fourier_width(&self) -> usize {
        self.fourier_qubits.len()
    }

    /// Reads the register as little-endian bits (any width — the
    /// [`value`](Simulator::value) read is capped at 128 bits).
    ///
    /// # Errors
    ///
    /// As [`bit`](Simulator::bit), for any of the qubits.
    pub fn bits(&self, qubits: &[QubitId]) -> Result<Vec<bool>, SimError> {
        qubits.iter().map(|q| Simulator::bit(self, *q)).collect()
    }

    /// Builds a state directly from pre-sorted parts — the
    /// representation-conversion seam (`crate::convert`). Branch keys must
    /// be ascending and pairwise distinct with no exact-zero amplitude,
    /// and every branch's `phis` parallel to `fourier_qubits` (sorted).
    pub(crate) fn from_parts(
        num_qubits: usize,
        fourier_qubits: Vec<u32>,
        branches: Vec<Branch>,
    ) -> Self {
        let words = num_qubits.div_ceil(64).max(1);
        debug_assert!(fourier_qubits.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(branches
            .iter()
            .all(|b| b.key.len() == words && b.phis.len() == fourier_qubits.len()));
        debug_assert!((1..branches.len())
            .all(|e| cmp_keys(&branches[e - 1].key, &branches[e].key) == Ordering::Less));
        debug_assert!(!branches.iter().any(|b| is_zero_amp(b.amp)));
        let mut fourier = vec![false; num_qubits];
        for q in &fourier_qubits {
            fourier[*q as usize] = true;
        }
        let peak = branches.len() as u64;
        Self {
            num_qubits,
            words,
            fourier,
            fourier_qubits,
            branches,
            peak_branches: peak,
            last_run_peak: None,
        }
    }

    /// The sorted Fourier-qubit list (conversion seam).
    pub(crate) fn fourier_list(&self) -> &[u32] {
        &self.fourier_qubits
    }

    /// The occupied branches (conversion seam).
    pub(crate) fn raw_branches(&self) -> &[Branch] {
        &self.branches
    }

    fn note_peak(&mut self) {
        let k = self.branches.len() as u64;
        if k > self.peak_branches {
            self.peak_branches = k;
        }
    }

    /// Restores the ascending-key invariant after a key rewrite.
    fn resort(&mut self) {
        self.branches.sort_by(|a, b| cmp_keys(&a.key, &b.key));
    }

    /// Index of Fourier qubit `q` in the sorted list.
    fn fourier_pos(&self, q: QubitId) -> usize {
        debug_assert!(self.fourier[q.index()]);
        self.fourier_qubits
            .binary_search(&q.0)
            .expect("mode map out of sync")
    }

    /// Same validation as the amplitude engines: out-of-range and
    /// duplicated operands are typed errors, not silent corruption.
    fn validate_gate(&self, gate: &Gate) -> Result<(), SimError> {
        let mut seen: [Option<QubitId>; 3] = [None; 3];
        let mut count = 0usize;
        let mut oob: Option<QubitId> = None;
        let mut dup: Option<QubitId> = None;
        gate.for_each_qubit(&mut |q| {
            if q.index() >= self.num_qubits {
                oob.get_or_insert(q);
            }
            if seen[..count].contains(&Some(q)) {
                dup.get_or_insert(q);
            } else if count < seen.len() {
                seen[count] = Some(q);
                count += 1;
            }
        });
        if let Some(q) = oob {
            return Err(SimError::OutOfRange {
                what: format!("gate `{gate}` on qubit q{}", q.0),
            });
        }
        if let Some(q) = dup {
            return Err(SimError::DuplicateOperand {
                gate: gate.to_string(),
                qubit: q.0,
            });
        }
        Ok(())
    }

    /// Losslessly expands Fourier qubit `q` into explicit 0/1 branches
    /// (the qubit returns to Z-mode; occupancy at most doubles).
    ///
    /// # Errors
    ///
    /// [`SimError::BranchBudgetExceeded`] past [`MAX_PHASE_BRANCHES`].
    fn materialize(&mut self, q: QubitId) -> Result<(), SimError> {
        if self.branches.len() * 2 > MAX_PHASE_BRANCHES {
            return Err(SimError::BranchBudgetExceeded {
                budget: MAX_PHASE_BRANCHES,
            });
        }
        let pos = self.fourier_pos(q);
        let (bw, bm) = bit_addr(q);
        let scale = std::f64::consts::FRAC_1_SQRT_2;
        let mut out = Vec::with_capacity(self.branches.len() * 2);
        for mut b in std::mem::take(&mut self.branches) {
            let phi = b.phis.remove(pos);
            let amp = b.amp.scale(scale);
            let mut one = Branch {
                key: b.key.clone(),
                amp,
                phase: b.phase.clone(),
                phis: b.phis.clone(),
            };
            one.key[bw] |= bm;
            one.phase.add_assign(&phi);
            b.amp = amp;
            out.push(b);
            out.push(one);
        }
        self.branches = out;
        self.fourier_qubits.remove(pos);
        self.fourier[q.index()] = false;
        self.resort();
        self.note_peak();
        Ok(())
    }

    /// Materialises every Fourier qubit (the universal fallback before a
    /// key-level Hadamard on a colliding qubit).
    fn materialize_all(&mut self) -> Result<(), SimError> {
        while let Some(&q) = self.fourier_qubits.last() {
            self.materialize(QubitId(q))?;
        }
        Ok(())
    }

    /// Whether clearing bit `q` would make two occupied keys collide —
    /// i.e. some branch's `q`-flipped partner key is also occupied.
    fn h_promotion_collides(&self, q: QubitId) -> bool {
        let (bw, bm) = bit_addr(q);
        let mut cleared: Vec<Vec<u64>> = self
            .branches
            .iter()
            .map(|b| {
                let mut k = b.key.clone();
                k[bw] &= !bm;
                k
            })
            .collect();
        cleared.sort_by(|a, b| cmp_keys(a, b));
        cleared
            .windows(2)
            .any(|w| cmp_keys(&w[0], &w[1]) == Ordering::Equal)
    }

    /// Key-level Hadamard on Z-mode qubit `q` (the sparse engine's pair
    /// fan-out), used when promotion to Fourier mode is blocked by a
    /// colliding partner. Requires all-Z branches: callers materialise
    /// first. Branch phases are folded into the amplitudes (exact for
    /// quarter-turn multiples) before pairing.
    fn apply_h_keys(&mut self, q: QubitId) {
        for b in &mut self.branches {
            if !b.phase.is_zero() {
                b.amp = b.amp * b.phase.cis();
                b.phase = Dyadic::zero();
            }
        }
        let (bw, bm) = bit_addr(q);
        let k = self.branches.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            let ka = &self.branches[a].key;
            let kb = &self.branches[b].key;
            for w in (0..self.words).rev() {
                let (mut wa, mut wb) = (ka[w], kb[w]);
                if w == bw {
                    wa &= !bm;
                    wb &= !bm;
                }
                match wa.cmp(&wb) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            (ka[bw] & bm).cmp(&(kb[bw] & bm))
        });
        let scale = std::f64::consts::FRAC_1_SQRT_2;
        let mut out: Vec<Branch> = Vec::with_capacity(k * 2);
        let mut i = 0usize;
        while i < k {
            let e = order[i];
            let mut base = self.branches[e].key.clone();
            base[bw] &= !bm;
            let (a, b) = if self.branches[e].key[bw] & bm == 0 {
                let mut b = Complex::ZERO;
                if i + 1 < k {
                    let f = order[i + 1];
                    let kf = &self.branches[f].key;
                    let partner = (kf[bw] & bm != 0)
                        && kf.iter().enumerate().all(|(w, &word)| {
                            if w == bw {
                                word & !bm == base[w]
                            } else {
                                word == base[w]
                            }
                        });
                    if partner {
                        b = self.branches[f].amp;
                        i += 1;
                    }
                }
                (self.branches[e].amp, b)
            } else {
                (Complex::ZERO, self.branches[e].amp)
            };
            i += 1;
            let out0 = (a + b).scale(scale);
            let out1 = (a - b).scale(scale);
            if !is_zero_amp(out0) {
                out.push(Branch {
                    key: base.clone(),
                    amp: out0,
                    phase: Dyadic::zero(),
                    phis: Vec::new(),
                });
            }
            if !is_zero_amp(out1) {
                base[bw] |= bm;
                out.push(Branch {
                    key: base,
                    amp: out1,
                    phase: Dyadic::zero(),
                    phis: Vec::new(),
                });
            }
        }
        self.branches = out;
        self.resort();
        self.note_peak();
    }

    /// Hadamard on `q`.
    ///
    /// * Fourier-mode with every branch's `φ_q ∈ {0, ½}`: exact collapse
    ///   to a definite bit (`φ = ½` reads 1) — the IQFT's closing step.
    /// * Z-mode with no partner collision: exact promotion to Fourier mode
    ///   (`φ = bit·½`), occupancy unchanged — the QFT's opening step.
    /// * Otherwise: materialise and fan out on keys, like the sparse map.
    fn apply_h(&mut self, q: QubitId) -> Result<(), SimError> {
        if self.fourier[q.index()] {
            let pos = self.fourier_pos(q);
            if self.branches.iter().all(|b| b.phis[pos].is_half_multiple()) {
                let (bw, bm) = bit_addr(q);
                for b in &mut self.branches {
                    let phi = b.phis.remove(pos);
                    if phi.is_half() {
                        b.key[bw] |= bm;
                    }
                }
                self.fourier_qubits.remove(pos);
                self.fourier[q.index()] = false;
                self.resort();
                return Ok(());
            }
            self.materialize(q)?;
            return self.apply_h(q);
        }
        if self.h_promotion_collides(q) {
            self.materialize_all()?;
            if self.branches.len() * 2 > MAX_PHASE_BRANCHES {
                return Err(SimError::BranchBudgetExceeded {
                    budget: MAX_PHASE_BRANCHES,
                });
            }
            self.apply_h_keys(q);
            return Ok(());
        }
        let (bw, bm) = bit_addr(q);
        let pos = self
            .fourier_qubits
            .binary_search(&q.0)
            .expect_err("Z-mode qubit in the Fourier list");
        for b in &mut self.branches {
            let phi = if b.key[bw] & bm != 0 {
                Dyadic::half()
            } else {
                Dyadic::zero()
            };
            b.key[bw] &= !bm;
            b.phis.insert(pos, phi);
        }
        self.fourier_qubits.insert(pos, q.0);
        self.fourier[q.index()] = true;
        self.resort();
        Ok(())
    }

    /// The X/CX/CCX family: key toggles on Z-mode targets, exact phase
    /// reflection (`phase += φ; φ ↦ −φ`) on Fourier-mode targets.
    /// Fourier-mode *controls* are materialised first — a control has to
    /// be read, and a Fourier factor holds no definite bit.
    fn permute_x(&mut self, controls: &[QubitId], target: QubitId) -> Result<(), SimError> {
        for c in controls {
            if self.fourier[c.index()] {
                self.materialize(*c)?;
            }
        }
        let ctrl: Vec<(usize, u64)> = controls.iter().map(|c| bit_addr(*c)).collect();
        if self.fourier[target.index()] {
            let pos = self.fourier_pos(target);
            for b in &mut self.branches {
                if ctrl.iter().all(|&(w, m)| b.key[w] & m != 0) {
                    let phi = b.phis[pos].clone();
                    b.phase.add_assign(&phi);
                    b.phis[pos].negate();
                }
            }
            return Ok(());
        }
        let (tw, tm) = bit_addr(target);
        for b in &mut self.branches {
            if ctrl.iter().all(|&(w, m)| b.key[w] & m != 0) {
                b.key[tw] ^= tm;
            }
        }
        self.resort();
        Ok(())
    }

    /// The diagonal family (`Z`/`CZ`/`CCZ` at a half turn, `Phase`/
    /// `CPhase`/`CCPhase` at any dyadic angle): O(occupied) exact angle
    /// additions. With one Fourier-mode operand the angle lands on that
    /// qubit's accumulator (conditioned on the Z-mode operands' bits);
    /// with none it lands on the branch phase. Two or more Fourier
    /// operands do not factorise — all but the last are materialised.
    fn apply_diagonal(&mut self, operands: &[QubitId], theta: Angle) -> Result<(), SimError> {
        if theta.is_zero() {
            return Ok(());
        }
        let mut fops: Vec<QubitId> = operands
            .iter()
            .copied()
            .filter(|q| self.fourier[q.index()])
            .collect();
        while fops.len() > 1 {
            self.materialize(fops.remove(0))?;
        }
        let fpos = fops.first().map(|q| self.fourier_pos(*q));
        let zops: Vec<(usize, u64)> = operands
            .iter()
            .filter(|q| !self.fourier[q.index()])
            .map(|q| bit_addr(*q))
            .collect();
        for b in &mut self.branches {
            if zops.iter().all(|&(w, m)| b.key[w] & m != 0) {
                match fpos {
                    Some(pos) => b.phis[pos].add_angle(theta),
                    None => b.phase.add_angle(theta),
                }
            }
        }
        Ok(())
    }

    /// SWAP exchanges the two qubits' entire factors, whatever their
    /// modes: bits swap as key rewrites, Fourier accumulators move with
    /// their qubit (the mode map is updated — no materialisation needed).
    fn apply_swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        match (self.fourier[a.index()], self.fourier[b.index()]) {
            (false, false) => {
                let (aw, am) = bit_addr(a);
                let (bw, bm) = bit_addr(b);
                for br in &mut self.branches {
                    if (br.key[aw] & am != 0) != (br.key[bw] & bm != 0) {
                        br.key[aw] ^= am;
                        br.key[bw] ^= bm;
                    }
                }
                self.resort();
            }
            (true, true) => {
                let pa = self.fourier_pos(a);
                let pb = self.fourier_pos(b);
                for br in &mut self.branches {
                    br.phis.swap(pa, pb);
                }
            }
            (true, false) => return self.swap_mixed(a, b),
            (false, true) => return self.swap_mixed(b, a),
        }
        Ok(())
    }

    /// SWAP with `f` in Fourier mode and `z` in Z-mode: `z` takes the
    /// accumulator, `f` takes the bit.
    fn swap_mixed(&mut self, f: QubitId, z: QubitId) -> Result<(), SimError> {
        let pf = self.fourier_pos(f);
        let (fw, fm) = bit_addr(f);
        let (zw, zm) = bit_addr(z);
        self.fourier_qubits.remove(pf);
        self.fourier[f.index()] = false;
        let pz = self
            .fourier_qubits
            .binary_search(&z.0)
            .expect_err("Z-mode qubit in the Fourier list");
        self.fourier_qubits.insert(pz, z.0);
        self.fourier[z.index()] = true;
        for br in &mut self.branches {
            let phi = br.phis.remove(pf);
            br.phis.insert(pz, phi);
            let z_bit = br.key[zw] & zm != 0;
            br.key[zw] &= !zm;
            if z_bit {
                br.key[fw] |= fm;
            } else {
                br.key[fw] &= !fm;
            }
        }
        self.resort();
        Ok(())
    }

    fn apply(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.validate_gate(gate)?;
        match *gate {
            Gate::X(q) => self.permute_x(&[], q),
            Gate::Cx(c, t) => self.permute_x(&[c], t),
            Gate::Ccx(c1, c2, t) => self.permute_x(&[c1, c2], t),
            Gate::Swap(a, b) => self.apply_swap(a, b),
            Gate::Z(q) => self.apply_diagonal(&[q], Angle::HALF_TURN),
            Gate::Cz(x, y) => self.apply_diagonal(&[x, y], Angle::HALF_TURN),
            Gate::Ccz(x, y, z) => self.apply_diagonal(&[x, y, z], Angle::HALF_TURN),
            Gate::Phase(q, theta) => self.apply_diagonal(&[q], theta),
            Gate::CPhase(c, t, theta) => self.apply_diagonal(&[c, t], theta),
            Gate::CcPhase(c1, c2, t, theta) => self.apply_diagonal(&[c1, c2, t], theta),
            Gate::H(q) => self.apply_h(q),
        }
    }

    /// The Born probability that qubit `q` reads 1, clamped into `[0, 1]`
    /// (ascending-key sum over occupied branches). Requires Z-mode.
    fn z_prob_one(&self, q: QubitId) -> f64 {
        let (w, m) = bit_addr(q);
        let p1: f64 = self
            .branches
            .iter()
            .filter(|b| b.key[w] & m != 0)
            .map(|b| b.amp.norm_sqr())
            .sum();
        p1.clamp(0.0, 1.0)
    }

    /// The renormalisation factor for projecting onto branch `outcome`,
    /// with the amplitude engines' kept-mass fallback (never inf/NaN).
    fn z_branch_scale(&self, q: QubitId, outcome: bool, p1: f64) -> f64 {
        let p = if outcome { p1 } else { 1.0 - p1 };
        if p > 0.0 {
            1.0 / p.sqrt()
        } else {
            let (w, m) = bit_addr(q);
            let kept: f64 = self
                .branches
                .iter()
                .filter(|b| (b.key[w] & m != 0) == outcome)
                .map(|b| b.amp.norm_sqr())
                .sum();
            if kept > 0.0 {
                1.0 / kept.sqrt()
            } else {
                1.0
            }
        }
    }

    /// Projects onto branch `outcome` of Z-mode qubit `q`, scaling
    /// survivors by `scale` and culling exact zeros.
    fn project(&mut self, q: QubitId, outcome: bool, scale: f64) {
        let (w, m) = bit_addr(q);
        self.branches.retain_mut(|b| {
            if (b.key[w] & m != 0) != outcome {
                return false;
            }
            b.amp = b.amp.scale(scale);
            !is_zero_amp(b.amp)
        });
    }

    /// Z-basis measurement with the shared definite-outcome rule: a Born
    /// probability of exactly `0.0`/`1.0` forces the outcome and consumes
    /// **no** draw; otherwise one draw decides. A Fourier-mode qubit is
    /// materialised first (it is a genuine superposition).
    fn measure_z(
        &mut self,
        q: QubitId,
        draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError> {
        if self.fourier[q.index()] {
            self.materialize(q)?;
        }
        let p1 = self.z_prob_one(q);
        let outcome = if p1 == 0.0 {
            false
        } else if p1 == 1.0 {
            true
        } else {
            draw(p1)
        };
        let scale = self.z_branch_scale(q, outcome, p1);
        self.project(q, outcome, scale);
        Ok(outcome)
    }

    /// The both-branch Z measurement behind
    /// [`measure_fork`](Simulator::measure_fork), mirroring the sparse
    /// engine's fork semantics (definite outcomes consume no randomness).
    fn fork_z(&mut self, q: QubitId) -> Result<ConcreteFork<PhaseAccumulator>, SimError> {
        if self.fourier[q.index()] {
            self.materialize(q)?;
        }
        let p1 = self.z_prob_one(q);
        if p1 == 0.0 || p1 == 1.0 {
            let outcome = p1 == 1.0;
            self.project(q, outcome, self.z_branch_scale(q, outcome, p1));
            return Ok(ConcreteFork::Definite(outcome));
        }
        let scale0 = self.z_branch_scale(q, false, p1);
        let scale1 = self.z_branch_scale(q, true, p1);
        let mut one = self.clone();
        one.last_run_peak = None;
        self.project(q, false, scale0);
        one.project(q, true, scale1);
        one.note_peak();
        Ok(ConcreteFork::Split {
            p_one: p1,
            one: Some(one),
        })
    }

    /// The typed fork (see [`ConcreteFork`]): wrapper backends re-wrap the
    /// branch to keep planning state.
    pub(crate) fn fork_concrete(
        &mut self,
        qubit: QubitId,
        basis: Basis,
    ) -> Result<ConcreteFork<PhaseAccumulator>, SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("measured qubit q{}", qubit.0),
            });
        }
        match basis {
            Basis::Z => self.fork_z(qubit),
            Basis::X => {
                self.apply(&Gate::H(qubit))?;
                let fork = self.fork_z(qubit)?;
                self.apply(&Gate::H(qubit))?;
                match fork {
                    ConcreteFork::Definite(b) => Ok(ConcreteFork::Definite(b)),
                    ConcreteFork::Split { p_one, mut one } => {
                        if let Some(one) = one.as_mut() {
                            one.apply(&Gate::H(qubit))?;
                        }
                        Ok(ConcreteFork::Split { p_one, one })
                    }
                }
            }
        }
    }

    /// A definite-bit read under the shared tolerance. Fourier-mode
    /// qubits are even superpositions — never definite.
    fn definite_bit(&self, q: QubitId) -> Result<bool, SimError> {
        if self.fourier[q.index()] {
            return Err(SimError::ReadOfSuperposedQubit { qubit: q.0 });
        }
        let p1 = self.z_prob_one(q);
        if p1 >= 1.0 - DEFINITE_TOL {
            Ok(true)
        } else if p1 <= DEFINITE_TOL {
            Ok(false)
        } else {
            Err(SimError::ReadOfSuperposedQubit { qubit: q.0 })
        }
    }
}

impl Simulator for PhaseAccumulator {
    fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.apply(gate)
    }

    fn measure(
        &mut self,
        qubit: QubitId,
        basis: Basis,
        draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("measured qubit q{}", qubit.0),
            });
        }
        match basis {
            Basis::Z => self.measure_z(qubit, draw),
            Basis::X => {
                self.apply(&Gate::H(qubit))?;
                let outcome = self.measure_z(qubit, draw)?;
                self.apply(&Gate::H(qubit))?;
                Ok(outcome)
            }
        }
    }

    fn measure_fork(&mut self, qubit: QubitId, basis: Basis) -> Result<Option<Fork>, SimError> {
        Ok(Some(self.fork_concrete(qubit, basis)?.into_fork()))
    }

    fn reset(&mut self, qubit: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> Result<(), SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("reset qubit q{}", qubit.0),
            });
        }
        if self.measure_z(qubit, draw)? {
            self.apply(&Gate::X(qubit))?;
        }
        Ok(())
    }

    fn set_bit(&mut self, q: QubitId, value: bool) -> Result<(), SimError> {
        if q.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        if self.definite_bit(q)? != value {
            self.apply(&Gate::X(q))?;
        }
        Ok(())
    }

    fn bit(&self, q: QubitId) -> Result<bool, SimError> {
        if q.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        self.definite_bit(q)
    }

    fn peak_amplitudes(&self) -> Option<u64> {
        self.last_run_peak
    }

    fn occupancy_peak(&self) -> Option<u64> {
        Some(self.peak_branches)
    }

    fn global_phase(&self) -> Option<Angle> {
        // Meaningful when the state is a single branch with no Fourier
        // factors. The exact path: a bitwise-one amplitude hands back the
        // branch's dyadic accumulator directly, at any depth.
        if self.branches.len() != 1 || !self.fourier_qubits.is_empty() {
            return None;
        }
        let b = &self.branches[0];
        if b.amp.re == 1.0 && b.amp.im == 0.0 {
            return b.phase.to_angle();
        }
        // Inexact amplitude: recover a dyadic phase numerically, the
        // amplitude engines' policy.
        let total = b.amp * b.phase.cis();
        if (total.norm() - 1.0).abs() > 1e-6 {
            return None;
        }
        let tau = std::f64::consts::TAU;
        let turns = (total.im.atan2(total.re) / tau).rem_euclid(1.0);
        const LOG2_DENOM: u32 = 24;
        let scaled = (turns * f64::from(1u32 << LOG2_DENOM)).round();
        let numerator = (scaled as u128) % (1u128 << LOG2_DENOM);
        let angle = Angle::from_fraction(numerator, LOG2_DENOM);
        let back = Complex::cis(angle.radians());
        if (back - total).norm() < 1e-6 {
            Some(angle)
        } else {
            None
        }
    }

    /// Compiled execution through the shared program-counter core, with
    /// the branch high-water mark reset and reported like the sparse
    /// engine's. Warns once (via [`mbu_circuit::knobs`]) when the program
    /// has no diagonal gates at all — forcing `MBU_BACKEND=phase` on such
    /// a circuit never engages the fast path and the sparse map would be
    /// at least as good.
    fn run_compiled(
        &mut self,
        compiled: &CompiledCircuit,
        rng: &mut dyn RngCore,
    ) -> Result<Executed, SimError> {
        exec::check_width(compiled.num_qubits(), self.num_qubits)?;
        if compiled
            .segment_profiles()
            .iter()
            .all(|p| p.diag_count == 0)
        {
            knobs::warn_once(
                "phase-backend-no-diagonal",
                "phase backend: program has no diagonal gates, so the \
                 phase-accumulator fast path never engages; MBU_BACKEND=sparse \
                 is at least as fast on this circuit",
            );
        }
        self.peak_branches = self.branches.len() as u64;
        let mut executed = Executed::default();
        exec::execute_compiled(self, compiled, rng, &mut executed)?;
        self.last_run_peak = Some(self.peak_branches);
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn dyadic_arithmetic_is_exact() {
        let mut x = Dyadic::zero();
        x.add_angle(Angle::turn_over_power_of_two(2)); // 1/4
        x.add_angle(Angle::turn_over_power_of_two(2)); // 1/2
        assert!(x.is_half());
        x.add_angle(Angle::turn_over_power_of_two(1)); // wraps to 0
        assert!(x.is_zero());

        // Deep fractions survive a round trip through Angle.
        let deep = Angle::turn_over_power_of_two(1025);
        let mut y = Dyadic::from_angle(deep);
        assert_eq!(y.to_angle(), Some(deep));
        y.negate();
        assert_eq!(y.to_angle(), Some(-deep));
        y.add_angle(deep);
        assert!(y.is_zero());
    }

    #[test]
    fn dyadic_cis_hits_quarter_turns_exactly() {
        let mk = |k: u32| Dyadic::from_angle(Angle::turn_over_power_of_two(k));
        assert_eq!(Dyadic::zero().cis(), Complex::ONE);
        assert_eq!(mk(1).cis(), Complex::new(-1.0, 0.0));
        assert_eq!(mk(2).cis(), Complex::I);
        let mut three_q = mk(2);
        three_q.add_angle(Angle::HALF_TURN);
        assert_eq!(three_q.cis(), Complex::new(0.0, -1.0));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn qft_adder_runs_at_constant_occupancy() {
        // wrapping_add-shaped circuit built by hand at a width no
        // amplitude backend can touch in the Fourier basis.
        let n = 150usize;
        let mut b = CircuitBuilder::new();
        let x = b.qreg("x", n);
        let y = b.qreg("y", n);
        // QFT(y)
        for i in (0..n).rev() {
            b.h(y[i]);
            for j in (0..i).rev() {
                b.cphase(
                    y[j],
                    y[i],
                    Angle::turn_over_power_of_two((i - j + 1) as u32),
                );
            }
        }
        // ΦADD(x → y)
        for i in 0..n {
            for j in 0..=i {
                b.cphase(
                    x[j],
                    y[i],
                    Angle::turn_over_power_of_two((i - j + 1) as u32),
                );
            }
        }
        // IQFT(y)
        for i in 0..n {
            for j in 0..i {
                b.cphase(
                    y[j],
                    y[i],
                    -Angle::turn_over_power_of_two((i - j + 1) as u32),
                );
            }
            b.h(y[i]);
        }
        let circuit = b.finish();

        let mut sim = PhaseAccumulator::zeros(circuit.num_qubits()).unwrap();
        // x = 2^149 + 5, y = 2^149 + 1: the sum needs exact carries across
        // all 150 bits.
        sim.set_bit(x[0], true).unwrap();
        sim.set_bit(x[2], true).unwrap();
        sim.set_bit(x[149], true).unwrap();
        sim.set_bit(y[0], true).unwrap();
        sim.set_bit(y[149], true).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        sim.run(&circuit, &mut rng).unwrap();

        // (2^149+5) + (2^149+1) mod 2^150 = 6.
        let got = sim.bits(y.qubits()).unwrap();
        for (i, bit) in got.iter().enumerate() {
            assert_eq!(*bit, i == 1 || i == 2, "y bit {i}");
        }
        assert_eq!(sim.occupied(), 1, "adder must not fan out");
        assert!(sim.global_phase().map(|a| a.is_zero()).unwrap_or(false));
    }

    #[test]
    fn matches_dense_engine_on_a_superposition_circuit() {
        use crate::StateVector;
        // A circuit that leaves the closed fragment: H fan-out, phases at
        // odd angles, a CX, another H — exercises materialisation and the
        // key-level Hadamard fallback.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", 3);
        b.h(r[0]);
        b.cphase(r[0], r[1], Angle::turn_over_power_of_two(3));
        b.x(r[1]);
        b.cx(r[0], r[2]);
        b.h(r[0]);
        b.phase(r[2], Angle::turn_over_power_of_two(2));
        b.h(r[1]);
        b.h(r[1]);
        let circuit = b.finish();

        let mut dense = StateVector::zeros(3).unwrap();
        let mut rng1 = StdRng::seed_from_u64(9);
        dense.run(&circuit, &mut rng1).unwrap();

        let mut phase = PhaseAccumulator::zeros(3).unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        phase.run(&circuit, &mut rng2).unwrap();

        // Compare amplitudes through the conversion seam.
        let sv = crate::convert::phase_to_sparse(&phase).unwrap();
        for idx in 0..8u64 {
            let want = dense.amplitude(idx);
            let got = sv.amplitude(u128::from(idx));
            assert!(
                (want - got).norm() < 1e-12,
                "amp[{idx}]: dense {want} vs phase {got}"
            );
        }
    }

    #[test]
    fn measurement_forks_and_definite_outcomes_mirror_sparse() {
        // |+⟩ on q0, definite 1 on q1.
        let mut sim = PhaseAccumulator::zeros(2).unwrap();
        sim.set_bit(q(1), true).unwrap();
        sim.apply(&Gate::H(q(0))).unwrap();
        // Definite bit: no draw consumed.
        let mut draws = 0usize;
        let got = sim
            .measure(q(1), Basis::Z, &mut |_| {
                draws += 1;
                true
            })
            .unwrap();
        assert!(got);
        assert_eq!(draws, 0, "definite measurement must consume no draw");
        // Superposed qubit (Fourier mode after H): one draw.
        let got0 = sim
            .measure(q(0), Basis::Z, &mut |p| {
                draws += 1;
                assert!((p - 0.5).abs() < 1e-12);
                false
            })
            .unwrap();
        assert!(!got0);
        assert_eq!(draws, 1);
        assert_eq!(sim.occupied(), 1);
    }

    #[test]
    fn fork_splits_even_superpositions() {
        let mut sim = PhaseAccumulator::zeros(1).unwrap();
        sim.apply(&Gate::H(q(0))).unwrap();
        match sim.fork_concrete(q(0), Basis::Z).unwrap() {
            ConcreteFork::Split { p_one, one } => {
                assert!((p_one - 0.5).abs() < 1e-12);
                let one = one.unwrap();
                assert!(one.bit(q(0)).unwrap());
                assert!(!sim.bit(q(0)).unwrap());
            }
            ConcreteFork::Definite(_) => panic!("even superposition must split"),
        }
    }

    #[test]
    fn x_basis_measurement_conjugates_like_the_amplitude_engines() {
        let mut sim = PhaseAccumulator::zeros(1).unwrap();
        sim.apply(&Gate::H(q(0))).unwrap();
        // |+⟩ measured in X is definitely 0: no draw.
        let mut draws = 0usize;
        let got = sim
            .measure(q(0), Basis::X, &mut |_| {
                draws += 1;
                true
            })
            .unwrap();
        assert!(!got);
        assert_eq!(draws, 0);
    }

    #[test]
    fn swap_moves_fourier_accumulators_between_modes() {
        use crate::StateVector;
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", 2);
        b.h(r[0]);
        b.phase(r[0], Angle::turn_over_power_of_two(3));
        b.x(r[1]);
        b.swap(r[0], r[1]);
        b.h(r[1]);
        let circuit = b.finish();

        let mut dense = StateVector::zeros(2).unwrap();
        let mut rng1 = StdRng::seed_from_u64(5);
        dense.run(&circuit, &mut rng1).unwrap();
        let mut phase = PhaseAccumulator::zeros(2).unwrap();
        let mut rng2 = StdRng::seed_from_u64(5);
        phase.run(&circuit, &mut rng2).unwrap();
        let sv = crate::convert::phase_to_sparse(&phase).unwrap();
        for idx in 0..4u64 {
            assert!(
                (dense.amplitude(idx) - sv.amplitude(u128::from(idx))).norm() < 1e-12,
                "amp[{idx}]"
            );
        }
    }

    #[test]
    fn occupancy_peak_reports_branches_not_two_to_the_n() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", 100);
        // QFT-fragment H's keep occupancy at 1; one genuine fan-out
        // (materialised odd-angle phase then H) doubles it.
        b.h(r[0]);
        b.phase(r[0], Angle::turn_over_power_of_two(3));
        b.h(r[0]);
        let compiled = mbu_circuit::CompiledCircuit::lower(&b.finish()).unwrap();
        let mut sim = PhaseAccumulator::zeros(100).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        sim.run_compiled(&compiled, &mut rng).unwrap();
        assert_eq!(sim.occupancy_peak(), Some(2));
        assert_eq!(sim.peak_amplitudes(), Some(2));
    }

    #[test]
    fn width_cap_matches_the_sparse_backend() {
        assert!(matches!(
            PhaseAccumulator::zeros(MAX_SPARSEVECTOR_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
        assert!(PhaseAccumulator::zeros(MAX_SPARSEVECTOR_QUBITS).is_ok());
    }
}
