//! Lossless state conversion between simulator representations.
//!
//! The hybrid planner ([`HybridState`](crate::HybridState)) switches a
//! running state between the dense amplitude array and the sparse basis
//! map at segment boundaries; these conversions are its seams. Both
//! amplitude-level conversions are **bit-exact**: no arithmetic is
//! performed on any amplitude — entries are moved, never recomputed — so
//! a state converted dense→sparse→dense compares bitwise equal to the
//! original on its nonzero support, and a run that hops representations
//! produces amplitudes bit-identical to the best single-representation
//! run. The one canonicalisation is the sign of exact zeros: dense
//! diagonal sweeps may leave `-0.0` on unoccupied indices, culling treats
//! it as the zero it is, and re-materialisation writes `+0.0` back.
//!
//! * [`sparse_to_dense`] scatters the occupied entries into a freshly
//!   zeroed `2^n` array (fails above the dense width cap);
//! * [`dense_to_sparse`] culls exact zeros in ascending index order —
//!   ascending index *is* ascending key order, so the map invariant holds
//!   by construction and the occupied set equals the dense array's
//!   nonzero support exactly (the sparse engine's own culling rule);
//! * [`tracker_to_sparse`] enumerates the [`BasisTracker`]'s tensor-product
//!   state (`2^(X-mode qubits)` entries) into the map, so a tracker run
//!   that is about to leave the Toffoli fragment can be resumed on an
//!   amplitude backend instead of erroring out;
//! * [`sparse_to_phase`] lifts the map into the phase-accumulator
//!   representation ([`PhaseAccumulator`]) losslessly — every entry
//!   becomes an all-Z branch with its amplitude moved bitwise — so a
//!   diagonal-heavy segment can run on exact dyadic phase arithmetic;
//! * [`phase_to_sparse`] enumerates a phase-accumulator state back into
//!   the map (`2^(Fourier qubits)` entries per branch, like the tracker
//!   conversion), with each entry's phase evaluated from the *exact*
//!   dyadic accumulators in a single `cis`. A state that never left
//!   Z-mode converts back bitwise — the round trip is the identity;
//! * [`dense_to_phase`] / [`phase_to_dense`] compose the above through
//!   the sparse map.

use crate::basis::{BasisTracker, Mode};
use crate::complex::Complex;
use crate::error::SimError;
use crate::phase::{Branch, Dyadic, PhaseAccumulator};
use crate::simulator::Simulator;
use crate::sparse::SparseVector;
use crate::statevector::{StateVector, MAX_STATEVECTOR_QUBITS};

/// Widest tracker state [`tracker_to_sparse`] will enumerate: `2^20`
/// occupied entries (~32 MiB of keys+amplitudes at one key word). The
/// tracker itself is `O(1)` per gate at any superposition width; the cap
/// only bounds what a *conversion out of it* may materialise.
pub const MAX_TRACKER_ENUM_XMODE: usize = 20;

/// Converts a sparse basis map into the dense amplitude array holding the
/// same state: every occupied entry lands at its basis index, every other
/// index is an exact zero. Amplitudes are moved bitwise — no arithmetic.
///
/// The dense state is built with the process-default kernel mode,
/// SIMD/reclamation switches and amplitude-lane count, exactly like
/// [`StateVector::zeros`] — so a converted state behaves like a natively
/// constructed one.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] when the sparse state is wider
/// than [`MAX_STATEVECTOR_QUBITS`] (the `2^n` array cannot exist).
pub fn sparse_to_dense(sparse: &SparseVector) -> Result<StateVector, SimError> {
    let n = Simulator::num_qubits(sparse);
    if n > MAX_STATEVECTOR_QUBITS {
        return Err(SimError::TooManyQubits {
            requested: n,
            max: MAX_STATEVECTOR_QUBITS,
        });
    }
    // ≤ 26 qubits fits one key word; wider keys were rejected above.
    let words = sparse.key_words();
    let mut amps = vec![Complex::ZERO; 1usize << n];
    for (e, &a) in sparse.raw_amps().iter().enumerate() {
        let index = sparse.raw_keys()[e * words];
        amps[usize::try_from(index).map_err(|_| SimError::OutOfRange {
            what: format!("sparse key {index} in a {n}-qubit state"),
        })?] = a;
    }
    StateVector::from_amplitudes(amps)
}

/// Converts a dense amplitude array into the sparse basis map holding the
/// same state: exact zeros are culled (the sparse engine's own occupancy
/// rule, so the occupied set equals the dense nonzero support), everything
/// else is moved bitwise in ascending index order — which *is* ascending
/// key order, so the map's sort invariant holds by construction.
pub fn dense_to_sparse(dense: &StateVector) -> SparseVector {
    let n = dense.num_qubits();
    let mut keys = Vec::new();
    let mut amps = Vec::new();
    for (i, a) in dense.amplitudes().into_iter().enumerate() {
        if a.re != 0.0 || a.im != 0.0 {
            keys.push(i as u64);
            amps.push(a);
        }
    }
    SparseVector::from_sorted_entries(n, keys, amps)
}

/// Converts a [`BasisTracker`]'s product state into the sparse basis map:
/// one entry per assignment of the X-mode qubits, each with amplitude
/// `(±1)·(1/√2)^k · e^{2πi·phase}` (`k` = X-mode count, sign from the
/// `|−⟩` factors on set bits).
///
/// The amplitude of each entry is computed by chained `1/√2` multiplies in
/// ascending qubit order — the same expression an `H` cascade evaluates —
/// but the tracker performs no amplitude arithmetic of its own, so unlike
/// the dense↔sparse pair this conversion defines the amplitudes rather
/// than moving existing bits.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] when more than
/// [`MAX_TRACKER_ENUM_XMODE`] qubits are in X-mode (the enumeration would
/// materialise more than `2^20` entries).
pub fn tracker_to_sparse(tracker: &BasisTracker) -> Result<SparseVector, SimError> {
    let modes = tracker.modes();
    let n = modes.len();
    // The X-mode qubits, ascending, plus the definite-bit base key.
    let words = n.div_ceil(64).max(1);
    let mut base = vec![0u64; words];
    let mut x_qubits: Vec<(usize, bool)> = Vec::new();
    for (q, mode) in modes.iter().enumerate() {
        match *mode {
            Mode::Z(true) => base[q / 64] |= 1u64 << (q % 64),
            Mode::Z(false) => {}
            Mode::X(sign) => x_qubits.push((q, sign)),
        }
    }
    if x_qubits.len() > MAX_TRACKER_ENUM_XMODE {
        return Err(SimError::TooManyQubits {
            requested: x_qubits.len(),
            max: MAX_TRACKER_ENUM_XMODE,
        });
    }
    let phase = Complex::cis(tracker.global_phase().radians());
    let mut magnitude = phase;
    for _ in &x_qubits {
        magnitude = magnitude.scale(std::f64::consts::FRAC_1_SQRT_2);
    }
    let entries = 1usize << x_qubits.len();
    let mut keys = Vec::with_capacity(entries * words);
    let mut amps = Vec::with_capacity(entries);
    // Scattering counter bit `j` into the ascending X-mode position
    // `x_qubits[j]` is monotonic in the counter, so the emitted keys are
    // already ascending — no sort needed.
    for assignment in 0..entries {
        let mut key = base.clone();
        let mut negate = false;
        for (j, &(q, sign)) in x_qubits.iter().enumerate() {
            if assignment >> j & 1 == 1 {
                key[q / 64] |= 1u64 << (q % 64);
                negate ^= sign;
            }
        }
        keys.extend_from_slice(&key);
        amps.push(if negate { -magnitude } else { magnitude });
    }
    Ok(SparseVector::from_sorted_entries(n, keys, amps))
}

/// Widest Fourier-mode register [`phase_to_sparse`] will enumerate: each
/// occupied branch expands into `2^f` map entries over `f` Fourier
/// qubits, and past `2^20` the enumeration defeats the point of having
/// left the amplitude representation.
pub const MAX_PHASE_ENUM_FOURIER: usize = 20;

/// Lifts a sparse basis map into the phase-accumulator representation.
///
/// Lossless and bitwise: every occupied entry becomes one all-Z branch
/// whose amplitude is moved untouched, with zero phase accumulators. The
/// map's ascending-key invariant is the branch invariant, so no sorting
/// happens. This is the cheap direction — the hybrid planner takes it on
/// entry to a diagonal-heavy segment.
pub fn sparse_to_phase(sparse: &SparseVector) -> PhaseAccumulator {
    let n = Simulator::num_qubits(sparse);
    let words = sparse.key_words();
    let branches = sparse
        .raw_amps()
        .iter()
        .enumerate()
        .map(|(e, &amp)| Branch {
            key: sparse.raw_keys()[e * words..(e + 1) * words].to_vec(),
            amp,
            phase: Dyadic::zero(),
            phis: Vec::new(),
        })
        .collect();
    PhaseAccumulator::from_parts(n, Vec::new(), branches)
}

/// Enumerates a phase-accumulator state into the sparse basis map.
///
/// Each branch expands into `2^f` entries over the `f` Fourier-mode
/// qubits. An entry's phase is the **exact** dyadic sum of the branch
/// phase and the selected qubits' accumulators, evaluated in a single
/// `cis` — no per-gate rounding survives from the diagonal segment, which
/// is precisely what the phase representation buys. The magnitude is the
/// `H`-cascade's chained `1/√2` products (the [`tracker_to_sparse`]
/// convention). A state with no Fourier qubits converts back bitwise, so
/// `sparse → phase → sparse` around an all-Z segment is the identity.
///
/// Exact zeros are culled on the way out (the map's occupancy rule), and
/// any `-0.0` produced by the phase arithmetic is canonicalised to `+0.0`
/// so keys-plus-amplitudes compare bitwise across conversion paths.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] when more than
/// [`MAX_PHASE_ENUM_FOURIER`] qubits are in Fourier mode.
pub fn phase_to_sparse(phase: &PhaseAccumulator) -> Result<SparseVector, SimError> {
    let n = Simulator::num_qubits(phase);
    let fourier = phase.fourier_list();
    let f = fourier.len();
    if f > MAX_PHASE_ENUM_FOURIER {
        return Err(SimError::TooManyQubits {
            requested: f,
            max: MAX_PHASE_ENUM_FOURIER,
        });
    }
    let words = n.div_ceil(64).max(1);
    let mut entries: Vec<(Vec<u64>, Complex)> = Vec::with_capacity(phase.raw_branches().len() << f);
    for branch in phase.raw_branches() {
        let mut magnitude = branch.amp;
        for _ in 0..f {
            magnitude = magnitude.scale(std::f64::consts::FRAC_1_SQRT_2);
        }
        for assignment in 0..(1usize << f) {
            let mut key = branch.key.clone();
            let mut turns = branch.phase.clone();
            for (j, &q) in fourier.iter().enumerate() {
                if assignment >> j & 1 == 1 {
                    key[q as usize / 64] |= 1u64 << (q as usize % 64);
                    turns.add_assign(&branch.phis[j]);
                }
            }
            let mut amp = if turns.is_zero() {
                magnitude
            } else {
                magnitude * turns.cis()
            };
            if amp.re == 0.0 && amp.im == 0.0 {
                continue;
            }
            // Canonicalise exact-zero components: diagonal arithmetic may
            // leave `-0.0`, which breaks bitwise comparisons downstream.
            if amp.re == 0.0 {
                amp.re = 0.0;
            }
            if amp.im == 0.0 {
                amp.im = 0.0;
            }
            entries.push((key, amp));
        }
    }
    // Branch keys are ascending and Fourier bit patterns expand each
    // branch into a contiguous block, but blocks from different branches
    // can interleave once Fourier bits are set — sort globally.
    entries.sort_by(|a, b| a.0.iter().rev().cmp(b.0.iter().rev()));
    let mut keys = Vec::with_capacity(entries.len() * words);
    let mut amps = Vec::with_capacity(entries.len());
    for (key, amp) in entries {
        keys.extend_from_slice(&key);
        amps.push(amp);
    }
    Ok(SparseVector::from_sorted_entries(n, keys, amps))
}

/// Converts a dense amplitude array into the phase-accumulator
/// representation (through the sparse map; both legs lossless).
pub fn dense_to_phase(dense: &StateVector) -> PhaseAccumulator {
    sparse_to_phase(&dense_to_sparse(dense))
}

/// Converts a phase-accumulator state into the dense amplitude array
/// (through the sparse map).
///
/// # Errors
///
/// As [`phase_to_sparse`] and [`sparse_to_dense`].
pub fn phase_to_dense(phase: &PhaseAccumulator) -> Result<StateVector, SimError> {
    sparse_to_dense(&phase_to_sparse(phase)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::{Basis, CircuitBuilder, Gate, QubitId};
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    /// An entangled, phase-rich 5-qubit state driven on both
    /// representations in lockstep.
    fn lockstep_pair() -> (StateVector, SparseVector) {
        let mut dense = StateVector::zeros(5).unwrap();
        let mut sparse = SparseVector::zeros(5).unwrap();
        let theta = mbu_circuit::Angle::turn_over_power_of_two(3);
        let program = [
            Gate::H(q(0)),
            Gate::Cx(q(0), q(1)),
            Gate::H(q(3)),
            Gate::CcPhase(q(0), q(3), q(1), theta),
            Gate::Ccx(q(0), q(1), q(4)),
            Gate::Phase(q(3), theta),
            Gate::Swap(q(2), q(4)),
        ];
        for g in &program {
            dense.apply_gate_pub(g).unwrap();
            Simulator::apply_gate(&mut sparse, g).unwrap();
        }
        (dense, sparse)
    }

    #[test]
    fn dense_round_trip_is_bitwise_identity() {
        let (dense, _) = lockstep_pair();
        let back = sparse_to_dense(&dense_to_sparse(&dense)).unwrap();
        let a = dense.amplitudes();
        let b = back.amplitudes();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re of amp {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im of amp {i}");
        }
    }

    #[test]
    fn sparse_round_trip_preserves_entries_and_order() {
        let (_, sparse) = lockstep_pair();
        let back = dense_to_sparse(&sparse_to_dense(&sparse).unwrap());
        assert_eq!(back.occupied(), sparse.occupied());
        assert_eq!(back.raw_keys(), sparse.raw_keys());
        for (i, (x, y)) in sparse.raw_amps().iter().zip(back.raw_amps()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re of entry {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im of entry {i}");
        }
    }

    #[test]
    fn conversion_crosses_representations_losslessly() {
        // Dense and sparse runs of the same program are bit-identical
        // (the sparse backend's contract); converting either way lands
        // exactly on the other's state.
        let (dense, sparse) = lockstep_pair();
        let converted = dense_to_sparse(&dense);
        assert_eq!(converted.occupied(), sparse.occupied());
        assert_eq!(converted.raw_keys(), sparse.raw_keys());
        for (i, (x, y)) in converted
            .raw_amps()
            .iter()
            .zip(sparse.raw_amps())
            .enumerate()
        {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re of entry {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im of entry {i}");
        }
    }

    #[test]
    fn converted_states_keep_running_identically() {
        // Convert mid-computation, run the suffix on both representations
        // with cloned RNGs: outcomes and final amplitudes must agree
        // bitwise — the property the hybrid planner's switches rest on.
        let (mut dense, _) = lockstep_pair();
        let mut hopped = sparse_to_dense(&dense_to_sparse(&dense)).unwrap();
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 5);
        b.h(r[2]);
        b.ccx(r[0], r[2], r[3]);
        let _ = b.measure(r[3], Basis::Z);
        b.cx(r[3], r[4]);
        let circuit = b.finish();
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let ex_a = dense.run(&circuit, &mut rng_a).unwrap();
        let ex_b = hopped.run(&circuit, &mut rng_b).unwrap();
        assert_eq!(ex_a, ex_b);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG positions agree");
        for (i, (x, y)) in dense
            .amplitudes()
            .iter()
            .zip(&hopped.amplitudes())
            .enumerate()
        {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re of amp {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im of amp {i}");
        }
    }

    #[test]
    fn oversized_sparse_states_are_rejected() {
        let wide = SparseVector::zeros(300).unwrap();
        assert!(matches!(
            sparse_to_dense(&wide),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn tracker_enumeration_matches_a_real_h_cascade() {
        // |110⟩ → H on q1 (|−⟩ factor) and H on q2: four entries whose
        // amplitudes the sparse engine computed by actual H arithmetic.
        let mut tracker = BasisTracker::zeros(3);
        tracker.set_bit(q(1), true).unwrap();
        tracker.set_bit(q(2), true).unwrap();
        let mut reference = SparseVector::zeros(3).unwrap();
        Simulator::set_bit(&mut reference, q(1), true).unwrap();
        Simulator::set_bit(&mut reference, q(2), true).unwrap();
        for g in [Gate::H(q(1)), Gate::H(q(2))] {
            Simulator::apply_gate(&mut tracker, &g).unwrap();
            Simulator::apply_gate(&mut reference, &g).unwrap();
        }
        let converted = tracker_to_sparse(&tracker).unwrap();
        assert_eq!(converted.occupied(), reference.occupied());
        assert_eq!(converted.raw_keys(), reference.raw_keys());
        for (i, (x, y)) in converted
            .raw_amps()
            .iter()
            .zip(reference.raw_amps())
            .enumerate()
        {
            assert!((*x - *y).norm() < 1e-15, "entry {i}: {x} vs {y}");
        }
    }

    #[test]
    fn tracker_enumeration_carries_the_global_phase() {
        let mut tracker = BasisTracker::zeros(2);
        tracker.set_bit(q(0), true).unwrap();
        // Z on |1⟩ contributes a global π phase; then superpose q1.
        Simulator::apply_gate(&mut tracker, &Gate::Z(q(0))).unwrap();
        Simulator::apply_gate(&mut tracker, &Gate::H(q(1))).unwrap();
        let converted = tracker_to_sparse(&tracker).unwrap();
        assert_eq!(converted.occupied(), 2);
        for e in converted.raw_amps() {
            assert!(e.re < 0.0, "π global phase negates every entry: {e}");
        }
    }

    #[test]
    fn sparse_phase_round_trip_is_bitwise_identity() {
        // A state that never enters Fourier mode must survive
        // sparse → phase → sparse with identical keys and amplitude bits.
        let (_, sparse) = lockstep_pair();
        let lifted = sparse_to_phase(&sparse);
        assert_eq!(lifted.occupied(), sparse.occupied());
        assert_eq!(lifted.fourier_width(), 0);
        let back = phase_to_sparse(&lifted).unwrap();
        assert_eq!(back.occupied(), sparse.occupied());
        assert_eq!(back.raw_keys(), sparse.raw_keys());
        for (i, (x, y)) in sparse.raw_amps().iter().zip(back.raw_amps()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re of entry {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im of entry {i}");
        }
    }

    #[test]
    fn phase_enumeration_matches_a_real_sparse_run() {
        // Drive the same diagonal-heavy program on the sparse engine and
        // the phase engine; enumerating the phase state must agree with
        // the sparse amplitudes to float accuracy (the phase side did its
        // rotations exactly, the sparse side in f64 — both within 1e-12
        // of the true value on this short program).
        let theta = mbu_circuit::Angle::turn_over_power_of_two(3);
        let program = [
            Gate::H(q(0)),
            Gate::H(q(2)),
            Gate::CPhase(q(0), q(2), theta),
            Gate::Phase(q(0), theta),
            Gate::X(q(1)),
            Gate::Cz(q(1), q(2)),
        ];
        let mut sparse = SparseVector::zeros(3).unwrap();
        let mut phase = PhaseAccumulator::zeros(3).unwrap();
        for g in &program {
            Simulator::apply_gate(&mut sparse, g).unwrap();
            Simulator::apply_gate(&mut phase, g).unwrap();
        }
        // The CPhase saw both operands in Fourier mode and materialised
        // one (a two-Fourier-operand diagonal does not factorise); the
        // other stays an exact accumulator.
        assert_eq!(phase.fourier_width(), 1);
        let converted = phase_to_sparse(&phase).unwrap();
        assert_eq!(converted.occupied(), sparse.occupied());
        assert_eq!(converted.raw_keys(), sparse.raw_keys());
        for (i, (x, y)) in converted
            .raw_amps()
            .iter()
            .zip(sparse.raw_amps())
            .enumerate()
        {
            assert!((*x - *y).norm() < 1e-12, "entry {i}: {x} vs {y}");
        }
    }

    #[test]
    fn dense_phase_composition_round_trips() {
        let (dense, _) = lockstep_pair();
        let back = phase_to_dense(&dense_to_phase(&dense)).unwrap();
        for (i, (x, y)) in dense
            .amplitudes()
            .iter()
            .zip(&back.amplitudes())
            .enumerate()
        {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re of amp {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im of amp {i}");
        }
    }

    #[test]
    fn phase_enumeration_width_cap() {
        let mut phase = PhaseAccumulator::zeros(64).unwrap();
        for i in 0..(MAX_PHASE_ENUM_FOURIER as u32 + 1) {
            Simulator::apply_gate(&mut phase, &Gate::H(q(i))).unwrap();
        }
        assert!(matches!(
            phase_to_sparse(&phase),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn tracker_enumeration_width_cap() {
        let mut tracker = BasisTracker::zeros(64);
        for i in 0..(MAX_TRACKER_ENUM_XMODE as u32 + 1) {
            Simulator::apply_gate(&mut tracker, &Gate::H(q(i))).unwrap();
        }
        assert!(matches!(
            tracker_to_sparse(&tracker),
            Err(SimError::TooManyQubits { .. })
        ));
    }
}
