//! Structure-of-arrays amplitude storage.
//!
//! The stride kernels of [`crate::kernels`] spend their time in tight
//! per-amplitude loops — scale, negate, butterfly, swap — whose arithmetic
//! is componentwise over the real and imaginary parts. An array-of-structs
//! `Vec<Complex>` interleaves those components, so an 8-lane vector
//! register loads four amplitudes' worth of mixed re/im data and every
//! componentwise op needs a shuffle. [`Amps`] stores the two components in
//! separate [`AlignedF64`] buffers instead: each inner loop reads one
//! homogeneous `f64` stream, which LLVM autovectorizes into full-width
//! packed ops with no shuffles, and cache-line alignment keeps the lane
//! chunks the kernels process from straddling line boundaries.
//!
//! The split changes **layout only**. Every accessor round-trips through
//! [`Complex`] with the exact component values — no arithmetic happens in
//! this module — so the bit-identity contracts of the kernel layer are
//! unaffected by the storage representation.

use crate::complex::Complex;

/// f64 lanes per cache line (64 bytes).
const LINE_F64S: usize = 8;

/// One cache line of `f64`s. `repr(C)` over a plain array, so a
/// `Vec<CacheLine>` is layout-identical to a `Vec<f64>` of 8× the length,
/// with every element 64-byte aligned.
#[repr(C, align(64))]
#[derive(Clone, Copy, Debug)]
struct CacheLine([f64; LINE_F64S]);

const ZERO_LINE: CacheLine = CacheLine([0.0; LINE_F64S]);

/// A cache-line-aligned growable `f64` buffer.
///
/// Invariant: `len <= lines.len() * LINE_F64S`. Elements past `len` (the
/// tail of the last partial line, plus any lines retained by
/// [`truncate`](Self::truncate)) hold unspecified stale values and are
/// re-zeroed by [`resize_zeroed`](Self::resize_zeroed) before they become
/// visible again.
#[derive(Clone, Debug)]
struct AlignedF64 {
    lines: Vec<CacheLine>,
    len: usize,
}

impl AlignedF64 {
    fn zeroed(len: usize) -> Self {
        Self {
            lines: vec![ZERO_LINE; len.div_ceil(LINE_F64S)],
            len,
        }
    }

    fn as_slice(&self) -> &[f64] {
        // SAFETY: `CacheLine` is `repr(C)` over `[f64; LINE_F64S]`, so the
        // line buffer is `lines.len() * LINE_F64S` contiguous, initialised
        // `f64`s; `len` never exceeds that (struct invariant), and `f64`'s
        // alignment is satisfied by the stricter line alignment.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(self.lines.as_ptr().cast::<f64>(), self.len)
        }
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as in `as_slice`; `&mut self` gives exclusive access.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<f64>(), self.len)
        }
    }

    /// Shrinks the logical length (capacity and tail contents retained).
    fn truncate(&mut self, new_len: usize) {
        assert!(new_len <= self.len);
        self.len = new_len;
    }

    /// Grows (or shrinks) to `new_len`, zeroing every newly exposed
    /// element — including stale tails left behind by earlier truncations.
    fn resize_zeroed(&mut self, new_len: usize) {
        self.lines.resize(new_len.div_ceil(LINE_F64S), ZERO_LINE);
        let old = self.len;
        self.len = new_len;
        if new_len > old {
            self.as_mut_slice()[old..].fill(0.0);
        }
    }

    /// Releases surplus line capacity.
    fn shrink_to_fit(&mut self) {
        self.lines.truncate(self.len.div_ceil(LINE_F64S));
        self.lines.shrink_to_fit();
    }

    /// Current capacity in elements.
    fn capacity(&self) -> usize {
        self.lines.capacity() * LINE_F64S
    }
}

/// The structure-of-arrays amplitude array: parallel re/im buffers.
#[derive(Clone, Debug)]
pub(crate) struct Amps {
    re: AlignedF64,
    im: AlignedF64,
}

impl Amps {
    /// All-zero amplitudes of the given length.
    pub(crate) fn zeroed(len: usize) -> Self {
        Self {
            re: AlignedF64::zeroed(len),
            im: AlignedF64::zeroed(len),
        }
    }

    /// Converts from an interleaved amplitude vector.
    pub(crate) fn from_complex(amps: &[Complex]) -> Self {
        let mut out = Self::zeroed(amps.len());
        let (re, im) = out.parts_mut();
        for (i, a) in amps.iter().enumerate() {
            re[i] = a.re;
            im[i] = a.im;
        }
        out
    }

    /// Materialises the interleaved form.
    pub(crate) fn to_vec(&self) -> Vec<Complex> {
        self.iter().collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.re.len
    }

    /// The amplitude at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub(crate) fn get(&self, i: usize) -> Complex {
        Complex::new(self.re.as_slice()[i], self.im.as_slice()[i])
    }

    /// Stores the amplitude at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub(crate) fn set(&mut self, i: usize, a: Complex) {
        self.re.as_mut_slice()[i] = a.re;
        self.im.as_mut_slice()[i] = a.im;
    }

    /// Swaps the amplitudes at `i` and `j`.
    pub(crate) fn swap(&mut self, i: usize, j: usize) {
        self.re.as_mut_slice().swap(i, j);
        self.im.as_mut_slice().swap(i, j);
    }

    /// Zeroes every amplitude.
    pub(crate) fn fill_zero(&mut self) {
        self.re.as_mut_slice().fill(0.0);
        self.im.as_mut_slice().fill(0.0);
    }

    /// The component buffers, read-only.
    pub(crate) fn parts(&self) -> (&[f64], &[f64]) {
        (self.re.as_slice(), self.im.as_slice())
    }

    /// The component buffers, mutable.
    pub(crate) fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (self.re.as_mut_slice(), self.im.as_mut_slice())
    }

    /// Iterates the amplitudes in index order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = Complex> + '_ {
        let (re, im) = self.parts();
        re.iter().zip(im).map(|(&r, &i)| Complex::new(r, i))
    }

    /// Shrinks the logical length (capacity retained for re-expansion).
    pub(crate) fn truncate(&mut self, new_len: usize) {
        self.re.truncate(new_len);
        self.im.truncate(new_len);
    }

    /// Resizes, zeroing newly exposed amplitudes.
    pub(crate) fn resize_zeroed(&mut self, new_len: usize) {
        self.re.resize_zeroed(new_len);
        self.im.resize_zeroed(new_len);
    }

    /// Releases surplus capacity.
    pub(crate) fn shrink_to_fit(&mut self) {
        self.re.shrink_to_fit();
        self.im.shrink_to_fit();
    }

    /// Current capacity in amplitudes.
    pub(crate) fn capacity(&self) -> usize {
        self.re.capacity().min(self.im.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_cache_line_aligned() {
        for len in [1usize, 7, 8, 9, 64, 1000] {
            let a = Amps::zeroed(len);
            let (re, im) = a.parts();
            assert_eq!(re.as_ptr() as usize % 64, 0, "re of len {len}");
            assert_eq!(im.as_ptr() as usize % 64, 0, "im of len {len}");
            assert_eq!(re.len(), len);
            assert_eq!(im.len(), len);
        }
    }

    #[test]
    fn complex_round_trip_is_bit_exact() {
        let src: Vec<Complex> = (0..37)
            .map(|i| Complex::new(1.5 + i as f64, -0.25 * i as f64))
            .collect();
        let amps = Amps::from_complex(&src);
        assert_eq!(amps.to_vec(), src);
        for (i, a) in src.iter().enumerate() {
            assert_eq!(amps.get(i).re.to_bits(), a.re.to_bits());
            assert_eq!(amps.get(i).im.to_bits(), a.im.to_bits());
        }
    }

    #[test]
    fn resize_after_truncate_zeroes_the_stale_tail() {
        // Truncation keeps stale component values in the hidden tail;
        // growing back must expose zeros, not the old amplitudes.
        let mut amps = Amps::from_complex(&[
            Complex::new(1.0, 2.0),
            Complex::new(3.0, 4.0),
            Complex::new(5.0, 6.0),
            Complex::new(7.0, 8.0),
        ]);
        amps.truncate(2);
        assert_eq!(amps.len(), 2);
        amps.resize_zeroed(6);
        assert_eq!(amps.get(0), Complex::new(1.0, 2.0));
        assert_eq!(amps.get(1), Complex::new(3.0, 4.0));
        for i in 2..6 {
            assert_eq!(amps.get(i), Complex::ZERO, "index {i}");
        }
    }

    #[test]
    fn set_swap_and_fill() {
        let mut amps = Amps::zeroed(4);
        amps.set(1, Complex::new(-1.0, 0.5));
        amps.set(3, Complex::I);
        amps.swap(1, 2);
        assert_eq!(amps.get(1), Complex::ZERO);
        assert_eq!(amps.get(2), Complex::new(-1.0, 0.5));
        assert_eq!(amps.get(3), Complex::I);
        amps.fill_zero();
        assert!(amps.iter().all(|a| a == Complex::ZERO));
    }

    #[test]
    fn shrink_keeps_contents_and_signals_capacity() {
        let mut amps = Amps::from_complex(
            &(0..64)
                .map(|i| Complex::new(i as f64, 0.0))
                .collect::<Vec<_>>(),
        );
        amps.truncate(8);
        amps.shrink_to_fit();
        assert!(amps.capacity() >= 8);
        for i in 0..8 {
            assert_eq!(amps.get(i), Complex::new(i as f64, 0.0));
        }
    }
}
