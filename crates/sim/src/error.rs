//! Simulation errors.

use std::error::Error;
use std::fmt;

/// Errors produced while simulating a circuit.
///
/// # Examples
///
/// ```
/// use mbu_circuit::CircuitBuilder;
/// use mbu_sim::{BasisTracker, SimError};
/// use rand::SeedableRng;
///
/// // A CNOT controlled by a |+⟩ qubit entangles — the basis tracker
/// // reports it instead of silently giving wrong answers.
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 2);
/// b.h(q[0]);
/// b.cx(q[0], q[1]);
/// let circuit = b.finish();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let err = BasisTracker::zeros(2).run(&circuit, &mut rng).unwrap_err();
/// assert!(matches!(err, SimError::UnsupportedEntanglement { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The state-vector backend refuses widths whose amplitude array would
    /// not fit in memory.
    TooManyQubits {
        /// Requested qubit count.
        requested: usize,
        /// Maximum supported by this backend.
        max: usize,
    },
    /// The basis tracker cannot represent the entanglement this gate would
    /// create (e.g. a CNOT controlled by an `X`-mode qubit with a `Z`-mode
    /// target).
    UnsupportedEntanglement {
        /// Rendering of the offending gate.
        gate: String,
        /// Why the gate left the tracked fragment.
        reason: &'static str,
    },
    /// Tried to read the computational value of a qubit that is in a
    /// superposition (`X`-mode) state.
    ReadOfSuperposedQubit {
        /// The offending qubit index.
        qubit: u32,
    },
    /// An operation referenced a qubit or classical bit outside the state.
    OutOfRange {
        /// Description of the offending reference.
        what: String,
    },
    /// A multi-qubit gate named the same qubit for two operands (e.g.
    /// `CX q3 q3`); no unitary of the gate set is defined there.
    DuplicateOperand {
        /// Rendering of the offending gate.
        gate: String,
        /// The duplicated qubit index.
        qubit: u32,
    },
    /// A circuit failed structural validation when compiled for execution
    /// (out-of-range references or duplicate operands found by
    /// `mbu_circuit::Circuit::validate`).
    InvalidCircuit {
        /// The underlying `CircuitError`, rendered.
        why: String,
    },
    /// A conditional read a classical bit that no measurement had written.
    UnwrittenClassicalBit {
        /// The offending classical bit index.
        clbit: u32,
    },
    /// An ensemble run was requested with zero shots: there is no
    /// aggregate to report, and every per-shot statistic (means,
    /// frequencies) would be a division by zero. Raised by the ensemble
    /// engines instead of returning an `Ensemble` whose accessors could
    /// only answer `NaN` or a fabricated zero.
    EmptyEnsemble,
    /// The branch-tree engine's outcome tree grew past its node budget
    /// before the program ended. The exact-distribution mode surfaces
    /// this; the sampled mode falls back to per-shot Monte Carlo instead.
    BranchBudgetExceeded {
        /// The configured node budget that was exceeded.
        budget: usize,
    },
    /// The simulator backend does not implement forked (branch-sharing)
    /// execution — its `measure_fork` declined. The exact-distribution
    /// mode surfaces this; the sampled mode falls back to per-shot Monte
    /// Carlo instead.
    BranchUnsupported,
    /// A fused dense-gate block failed the kernel's structural validation
    /// (span outside 1–4 qubits, non-ascending or out-of-state positions,
    /// or a gate operand outside the block). Checked in release builds
    /// too, so a malformed compiled block reports instead of indexing out
    /// of bounds.
    InvalidFusedBlock {
        /// What was malformed about the block descriptor.
        why: String,
    },
    /// The `MBU_VERIFY=1` admission gate rejected a compiled program: the
    /// static verifier (`mbu_circuit::verify`) found it malformed, so the
    /// executor refused to start rather than risk undefined behaviour on
    /// a miscompiled stream.
    VerificationRejected {
        /// The verifier's report, rendered.
        why: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { requested, max } => {
                write!(
                    f,
                    "state vector over {requested} qubits exceeds the {max}-qubit limit"
                )
            }
            SimError::UnsupportedEntanglement { gate, reason } => {
                write!(f, "basis tracker cannot apply {gate}: {reason}")
            }
            SimError::ReadOfSuperposedQubit { qubit } => {
                write!(
                    f,
                    "qubit q{qubit} is in superposition; its bit value is undefined"
                )
            }
            SimError::OutOfRange { what } => write!(f, "{what} out of range"),
            SimError::DuplicateOperand { gate, qubit } => {
                write!(f, "gate {gate} uses qubit q{qubit} for two operands")
            }
            SimError::InvalidCircuit { why } => {
                write!(f, "circuit failed validation: {why}")
            }
            SimError::UnwrittenClassicalBit { clbit } => {
                write!(
                    f,
                    "classical bit c{clbit} read before any measurement wrote it"
                )
            }
            SimError::EmptyEnsemble => {
                write!(f, "ensemble run requested with zero shots")
            }
            SimError::VerificationRejected { why } => {
                write!(
                    f,
                    "program rejected by the MBU_VERIFY admission gate: {why}"
                )
            }
            SimError::BranchBudgetExceeded { budget } => {
                write!(
                    f,
                    "branch tree exceeded its {budget}-node budget before the program ended"
                )
            }
            SimError::BranchUnsupported => {
                write!(f, "backend does not support branch-sharing execution")
            }
            SimError::InvalidFusedBlock { why } => {
                write!(f, "malformed fused block: {why}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::UnsupportedEntanglement {
            gate: "CX q0 q1".into(),
            reason: "control is in superposition",
        };
        assert!(e.to_string().contains("CX q0 q1"));
        assert!(SimError::UnwrittenClassicalBit { clbit: 3 }
            .to_string()
            .contains("c3"));
    }
}
