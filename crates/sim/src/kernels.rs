//! Stride-based state-vector kernels over SoA storage, serial and
//! chunk-parallel, with an autovectorized grouped-run fast path.
//!
//! Every kernel iterates exactly the amplitudes a gate can move, instead
//! of scanning all `2^n` entries with a per-index branch:
//!
//! * 1-qubit gates visit `2^(n-1)` amplitude *pairs*;
//! * controlled gates enumerate only the control-satisfied subspace —
//!   `2^(n-2)` indices for a CNOT, `2^(n-3)` for a Toffoli;
//! * diagonal gates (`Z`, `Phase`, `CZ`, `CCZ`, `CPhase`, `CcPhase`) are
//!   pure phase sweeps over the all-controls-set subspace;
//! * [`fused`] applies a whole run of gates (a compiled
//!   [`FusedUnitary`](mbu_circuit::FusedUnitary) block) in **one sweep**:
//!   each `2^k`-amplitude group is gathered once, pushed through every
//!   constituent gate locally, and scattered back — the dense-unitary
//!   action in factored form, chosen over a precomputed mat-vec because it
//!   performs *exactly* the arithmetic of unfused execution and therefore
//!   keeps amplitudes bit-identical.
//!
//! All of these share one enumeration scheme: a [`Pins`] descriptor names
//! the bit positions a kernel pins (controls, diagonal selectors, the
//! cleared target bit) and [`drive`] walks the *touched index space* — the
//! `len >> pins` indices whose pinned bits match — as contiguous runs.
//!
//! # The SIMD path and the scalar reference path
//!
//! [`Par`] carries a `simd` switch next to the worker pool. With `simd`
//! off, `drive` reproduces the original scalar enumeration: one closure
//! call per maximal run, each run handled as a single span. With `simd`
//! on, `drive` hands the closure *groups* of consecutive runs — `count`
//! runs of length `run` spaced `stride = 2·run_len` apart — which is
//! valid because within a group (bounded by the second-lowest pinned
//! position) the absolute base address is an affine function of the run
//! index: `deposit(u + j·run_len) = deposit(u) + j·stride`, no carry ever
//! crossing the next pinned bit. The concrete kernels turn a group into
//! one or two long slices walked by `chunks_exact` loops, so the per-run
//! closure dispatch and bit-deposit arithmetic disappear from the hot
//! path and the inner loops become straight-line sweeps over the
//! structure-of-arrays `f64` buffers of [`Amps`] — homogeneous streams
//! LLVM autovectorizes into full-width packed ops (the span helpers also
//! process explicit [`LANES`]-wide chunks so the vector shape is stated
//! in the source, stable Rust only). Both paths perform *identical*
//! per-amplitude arithmetic in *identical* order, so amplitudes are
//! bit-identical between them; `MBU_SIMD=0` keeps the scalar path
//! available as the differential reference and honest benchmark baseline.
//!
//! `drive` is also the parallelism seam: given an
//! [`AmpPool`](crate::pool::AmpPool), it splits the touched space into
//! per-thread chunks at **deterministic** boundaries (a pure function of
//! work size and thread count, rounded down to [`LANES`] multiples on the
//! SIMD path so chunk interiors stay lane-aligned) and runs the same
//! per-group closure on each chunk concurrently. Chunks write disjoint
//! amplitudes and every amplitude is touched exactly once with identical
//! arithmetic, so parallel execution is bit-identical to serial at any
//! thread count — the guarantee the shot engine's aggregate determinism
//! rests on.
//!
//! The kernels assume their qubit indices are in range and distinct; the
//! [`StateVector`](crate::StateVector) front end validates operands before
//! dispatching (and exposes an unoptimised full-scan reference path used
//! for differential testing and benchmarking). [`fused`] additionally
//! validates its caller-supplied block descriptor up front and returns a
//! typed [`SimError`] instead of trusting `debug_assert!`s that vanish in
//! release builds.

use mbu_circuit::Gate;

use crate::complex::Complex;
use crate::error::SimError;
use crate::pool::AmpPool;
use crate::soa::Amps;

/// Below this many live amplitudes a parallel sweep costs more in wake-up
/// latency than it saves; kernels fall back to the serial path. Purely a
/// scheduling decision — results are bit-identical either way.
pub(crate) const PAR_MIN_AMPS: usize = 1usize << 14;

/// Amplitudes per explicit vector chunk in the span helpers: one cache
/// line of `f64`s, and a full AVX-512 register (two AVX2 registers).
pub(crate) const LANES: usize = 8;

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// The execution context of one kernel call: an optional worker pool and
/// the SIMD switch (see the module docs for what the switch changes —
/// enumeration shape only, never arithmetic).
#[derive(Clone, Copy)]
pub(crate) struct Par<'a> {
    pool: Option<&'a AmpPool>,
    simd: bool,
}

impl<'a> Par<'a> {
    /// Serial execution on the vectorized path.
    #[cfg(test)]
    pub(crate) fn serial() -> Self {
        Self {
            pool: None,
            simd: true,
        }
    }

    /// Serial execution on the scalar reference path.
    #[cfg(test)]
    pub(crate) fn scalar() -> Self {
        Self {
            pool: None,
            simd: false,
        }
    }

    /// Execution over `pool`'s lanes (serial when `None`), vectorized or
    /// scalar per `simd`.
    pub(crate) fn new(pool: Option<&'a AmpPool>, simd: bool) -> Self {
        Self { pool, simd }
    }
}

/// Up to four pinned bit positions with their required values, sorted.
#[derive(Clone, Copy)]
struct Pins {
    n: usize,
    pos: [usize; 4],
    /// OR of `val << pos` over all pins.
    offset: usize,
}

// The address-geometry helpers below feed raw indices straight into
// `Shared::slice` spans: an arithmetic wrap here would not just compute a
// wrong amplitude, it would alias supposedly disjoint mutable ranges. The
// lint forces every operation to be visibly non-overflowing (masked
// shifts, or additions whose bounds a comment can state).
#[deny(clippy::arithmetic_side_effects)]
impl Pins {
    /// Invariant (callers are the fixed-arity kernels in this module,
    /// which all pass 1–4 pins with distinct in-range positions and 0/1
    /// values; [`fused`] validates its caller-supplied positions before
    /// building pins): `1 <= pins.len() <= 4`, values in `{0, 1}`.
    fn new(pins: &[(usize, usize)]) -> Self {
        debug_assert!((1..=4).contains(&pins.len()));
        let mut pos = [usize::MAX; 4];
        let mut offset = 0usize;
        for (i, &(p, v)) in pins.iter().enumerate() {
            debug_assert!(v <= 1);
            pos[i] = p;
            offset |= v << p;
        }
        pos[..pins.len()].sort_unstable();
        Self {
            n: pins.len(),
            pos,
            offset,
        }
    }

    /// How many indices of a `len`-amplitude array match the pins.
    fn touched(&self, len: usize) -> usize {
        len >> self.n
    }

    /// Length of a maximal contiguous run (the free bits below the lowest
    /// pinned position).
    fn run_len(&self) -> usize {
        1usize << self.pos[0]
    }

    /// How many consecutive full runs share one affine address formula:
    /// `deposit(u + j·run_len) = deposit(u) + j·2·run_len` holds while the
    /// touched-space bits between the lowest and second-lowest pins don't
    /// wrap, i.e. for groups of `2^(pos[1] - pos[0] - 1)` runs (aligned to
    /// the group size in run index). `None` means unbounded — with a
    /// single pin no carry can ever cross a second pinned position.
    fn group_runs(&self) -> Option<usize> {
        if self.n == 1 {
            None
        } else {
            // Pins are sorted and distinct: pos[1] ≥ pos[0] + 1, so the
            // saturating subtractions are exact.
            Some(1usize << self.pos[1].saturating_sub(self.pos[0]).saturating_sub(1))
        }
    }

    /// Expands touched-space index `u` to its absolute amplitude index:
    /// `u`'s bits fill the free positions in order, pinned positions take
    /// their pinned values.
    fn deposit(&self, u: usize) -> usize {
        let mut out = 0usize;
        let mut taken = 0usize; // bits of `u` consumed
        let mut next = 0usize; // next absolute position to fill
        for k in 0..self.n {
            // Pins ascend and `next` trails the previous pin by one, so
            // `p ≥ next` and every bound below is exact: `width < 64`
            // (the shifted mask is ≥ 1, making the wrapping decrement
            // exact) and `taken`/`next` stay within the word.
            let p = self.pos[k];
            let width = p.saturating_sub(next);
            out |= ((u >> taken) & (1usize << width).wrapping_sub(1)) << next;
            taken = taken.saturating_add(width);
            next = p.saturating_add(1);
        }
        out | ((u >> taken) << next) | self.offset
    }
}

/// A lifetime-erased view of the SoA component buffers for
/// disjoint-range concurrent access from `drive` closures.
pub(crate) struct Shared {
    re: *mut f64,
    im: *mut f64,
    len: usize,
}

// SAFETY: every access goes through `Shared::slice`, whose contract makes
// concurrent callers touch disjoint ranges.
#[allow(unsafe_code)]
unsafe impl Sync for Shared {}

impl Shared {
    /// The component spans `re[start .. start + len]` /
    /// `im[start .. start + len]` as exclusive slices.
    ///
    /// # Safety
    ///
    /// No two concurrently alive spans (across all threads of the current
    /// `drive` call) may overlap. The kernels guarantee this
    /// structurally: each run of the touched space, and each run's
    /// partner range, is disjoint from every other run and partner. The
    /// *bounds* are checked here unconditionally — a checked `assert!`,
    /// not a `debug_assert!`, so a malformed span can never index out of
    /// bounds in release builds; the branch is paid once per span, not
    /// per amplitude.
    #[allow(unsafe_code)]
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, start: usize, len: usize) -> (&mut [f64], &mut [f64]) {
        assert!(
            len <= self.len && start <= self.len - len,
            "kernel span {start}+{len} exceeds {} amplitudes",
            self.len
        );
        // SAFETY: bounds checked above; disjointness is the caller's
        // contract, so no two live `&mut` alias.
        unsafe {
            (
                std::slice::from_raw_parts_mut(self.re.add(start), len),
                std::slice::from_raw_parts_mut(self.im.add(start), len),
            )
        }
    }
}

/// Calls `f(shared, base, run, stride, count)` for `count` runs of `run`
/// amplitudes spaced `stride` apart — every touched amplitude exactly
/// once — splitting the touched index space across the pool's lanes when
/// one is supplied and the array is large enough to pay for the wake-up.
///
/// On the scalar path `count` is always 1 and runs are maximal (the
/// original per-run enumeration); on the SIMD path full runs arrive in
/// affine groups (see [`Pins::group_runs`]), with partial head/tail runs
/// at chunk boundaries still delivered singly. Chunk boundaries depend
/// only on `(touched, lanes, simd)` — never on timing — and every run
/// (plus whatever partner range `f` derives from it) is disjoint from
/// every other, so the parallel sweep performs exactly the serial sweep's
/// writes.
fn drive(
    par: Par<'_>,
    amps: &mut Amps,
    pins: &[(usize, usize)],
    f: impl Fn(&Shared, usize, usize, usize, usize) + Sync,
) {
    let pins = Pins::new(pins);
    let touched = pins.touched(amps.len());
    if touched == 0 {
        return;
    }
    let len = amps.len();
    let shared = {
        let (re, im) = amps.parts_mut();
        Shared {
            re: re.as_mut_ptr(),
            im: im.as_mut_ptr(),
            len,
        }
    };
    let m0 = pins.run_len();
    let p0 = m0.trailing_zeros() as usize;
    let stride = m0 << 1;
    // The original scalar enumeration: one maximal run per closure call.
    let scalar_chunk = |from: usize, to: usize| {
        let mut u = from;
        while u < to {
            let run = (m0 - (u & (m0 - 1))).min(to - u);
            f(&shared, pins.deposit(u), run, stride, 1);
            u += run;
        }
    };
    // Grouped enumeration: one closure call per affine group of runs.
    let grouped_chunk = |from: usize, to: usize| {
        let g = pins.group_runs();
        let mut u = from;
        if u < to && u & (m0 - 1) != 0 {
            // Partial head run (a chunk boundary split a run).
            let run = (m0 - (u & (m0 - 1))).min(to - u);
            f(&shared, pins.deposit(u), run, stride, 1);
            u += run;
        }
        while u < to {
            let runs_ahead = (to - u) >> p0;
            if runs_ahead == 0 {
                // Partial tail run.
                f(&shared, pins.deposit(u), to - u, stride, 1);
                break;
            }
            let count = match g {
                None => runs_ahead,
                Some(g) => runs_ahead.min(g - ((u >> p0) & (g - 1))),
            };
            f(&shared, pins.deposit(u), m0, stride, count);
            u += count << p0;
        }
    };
    let run_chunk = |from: usize, to: usize| {
        if par.simd {
            grouped_chunk(from, to);
        } else {
            scalar_chunk(from, to);
        }
    };
    match par.pool {
        Some(pool) if pool.threads() > 1 && len >= PAR_MIN_AMPS && touched > 1 => {
            let chunks = pool.threads().min(touched);
            let per = touched / chunks;
            let extra = touched % chunks;
            // Interior boundaries round down to lane multiples on the
            // SIMD path so chunk interiors stay lane-aligned; monotonic
            // either way, so chunks stay disjoint (possibly empty).
            let boundary = |c: usize| -> usize {
                if c == 0 {
                    return 0;
                }
                if c == chunks {
                    return touched;
                }
                let raw = c * per + c.min(extra);
                if par.simd {
                    raw & !(LANES - 1)
                } else {
                    raw
                }
            };
            pool.run(chunks, &|c| run_chunk(boundary(c), boundary(c + 1)));
        }
        _ => run_chunk(0, touched),
    }
}

/// Multiplies the spans by `w` in place, in explicit [`LANES`]-wide
/// chunks plus a scalar tail. Exactly the arithmetic of `Complex`
/// multiplication, componentwise over the SoA streams.
#[inline(always)]
fn scale_span(re: &mut [f64], im: &mut [f64], w: Complex) {
    let (rc, rt) = re.as_chunks_mut::<LANES>();
    let (ic, it) = im.as_chunks_mut::<LANES>();
    for (r8, i8) in rc.iter_mut().zip(ic) {
        for l in 0..LANES {
            let a = r8[l];
            let b = i8[l];
            r8[l] = a * w.re - b * w.im;
            i8[l] = a * w.im + b * w.re;
        }
    }
    for (r, i) in rt.iter_mut().zip(it) {
        let a = *r;
        let b = *i;
        *r = a * w.re - b * w.im;
        *i = a * w.im + b * w.re;
    }
}

/// Negates the spans in place (exact even on signed zeros, unlike a
/// complex multiply by `−1 + 0i` — the stride and scan paths promise
/// bit-identical amplitudes).
#[inline(always)]
fn negate_span(re: &mut [f64], im: &mut [f64]) {
    for v in re.iter_mut() {
        *v = -*v;
    }
    for v in im.iter_mut() {
        *v = -*v;
    }
}

/// The Hadamard butterfly over one component stream:
/// `lo ← (lo + hi)·√½, hi ← (lo − hi)·√½` — the componentwise image of
/// `(x + y).scale(√½)` / `(x − y).scale(√½)` on `Complex` pairs.
#[inline(always)]
fn butterfly_span(lo: &mut [f64], hi: &mut [f64]) {
    let (lc, lt) = lo.as_chunks_mut::<LANES>();
    let (hc, ht) = hi.as_chunks_mut::<LANES>();
    for (l8, h8) in lc.iter_mut().zip(hc) {
        for l in 0..LANES {
            let x = l8[l];
            let y = h8[l];
            l8[l] = (x + y) * FRAC_1_SQRT_2;
            h8[l] = (x - y) * FRAC_1_SQRT_2;
        }
    }
    for (a, b) in lt.iter_mut().zip(ht) {
        let x = *a;
        let y = *b;
        *a = (x + y) * FRAC_1_SQRT_2;
        *b = (x - y) * FRAC_1_SQRT_2;
    }
}

/// Applies `op` to the `run`-long prefix of every `stride`-spaced period
/// in two equally shaped spans (the merged-group walk: `chunks_exact`
/// yields the full periods, the remainder is the final `run`-long one).
macro_rules! for_strided {
    ($a:expr, $b:expr, $run:expr, $stride:expr, |$x:ident, $y:ident| $body:expr) => {{
        let mut ia = $a.chunks_exact_mut($stride);
        let mut ib = $b.chunks_exact_mut($stride);
        for (ca, cb) in (&mut ia).zip(&mut ib) {
            let $x = &mut ca[..$run];
            let $y = &mut cb[..$run];
            $body
        }
        let $x = ia.into_remainder();
        let $y = ib.into_remainder();
        $body
    }};
}

/// One group of diagonal runs: scales `count` runs from `base` by `w`.
fn scale_groups(sh: &Shared, base: usize, run: usize, stride: usize, count: usize, w: Complex) {
    let total = (count - 1) * stride + run;
    // SAFETY: the group's runs live inside `[base, base + total)`; groups
    // are pairwise disjoint across the sweep (the untouched gaps between
    // runs belong to no other group — they carry the opposite pin value).
    #[allow(unsafe_code)]
    let (re, im) = unsafe { sh.slice(base, total) };
    for_strided!(re, im, run, stride, |r, i| scale_span(r, i, w));
}

/// One group of diagonal runs: negates `count` runs from `base`.
fn negate_groups(sh: &Shared, base: usize, run: usize, stride: usize, count: usize) {
    let total = (count - 1) * stride + run;
    // SAFETY: as in [`scale_groups`].
    #[allow(unsafe_code)]
    let (re, im) = unsafe { sh.slice(base, total) };
    for_strided!(re, im, run, stride, |r, i| negate_span(r, i));
}

/// One group of pair runs, each run paired with its partner `d` higher
/// (`d = 1usize << target`), swapped (`op = false`) or butterflied
/// (`op = true`).
///
/// Two geometries, both with structurally disjoint spans:
///
/// * **merged** (`run == d`, full runs — the target is the lowest pin):
///   lo and hi halves alternate, so the group is one contiguous span of
///   `count · stride` amplitudes split per period;
/// * **dual-span** otherwise: the group's lo span is at most
///   `(count−1)·stride + run ≤ 2^pos[1] ≤ d` long (group bound; a lone
///   partial run is shorter than `d` too), so `[base, base+total)` and
///   `[base+d, base+d+total)` never overlap.
fn pair_groups(
    sh: &Shared,
    base: usize,
    d: usize,
    run: usize,
    stride: usize,
    count: usize,
    butterfly: bool,
) {
    if run == d && run << 1 == stride {
        // SAFETY: merged geometry (see above); groups pairwise disjoint.
        #[allow(unsafe_code)]
        let (re, im) = unsafe { sh.slice(base, count * stride) };
        for (cr, ci) in re.chunks_exact_mut(stride).zip(im.chunks_exact_mut(stride)) {
            let (lr, hr) = cr.split_at_mut(run);
            let (li, hi) = ci.split_at_mut(run);
            if butterfly {
                butterfly_span(lr, hr);
                butterfly_span(li, hi);
            } else {
                lr.swap_with_slice(hr);
                li.swap_with_slice(hi);
            }
        }
    } else {
        let total = (count - 1) * stride + run;
        debug_assert!(
            total <= d,
            "dual-span groups must fit below the partner offset"
        );
        // SAFETY: dual-span geometry (see above); lo spans hold the
        // target-clear subspace, hi spans the target-set one.
        #[allow(unsafe_code)]
        let (lr, li) = unsafe { sh.slice(base, total) };
        // SAFETY: as above — the hi spans sit `d` past the lo spans.
        #[allow(unsafe_code)]
        let (hr, hi) = unsafe { sh.slice(base + d, total) };
        if butterfly {
            for_strided!(lr, hr, run, stride, |a, b| butterfly_span(a, b));
            for_strided!(li, hi, run, stride, |a, b| butterfly_span(a, b));
        } else {
            for_strided!(lr, hr, run, stride, |a, b| a.swap_with_slice(b));
            for_strided!(li, hi, run, stride, |a, b| a.swap_with_slice(b));
        }
    }
}

/// X gate: swaps the two halves of every block split on bit `t`.
pub(crate) fn x(par: Par<'_>, amps: &mut Amps, t: usize) {
    let m = 1usize << t;
    drive(par, amps, &[(t, 0)], |sh, base, run, stride, count| {
        pair_groups(sh, base, m, run, stride, count, false);
    });
}

/// Hadamard: butterfly over every pair split on bit `t`.
pub(crate) fn h(par: Par<'_>, amps: &mut Amps, t: usize) {
    let m = 1usize << t;
    drive(par, amps, &[(t, 0)], |sh, base, run, stride, count| {
        pair_groups(sh, base, m, run, stride, count, true);
    });
}

/// Diagonal 1-qubit sweep: multiplies every amplitude whose bit `t` equals
/// `v` by `w`. `v = 1` is a plain phase gate; `v = 0` is its "anti" form,
/// which the bit-flip frame of the compiled executor uses to apply phases
/// on qubits whose storage is X-conjugated.
pub(crate) fn phase1(par: Par<'_>, amps: &mut Amps, t: usize, v: usize, w: Complex) {
    drive(par, amps, &[(t, v)], |sh, base, run, stride, count| {
        scale_groups(sh, base, run, stride, count, w);
    });
}

/// Z gate on bit value `v`: negates every amplitude whose bit `t` equals
/// `v` (see [`negate_span`] for why negation gets its own kernel).
pub(crate) fn z(par: Par<'_>, amps: &mut Amps, t: usize, v: usize) {
    drive(par, amps, &[(t, v)], |sh, base, run, stride, count| {
        negate_groups(sh, base, run, stride, count);
    });
}

/// CNOT with control active on bit value `vc`: swaps target pairs only in
/// the control-satisfied quarter of the space.
pub(crate) fn cx(par: Par<'_>, amps: &mut Amps, c: usize, vc: usize, t: usize) {
    let mt = 1usize << t;
    drive(
        par,
        amps,
        &[(c, vc), (t, 0)],
        |sh, base, run, stride, count| {
            pair_groups(sh, base, mt, run, stride, count, false);
        },
    );
}

/// Toffoli with controls active on bit values `v1`/`v2`.
pub(crate) fn ccx(
    par: Par<'_>,
    amps: &mut Amps,
    c1: usize,
    v1: usize,
    c2: usize,
    v2: usize,
    t: usize,
) {
    let mt = 1usize << t;
    drive(
        par,
        amps,
        &[(c1, v1), (c2, v2), (t, 0)],
        |sh, base, run, stride, count| {
            pair_groups(sh, base, mt, run, stride, count, false);
        },
    );
}

/// Diagonal 2-qubit sweep: multiplies amplitudes whose bits at `a`/`b`
/// equal `va`/`vb` by `w`.
pub(crate) fn phase2(
    par: Par<'_>,
    amps: &mut Amps,
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    w: Complex,
) {
    drive(
        par,
        amps,
        &[(a, va), (b, vb)],
        |sh, base, run, stride, count| {
            scale_groups(sh, base, run, stride, count, w);
        },
    );
}

/// CZ on bit values `va`/`vb`: negates the selected quarter.
pub(crate) fn cz(par: Par<'_>, amps: &mut Amps, a: usize, va: usize, b: usize, vb: usize) {
    drive(
        par,
        amps,
        &[(a, va), (b, vb)],
        |sh, base, run, stride, count| {
            negate_groups(sh, base, run, stride, count);
        },
    );
}

/// Diagonal 3-qubit sweep over the selected eighth of the space.
#[allow(clippy::too_many_arguments)]
pub(crate) fn phase3(
    par: Par<'_>,
    amps: &mut Amps,
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    c: usize,
    vc: usize,
    w: Complex,
) {
    drive(
        par,
        amps,
        &[(a, va), (b, vb), (c, vc)],
        |sh, base, run, stride, count| {
            scale_groups(sh, base, run, stride, count, w);
        },
    );
}

/// CCZ on bit values `va`/`vb`/`vc`: negates the selected eighth.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ccz(
    par: Par<'_>,
    amps: &mut Amps,
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    c: usize,
    vc: usize,
) {
    drive(
        par,
        amps,
        &[(a, va), (b, vb), (c, vc)],
        |sh, base, run, stride, count| {
            negate_groups(sh, base, run, stride, count);
        },
    );
}

/// SWAP: exchanges amplitudes over the `|…1…0…⟩ ↔ |…0…1…⟩` subspace.
///
/// The partner offset `base ^ mask` can point *below* `base` (when the
/// set pin sits above the cleared one), so this kernel keeps a per-run
/// partner computation instead of the group span walk.
pub(crate) fn swap(par: Par<'_>, amps: &mut Amps, a: usize, b: usize) {
    let mask = (1usize << a) | (1usize << b);
    drive(
        par,
        amps,
        &[(a, 1), (b, 0)],
        |sh, base, run, stride, count| {
            for j in 0..count {
                let lo = base + j * stride;
                // Run indices carry bits below both swapped positions only,
                // so `^ mask` maps the run to a contiguous partner range.
                // SAFETY: runs live in the (a=1, b=0) subspace, partners in
                // (a=0, b=1): pairwise disjoint across the sweep.
                #[allow(unsafe_code)]
                let (lr, li) = unsafe { sh.slice(lo, run) };
                // SAFETY: as above — `^ mask` lands in the (a=0, b=1)
                // subspace, disjoint from every run.
                #[allow(unsafe_code)]
                let (hr, hi) = unsafe { sh.slice(lo ^ mask, run) };
                lr.swap_with_slice(hr);
                li.swap_with_slice(hi);
            }
        },
    );
}

/// One precompiled local operation of a fused block: the gate's action on
/// a `2^k`-amplitude group, flattened to explicit index lists so the hot
/// loop does no gate matching and no per-index mask tests. The arithmetic
/// per amplitude is exactly the stride kernels' (slice swaps, the H
/// butterfly formula, `cis` multiplies, exact negation), which is what
/// keeps [`fused`] bit-identical to unfused execution.
enum LocalOp {
    /// Disjoint index pairs to swap (`X`, `CX`, `CCX`, `SWAP`).
    Swap(Vec<(u8, u8)>),
    /// Disjoint index pairs to butterfly (`H`).
    Butterfly(Vec<(u8, u8)>),
    /// Indices to multiply by the phase (`Phase`, `CPhase`, `CcPhase`).
    Scale(Vec<u8>, Complex),
    /// Indices to negate exactly (`Z`, `CZ`, `CCZ`).
    Negate(Vec<u8>),
}

/// Flattens a block's local gates into [`LocalOp`]s for `dim = 2^k`
/// groups.
fn compile_local_ops(dim: usize, gates: &[Gate]) -> Vec<LocalOp> {
    let m = |q: mbu_circuit::QubitId| 1usize << q.index();
    // Index pairs `(i, i | target)` with `controls` all set, target clear.
    let moved = |controls: usize, target: usize| -> Vec<(u8, u8)> {
        (0..dim)
            .filter(|i| i & controls == controls && i & target == 0)
            .map(|i| (i as u8, (i | target) as u8))
            .collect()
    };
    // Indices with every bit of `mask` set.
    let selected = |mask: usize| -> Vec<u8> {
        (0..dim)
            .filter(|i| i & mask == mask)
            .map(|i| i as u8)
            .collect()
    };
    gates
        .iter()
        .map(|g| match *g {
            Gate::X(q) => LocalOp::Swap(moved(0, m(q))),
            Gate::H(q) => LocalOp::Butterfly(moved(0, m(q))),
            Gate::Cx(c, t) => LocalOp::Swap(moved(m(c), m(t))),
            Gate::Ccx(c1, c2, t) => LocalOp::Swap(moved(m(c1) | m(c2), m(t))),
            Gate::Swap(a, b) => LocalOp::Swap(
                (0..dim)
                    .filter(|i| i & m(a) != 0 && i & m(b) == 0)
                    .map(|i| (i as u8, (i ^ m(a) ^ m(b)) as u8))
                    .collect(),
            ),
            Gate::Z(q) => LocalOp::Negate(selected(m(q))),
            Gate::Cz(a, b) => LocalOp::Negate(selected(m(a) | m(b))),
            Gate::Ccz(a, b, c) => LocalOp::Negate(selected(m(a) | m(b) | m(c))),
            Gate::Phase(q, theta) => LocalOp::Scale(selected(m(q)), Complex::cis(theta.radians())),
            Gate::CPhase(c, t, theta) => {
                LocalOp::Scale(selected(m(c) | m(t)), Complex::cis(theta.radians()))
            }
            Gate::CcPhase(c1, c2, t, theta) => LocalOp::Scale(
                selected(m(c1) | m(c2) | m(t)),
                Complex::cis(theta.radians()),
            ),
        })
        .collect()
}

/// Applies the precompiled ops to one gathered group (SoA locals).
#[inline(always)]
fn apply_local_ops(re: &mut [f64; 16], im: &mut [f64; 16], ops: &[LocalOp]) {
    for op in ops {
        match op {
            LocalOp::Swap(pairs) => {
                for &(a, b) in pairs {
                    re.swap(a as usize, b as usize);
                    im.swap(a as usize, b as usize);
                }
            }
            LocalOp::Butterfly(pairs) => {
                for &(a, b) in pairs {
                    let (a, b) = (a as usize, b as usize);
                    let (xr, yr) = (re[a], re[b]);
                    re[a] = (xr + yr) * FRAC_1_SQRT_2;
                    re[b] = (xr - yr) * FRAC_1_SQRT_2;
                    let (xi, yi) = (im[a], im[b]);
                    im[a] = (xi + yi) * FRAC_1_SQRT_2;
                    im[b] = (xi - yi) * FRAC_1_SQRT_2;
                }
            }
            LocalOp::Scale(sel, w) => {
                for &i in sel {
                    let i = i as usize;
                    let a = re[i];
                    let b = im[i];
                    re[i] = a * w.re - b * w.im;
                    im[i] = a * w.im + b * w.re;
                }
            }
            LocalOp::Negate(sel) => {
                for &i in sel {
                    re[i as usize] = -re[i as usize];
                    im[i as usize] = -im[i as usize];
                }
            }
        }
    }
}

/// The fused dense-block kernel: applies a compiled fusion block — `gates`
/// with local operands over the (ascending) physical bit `positions` — in
/// a single sweep over the state.
///
/// Each group of `2^k` amplitudes (one per assignment of the non-block
/// bits) is gathered into local registers, pushed through every
/// constituent gate via [`apply_local_ops`], and scattered back (long
/// runs skip the gather entirely and stream the member slices). Groups
/// are independent, so the sweep parallelises over groups; the local
/// application performs exactly the arithmetic of unfused kernel
/// execution, so amplitudes stay bit-identical to the gate-at-a-time path
/// at any thread count.
///
/// # Errors
///
/// The block descriptor is caller-supplied (it crosses the crate boundary
/// via compiled circuits), so it is validated up front — in release
/// builds too — instead of trusted: a block spanning 0 or more than 4
/// qubits, non-ascending positions, a position outside the state, or a
/// gate operand outside the block returns
/// [`SimError::InvalidFusedBlock`] and leaves the state untouched.
pub(crate) fn fused(
    par: Par<'_>,
    amps: &mut Amps,
    positions: &[usize],
    gates: &[Gate],
) -> Result<(), SimError> {
    let invalid = |why: String| SimError::InvalidFusedBlock { why };
    let k = positions.len();
    if !(1..=4).contains(&k) {
        return Err(invalid(format!(
            "block spans {k} qubits (supported: 1..=4)"
        )));
    }
    if !positions.windows(2).all(|w| w[0] < w[1]) {
        return Err(invalid(format!(
            "block positions {positions:?} are not strictly ascending"
        )));
    }
    if !amps.len().is_power_of_two() || positions[k - 1] >= amps.len().trailing_zeros() as usize {
        return Err(invalid(format!(
            "block position {} outside a {}-amplitude state",
            positions[k - 1],
            amps.len()
        )));
    }
    for g in gates {
        let mut in_block = true;
        let _ = g.map_qubits(|q| {
            in_block &= q.index() < k;
            q
        });
        if !in_block {
            return Err(invalid(format!(
                "gate {g:?} has an operand outside the {k}-qubit block"
            )));
        }
    }
    let dim = 1usize << k;
    // Global offset of local index `j`: its bits spread over `positions`.
    let mut off = [0usize; 16];
    for (j, o) in off.iter_mut().enumerate().take(dim) {
        for (b, &p) in positions.iter().enumerate() {
            *o |= ((j >> b) & 1) << p;
        }
    }
    let mut pins = [(0usize, 0usize); 4];
    for (pin, &p) in pins.iter_mut().zip(positions) {
        *pin = (p, 0);
    }
    let ops = compile_local_ops(dim, gates);
    drive(par, amps, &pins[..k], |sh, base, run, stride, count| {
        for j in 0..count {
            let rb = base + j * stride;
            if run >= 8 {
                // Slice mode: the run's member slices ([rb+off[j],
                // rb+off[j]+run) for each local index j) are contiguous,
                // so every op is a vectorisable span-to-span operation
                // and no amplitude is gathered or scattered at all. Long
                // runs are processed in cache-sized sub-blocks so the 2^k
                // slices stay hot across the whole op sequence — the
                // fused sweep then moves each amplitude through the
                // memory hierarchy once, however many gates the block
                // holds.
                const SUB: usize = 1usize << 12;
                let mut sub = 0usize;
                while sub < run {
                    let sr = (run - sub).min(SUB);
                    // Member slice `j` of this sub-block (no carries:
                    // `off` bits sit above the run's low bits, and the
                    // group stride stays below the next pinned bit).
                    let member = |j: u8| rb + off[j as usize] + sub;
                    for op in &ops {
                        match op {
                            LocalOp::Swap(pairs) => {
                                for &(a, b) in pairs {
                                    // SAFETY: distinct local indices name
                                    // disjoint member slices; runs (and
                                    // their sub-blocks) are pairwise
                                    // disjoint.
                                    #[allow(unsafe_code)]
                                    let (ar, ai) = unsafe { sh.slice(member(a), sr) };
                                    // SAFETY: as above, member `b`.
                                    #[allow(unsafe_code)]
                                    let (br, bi) = unsafe { sh.slice(member(b), sr) };
                                    ar.swap_with_slice(br);
                                    ai.swap_with_slice(bi);
                                }
                            }
                            LocalOp::Butterfly(pairs) => {
                                for &(a, b) in pairs {
                                    // SAFETY: as above.
                                    #[allow(unsafe_code)]
                                    let (ar, ai) = unsafe { sh.slice(member(a), sr) };
                                    // SAFETY: as above, member `b`.
                                    #[allow(unsafe_code)]
                                    let (br, bi) = unsafe { sh.slice(member(b), sr) };
                                    butterfly_span(ar, br);
                                    butterfly_span(ai, bi);
                                }
                            }
                            LocalOp::Scale(sel, w) => {
                                for &jj in sel {
                                    // SAFETY: as above.
                                    #[allow(unsafe_code)]
                                    let (r, i) = unsafe { sh.slice(member(jj), sr) };
                                    scale_span(r, i, *w);
                                }
                            }
                            LocalOp::Negate(sel) => {
                                for &jj in sel {
                                    // SAFETY: as above.
                                    #[allow(unsafe_code)]
                                    let (r, i) = unsafe { sh.slice(member(jj), sr) };
                                    negate_span(r, i);
                                }
                            }
                        }
                    }
                    sub += sr;
                }
            } else {
                // Gather mode for short runs (the block pins low bits):
                // pull each 2^k group into SoA locals, apply every op,
                // scatter back.
                #[allow(unsafe_code)]
                for gbase in rb..rb + run {
                    let mut lre = [0.0f64; 16];
                    let mut lim = [0.0f64; 16];
                    for (jj, &o) in off.iter().enumerate().take(dim) {
                        // SAFETY: the group's member indices
                        // (`gbase | off[jj]`) are disjoint from every
                        // other group's — groups differ in the non-block
                        // bits — and only this closure invocation touches
                        // them.
                        let (r, i) = unsafe { sh.slice(gbase | o, 1) };
                        lre[jj] = r[0];
                        lim[jj] = i[0];
                    }
                    apply_local_ops(&mut lre, &mut lim, &ops);
                    for (jj, &o) in off.iter().enumerate().take(dim) {
                        // SAFETY: as above — group members are touched by
                        // exactly this invocation.
                        let (r, i) = unsafe { sh.slice(gbase | o, 1) };
                        r[0] = lre[jj];
                        i[0] = lim[jj];
                    }
                }
            }
        }
    });
    Ok(())
}

/// A maximal run of consecutive pinned bit positions, shared by the
/// extract/spread bit-field walks of the permutation kernel: support bits
/// `shift..shift+width` of a local pattern live at absolute bits
/// `start..start+width`.
struct BitSeg {
    start: usize,
    shift: usize,
    mask: usize,
}

/// Decomposes ascending `positions` into maximal contiguous segments.
// Same address-geometry rule as `Pins`: the segments this produces are
// composed into raw gather indices, so no silent wrap is tolerable.
#[deny(clippy::arithmetic_side_effects)]
fn bit_segments(positions: &[usize]) -> Vec<BitSeg> {
    let mut segs = Vec::new();
    let mut k0 = 0usize;
    while k0 < positions.len() {
        // `k1 ≤ len` throughout and positions ascend, so the saturating
        // steps are exact; the contiguity test via `wrapping_sub` equals
        // `positions[k1] == positions[k1-1] + 1` for ascending input.
        let mut k1 = k0.saturating_add(1);
        while k1 < positions.len()
            && positions[k1].wrapping_sub(positions[k1.saturating_sub(1)]) == 1
        {
            k1 = k1.saturating_add(1);
        }
        segs.push(BitSeg {
            start: positions[k0],
            shift: k0,
            // The shifted value is ≥ 1, so the wrapping decrement is exact.
            mask: (1usize << k1.saturating_sub(k0)).wrapping_sub(1),
        });
        k0 = k1;
    }
    segs
}

/// The fused permutation-block kernel: applies a compiled fusion block
/// whose gates are all classical basis permutations (`X`, `CX`, `CCX`,
/// `SWAP`; see `Gate::is_permutation`) — `gates` with local operands over
/// the (ascending) physical bit `positions` — in a single sweep, however
/// many gates the block holds.
///
/// The block's composed action factorises as `identity` on the non-block
/// bits times a permutation `G` of the `2^k` block-bit patterns, so the
/// kernel precomputes the *inverse* local map as a `2^k`-entry table of
/// already-deposited bit patterns and streams the state once:
/// `new[j] = old[(j & !support) | table[extract(j)]]` — sequential writes
/// into `scratch`, gathered reads from `amps`, then the buffers swap.
/// Every amplitude is **moved**, never recombined: zero floating-point
/// arithmetic, so the sweep is bit-identical to gate-by-gate execution by
/// construction, at any thread count (destination chunks are disjoint and
/// the source is read-only).
///
/// `scratch` is the caller's reusable destination buffer (resized here as
/// needed); on success it holds the *previous* amplitudes.
///
/// # Errors
///
/// The block descriptor is caller-supplied, so it is validated up front —
/// in release builds too — instead of trusted: a block spanning 0 or more
/// than [`mbu_circuit::MAX_PERM_FUSED_QUBITS`] qubits, non-ascending
/// positions, a position outside the state, a gate operand outside the
/// block, or a non-permutation gate returns
/// [`SimError::InvalidFusedBlock`] and leaves the state untouched.
pub(crate) fn permute(
    par: Par<'_>,
    amps: &mut Amps,
    scratch: &mut Amps,
    positions: &[usize],
    gates: &[Gate],
) -> Result<(), SimError> {
    let invalid = |why: String| SimError::InvalidFusedBlock { why };
    let k = positions.len();
    if !(1..=mbu_circuit::MAX_PERM_FUSED_QUBITS).contains(&k) {
        return Err(invalid(format!(
            "permutation block spans {k} qubits (supported: 1..={})",
            mbu_circuit::MAX_PERM_FUSED_QUBITS
        )));
    }
    if !positions.windows(2).all(|w| w[0] < w[1]) {
        return Err(invalid(format!(
            "block positions {positions:?} are not strictly ascending"
        )));
    }
    if !amps.len().is_power_of_two() || positions[k - 1] >= amps.len().trailing_zeros() as usize {
        return Err(invalid(format!(
            "block position {} outside a {}-amplitude state",
            positions[k - 1],
            amps.len()
        )));
    }
    for g in gates {
        if !g.is_permutation() {
            return Err(invalid(format!("gate {g:?} is not a basis permutation")));
        }
        let mut in_block = true;
        let _ = g.map_qubits(|q| {
            in_block &= q.index() < k;
            q
        });
        if !in_block {
            return Err(invalid(format!(
                "gate {g:?} has an operand outside the {k}-qubit block"
            )));
        }
    }

    let segs = bit_segments(positions);
    let support: usize = segs.iter().map(|s| s.mask << s.start).sum();
    let extract = |j: usize| -> usize {
        segs.iter()
            .map(|s| ((j >> s.start) & s.mask) << s.shift)
            .sum()
    };
    let spread = |v: usize| -> usize {
        segs.iter()
            .map(|s| ((v >> s.shift) & s.mask) << s.start)
            .sum()
    };
    // Inverse local map, deposited: `table[v]` is the support-bit pattern
    // of the source index feeding destination pattern `v`. All block
    // gates are self-inverse, so `G⁻¹` is the gates applied in reverse
    // order, each acting classically on the local bit pattern.
    let dim = 1usize << k;
    let table: Vec<usize> = (0..dim)
        .map(|v| {
            let mut w = v;
            for g in gates.iter().rev() {
                let m = |q: mbu_circuit::QubitId| q.index();
                match *g {
                    Gate::X(t) => w ^= 1usize << m(t),
                    Gate::Cx(c, t) => w ^= ((w >> m(c)) & 1) << m(t),
                    Gate::Ccx(c1, c2, t) => w ^= ((w >> m(c1)) & (w >> m(c2)) & 1) << m(t),
                    Gate::Swap(a, b) => {
                        let x = ((w >> m(a)) ^ (w >> m(b))) & 1;
                        w ^= (x << m(a)) | (x << m(b));
                    }
                    _ => unreachable!("validated: permutation gates only"),
                }
            }
            spread(w)
        })
        .collect();

    let len = amps.len();
    scratch.resize_zeroed(len);
    let (sre, sim) = amps.parts();
    let shared = {
        let (re, im) = scratch.parts_mut();
        Shared {
            re: re.as_mut_ptr(),
            im: im.as_mut_ptr(),
            len,
        }
    };
    // Below the lowest pinned bit, source and destination indices advance
    // in lockstep, so whole runs copy as spans.
    let run_len = 1usize << positions[0];
    let sweep = |from: usize, to: usize| {
        // SAFETY: destination ranges are disjoint across chunks, and the
        // source buffer is only read.
        #[allow(unsafe_code)]
        let (dre, dim_) = unsafe { shared.slice(from, to - from) };
        if run_len >= LANES {
            let mut j = from;
            while j < to {
                let n = (run_len - (j & (run_len - 1))).min(to - j);
                let i = (j & !support) | table[extract(j)];
                dre[j - from..j - from + n].copy_from_slice(&sre[i..i + n]);
                dim_[j - from..j - from + n].copy_from_slice(&sim[i..i + n]);
                j += n;
            }
        } else {
            for j in from..to {
                let i = (j & !support) | table[extract(j)];
                dre[j - from] = sre[i];
                dim_[j - from] = sim[i];
            }
        }
    };
    match par.pool {
        Some(pool) if pool.threads() > 1 && len >= PAR_MIN_AMPS => {
            let chunks = pool.threads().min(len);
            let per = len / chunks;
            let extra = len % chunks;
            let boundary = |c: usize| -> usize {
                if c == 0 {
                    0
                } else if c == chunks {
                    len
                } else {
                    (c * per + c.min(extra)) & !(LANES - 1)
                }
            };
            pool.run(chunks, &|c| sweep(boundary(c), boundary(c + 1)));
        }
        _ => sweep(0, len),
    }
    std::mem::swap(amps, scratch);
    Ok(())
}

/// Reclamation kernel: projects bit `p` onto the definite value `keep` and
/// compacts the array to half its length, so the state no longer
/// represents the dropped qubit at all.
///
/// Pure amplitude moves — the surviving entries are copied bit-for-bit
/// (`amps[i] ← amps[insert_bit(i, p, keep)]`), never rescaled, so for an
/// exactly-projected qubit (the post-measurement case reclamation targets)
/// the compact state is numerically identical to the full one restricted
/// to its support. The copy runs forward in place: every source index is
/// at or ahead of its destination. (Serial by design: successive halves
/// overlap, so the chunk-disjointness the parallel driver needs does not
/// hold.)
pub(crate) fn compact_bit(amps: &mut Amps, p: usize, keep: bool) {
    let half = amps.len() / 2;
    let low_mask = (1usize << p) - 1;
    let kept = usize::from(keep) << p;
    {
        let (re, im) = amps.parts_mut();
        for i in 0..half {
            let src = ((i & !low_mask) << 1) | kept | (i & low_mask);
            re[i] = re[src];
            im[i] = im[src];
        }
    }
    amps.truncate(half);
}

/// Reclamation kernel: the exact inverse of [`compact_bit`] — doubles the
/// state by inserting a fresh bit holding `value` at position `p`, used to
/// re-materialise a factored-out qubit the moment an instruction touches
/// it (at its *order-preserving* position, so the live-qubit remap never
/// accumulates a permutation that would need sorting out at restore time).
///
/// Pure moves, backward in place: every destination index is at or ahead
/// of its source, and vacated sources are zeroed. At the top position with
/// `value = 0` this degenerates to a plain zero-extension.
pub(crate) fn expand_bit(amps: &mut Amps, p: usize, value: bool) {
    let old = amps.len();
    amps.resize_zeroed(old * 2);
    let low_mask = (1usize << p) - 1;
    let vbit = usize::from(value) << p;
    let (re, im) = amps.parts_mut();
    for i in (0..old).rev() {
        let dst = ((i & !low_mask) << 1) | vbit | (i & low_mask);
        if dst != i {
            re[dst] = re[i];
            re[i] = 0.0;
            im[dst] = im[i];
            im[i] = 0.0;
        }
    }
}

/// Branch-tree kernel: the both-branch projection of a Z-basis
/// measurement on bit mask `m` (`1usize << p`), in **one sweep** over the
/// parent state. The parent collapses in place to the outcome-0 branch
/// (bit-clear amplitudes rescaled by `scale0`, bit-set zeroed) while the
/// returned array holds the outcome-1 branch (bit-set rescaled by
/// `scale1`, bit-clear zeroed).
///
/// The per-amplitude arithmetic — componentwise rescale on survivors,
/// exact zeros elsewhere, in ascending index order — is exactly the
/// projection loop of the sampling measurement path, so each branch is
/// bit-identical to what a forced-outcome `measure` would have left
/// behind.
pub(crate) fn split_bit(amps: &mut Amps, m: usize, scale0: f64, scale1: f64) -> Amps {
    let mut one = Amps::zeroed(amps.len());
    {
        let (ore, oim) = one.parts_mut();
        let (re, im) = amps.parts_mut();
        let mut base = 0usize;
        while base < re.len() {
            for i in base..base + m {
                re[i] *= scale0;
                im[i] *= scale0;
            }
            for i in base + m..base + (m << 1) {
                ore[i] = re[i] * scale1;
                oim[i] = im[i] * scale1;
                re[i] = 0.0;
                im[i] = 0.0;
            }
            base += m << 1;
        }
    }
    one
}

/// Measurement kernel: projects bit `p` onto `outcome`, rescaling the
/// surviving amplitudes by `scale` (componentwise, exactly
/// `a.scale(scale)`) and zeroing the rest — one block-structured sweep,
/// identical arithmetic and order to a per-index
/// `if bit matches { rescale } else { zero }` scan.
pub(crate) fn project_bit(amps: &mut Amps, p: usize, outcome: bool, scale: f64) {
    let m = 1usize << p;
    let (re, im) = amps.parts_mut();
    let mut base = 0usize;
    while base < re.len() {
        let (keep, kill) = if outcome {
            (base + m, base)
        } else {
            (base, base + m)
        };
        for i in keep..keep + m {
            re[i] *= scale;
            im[i] *= scale;
        }
        re[kill..kill + m].fill(0.0);
        im[kill..kill + m].fill(0.0);
        base += m << 1;
    }
}

/// Projection without renormalisation: zeroes every amplitude whose bit
/// `p` is set and leaves the rest **bitwise untouched** (no multiply by
/// 1.0 — survivors keep their exact representation). Used when the
/// discarded branch already carries zero probability mass.
pub(crate) fn zero_where_bit(amps: &mut Amps, p: usize) {
    let m = 1usize << p;
    let (re, im) = amps.parts_mut();
    let mut base = 0usize;
    while base < re.len() {
        re[base + m..base + (m << 1)].fill(0.0);
        im[base + m..base + (m << 1)].fill(0.0);
        base += m << 1;
    }
}

/// The probability mass carried by amplitudes whose bit `p` is set — a
/// serial reduction in ascending index order, identical to a filtered
/// per-index `norm_sqr` sum (parallel or reordered partial sums would
/// re-associate floating-point addition).
pub(crate) fn prob_of_set_bit(amps: &Amps, p: usize) -> f64 {
    let m = 1usize << p;
    let (re, im) = amps.parts();
    let mut mass = 0.0;
    let mut base = 0usize;
    while base < re.len() {
        for i in base + m..base + (m << 1) {
            mass += re[i] * re[i] + im[i] * im[i];
        }
        base += m << 1;
    }
    mass
}

/// The probability masses `(mass₀, mass₁)` carried by amplitudes whose bit
/// `p` is clear / set — the definiteness check a [`compact_bit`] drop is
/// gated on. (A serial reduction: parallel partial sums would re-associate
/// floating-point addition.)
pub(crate) fn bit_masses(amps: &Amps, p: usize) -> (f64, f64) {
    let m = 1usize << p;
    let (re, im) = amps.parts();
    let mut m0 = 0.0;
    let mut m1 = 0.0;
    let mut base = 0usize;
    while base < re.len() {
        for i in base..base + m {
            m0 += re[i] * re[i] + im[i] * im[i];
        }
        for i in base + m..base + (m << 1) {
            m1 += re[i] * re[i] + im[i] * im[i];
        }
        base += m << 1;
    }
    (m0, m1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::QubitId;

    /// Expands one enumeration of `drive` into sorted absolute indices,
    /// asserting no index is delivered twice.
    fn indices_with(par: Par<'_>, len: usize, pins: &[(usize, usize)]) -> Vec<usize> {
        let mut amps = Amps::zeroed(len);
        let v = std::sync::Mutex::new(Vec::new());
        drive(par, &mut amps, pins, |_, base, run, stride, count| {
            let mut v = v.lock().unwrap();
            for j in 0..count {
                v.extend(base + j * stride..base + j * stride + run);
            }
        });
        let mut v = v.into_inner().unwrap();
        v.sort_unstable();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "duplicate index");
        v
    }

    /// Both enumeration strategies must visit the same index set.
    fn indices(len: usize, pins: &[(usize, usize)]) -> Vec<usize> {
        let grouped = indices_with(Par::serial(), len, pins);
        let scalar = indices_with(Par::scalar(), len, pins);
        assert_eq!(grouped, scalar, "simd and scalar enumerations diverge");
        grouped
    }

    #[test]
    fn run2_enumerates_the_whole_subspace_once() {
        // Every index with bit 2 = 1 and bit 0 = 0 in a 4-qubit space,
        // exactly once — in any pin order.
        for pins in [[(2, 1), (0, 0)], [(0, 0), (2, 1)]] {
            assert_eq!(indices(16, &pins), vec![0b0100, 0b0110, 0b1100, 0b1110]);
        }
    }

    #[test]
    fn run3_enumerates_the_whole_subspace_once() {
        // Bits 0 and 3 pinned to 1, bit 1 pinned to 0, in a 5-qubit space:
        // 2^(5-3) = 4 indices.
        assert_eq!(
            indices(32, &[(3, 1), (0, 1), (1, 0)]),
            vec![0b01001, 0b01101, 0b11001, 0b11101]
        );
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn run_iteration_matches_mask_filter_exhaustively() {
        // Cross-check against the naive definition for every pin layout in
        // a 6-qubit space, for 1, 2 and 3 pins — on both enumeration
        // strategies (the `indices` helper asserts they agree).
        let len = 64usize;
        for p0 in 0..6 {
            for v0 in [0usize, 1] {
                let want: Vec<usize> = (0..len).filter(|i| i >> p0 & 1 == v0).collect();
                assert_eq!(indices(len, &[(p0, v0)]), want, "pin ({p0},{v0})");
            }
            for p1 in 0..6 {
                if p0 == p1 {
                    continue;
                }
                for (v0, v1) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let want: Vec<usize> = (0..len)
                        .filter(|i| i >> p0 & 1 == v0 && i >> p1 & 1 == v1)
                        .collect();
                    assert_eq!(
                        indices(len, &[(p0, v0), (p1, v1)]),
                        want,
                        "pins ({p0},{v0}) ({p1},{v1})"
                    );
                }
                for p2 in 0..6 {
                    if p2 == p0 || p2 == p1 {
                        continue;
                    }
                    let want: Vec<usize> = (0..len)
                        .filter(|i| i >> p0 & 1 == 1 && i >> p1 & 1 == 0 && i >> p2 & 1 == 1)
                        .collect();
                    assert_eq!(
                        indices(len, &[(p0, 1), (p1, 0), (p2, 1)]),
                        want,
                        "pins {p0} {p1} {p2}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_pins_enumerate_correctly() {
        let len = 64usize;
        let want: Vec<usize> = (0..len)
            .filter(|i| i >> 1 & 1 == 1 && i >> 2 & 1 == 0 && i >> 4 & 1 == 1 && i >> 5 & 1 == 0)
            .collect();
        assert_eq!(indices(len, &[(5, 0), (1, 1), (4, 1), (2, 0)]), want);
    }

    #[test]
    fn x_kernel_on_high_bit() {
        let mut amps = Amps::zeroed(8);
        amps.set(0b001, Complex::ONE);
        x(Par::serial(), &mut amps, 2);
        assert_eq!(amps.get(0b101), Complex::ONE);
        assert_eq!(amps.get(0b001), Complex::ZERO);
    }

    /// A deterministic, non-degenerate test state.
    fn ramp(len: usize) -> Amps {
        Amps::from_complex(
            &(0..len)
                .map(|i| Complex::new(1.0 + i as f64, -0.5 * i as f64))
                .collect::<Vec<_>>(),
        )
    }

    fn assert_bit_identical(a: &Amps, b: &Amps, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: lengths");
        for i in 0..a.len() {
            let (x, y) = (a.get(i), b.get(i));
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re of amp {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im of amp {i}");
        }
    }

    type Kernel = Box<dyn Fn(Par<'_>, &mut Amps)>;

    /// Every kernel family over an `n`-qubit state (requires `n ≥ 10`):
    /// low-bit, high-bit and mixed operands, so runs of length 1 up to
    /// half the array all occur.
    fn kernel_suite(n: usize) -> Vec<(&'static str, Kernel)> {
        assert!(n >= 10);
        let w = Complex::cis(0.3);
        type K = Kernel;
        let kernels: Vec<(&'static str, K)> = vec![
            ("x lo", Box::new(|p, a: &mut Amps| x(p, a, 0))),
            ("x hi", Box::new(move |p, a: &mut Amps| x(p, a, n - 1))),
            ("h lo", Box::new(|p, a: &mut Amps| h(p, a, 1))),
            ("h hi", Box::new(move |p, a: &mut Amps| h(p, a, n - 1))),
            ("z", Box::new(|p, a: &mut Amps| z(p, a, 3, 1))),
            (
                "phase1",
                Box::new(move |p, a: &mut Amps| phase1(p, a, 2, 0, w)),
            ),
            (
                "cx lo-hi",
                Box::new(move |p, a: &mut Amps| cx(p, a, 0, 1, n - 1)),
            ),
            (
                "cx hi-lo",
                Box::new(move |p, a: &mut Amps| cx(p, a, n - 1, 1, 0)),
            ),
            ("cx adjacent", Box::new(|p, a: &mut Amps| cx(p, a, 0, 1, 1))),
            (
                "ccx",
                Box::new(move |p, a: &mut Amps| ccx(p, a, 2, 1, n - 2, 1, 5)),
            ),
            (
                "ccx lo target",
                Box::new(move |p, a: &mut Amps| ccx(p, a, 4, 1, n - 1, 0, 0)),
            ),
            (
                "cz",
                Box::new(move |p, a: &mut Amps| cz(p, a, 1, 1, n - 1, 1)),
            ),
            (
                "phase2",
                Box::new(move |p, a: &mut Amps| phase2(p, a, 4, 0, 9, 1, w)),
            ),
            (
                "ccz",
                Box::new(move |p, a: &mut Amps| ccz(p, a, 0, 1, 7, 0, n - 1, 1)),
            ),
            (
                "phase3",
                Box::new(move |p, a: &mut Amps| phase3(p, a, 3, 1, 8, 1, n - 2, 0, w)),
            ),
            (
                "swap",
                Box::new(move |p, a: &mut Amps| swap(p, a, 2, n - 1)),
            ),
            (
                "swap adjacent",
                Box::new(|p, a: &mut Amps| swap(p, a, 7, 8)),
            ),
            (
                "swap high-low",
                Box::new(move |p, a: &mut Amps| swap(p, a, n - 1, 0)),
            ),
        ];
        kernels
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn parallel_kernels_are_bit_identical_to_serial() {
        // A pool with several lanes on an array above the parallel
        // threshold: every kernel family must produce bitwise-identical
        // amplitudes across scalar-serial, simd-serial, simd-parallel and
        // scalar-parallel runs, including high-bit operands where a run
        // spans a huge contiguous range.
        let n = 15usize; // 2^15 = 32768 ≥ PAR_MIN_AMPS
        let len = 1usize << n;
        let pool = AmpPool::new(4);
        for (name, kernel) in &kernel_suite(n) {
            let mut scalar = ramp(len);
            kernel(Par::scalar(), &mut scalar);
            for (mode, par) in [
                ("simd serial", Par::serial()),
                ("simd parallel", Par::new(Some(&pool), true)),
                ("scalar parallel", Par::new(Some(&pool), false)),
            ] {
                let mut got = ramp(len);
                kernel(par, &mut got);
                assert_bit_identical(&scalar, &got, &format!("{name} [{mode}]"));
            }
        }
    }

    #[test]
    fn simd_matches_scalar_on_tiny_states() {
        // States smaller than one lane chunk must take the span helpers'
        // scalar tails and still agree bitwise with the scalar path.
        let w = Complex::cis(1.1);
        type K = Box<dyn Fn(Par<'_>, &mut Amps)>;
        for n in [2usize, 3] {
            let len = 1usize << n;
            let kernels: Vec<(&'static str, K)> = vec![
                ("x", Box::new(|p, a: &mut Amps| x(p, a, 0))),
                ("h", Box::new(|p, a: &mut Amps| h(p, a, 0))),
                ("z", Box::new(|p, a: &mut Amps| z(p, a, 1, 1))),
                (
                    "phase1",
                    Box::new(move |p, a: &mut Amps| phase1(p, a, 0, 1, w)),
                ),
                ("cx", Box::new(move |p, a: &mut Amps| cx(p, a, 0, 1, n - 1))),
                (
                    "cz",
                    Box::new(move |p, a: &mut Amps| cz(p, a, 0, 1, n - 1, 1)),
                ),
                (
                    "swap",
                    Box::new(move |p, a: &mut Amps| swap(p, a, 0, n - 1)),
                ),
            ];
            for (name, kernel) in &kernels {
                let mut scalar = ramp(len);
                let mut simd = ramp(len);
                kernel(Par::scalar(), &mut scalar);
                kernel(Par::serial(), &mut simd);
                assert_bit_identical(&scalar, &simd, &format!("{name} @ len {len}"));
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn fused_kernel_equals_sequential_application_bitwise() {
        // A 3-qubit block on non-contiguous positions of a 15-qubit state,
        // serial and parallel, against one-gate-at-a-time execution.
        let q = |i: u32| QubitId(i);
        let theta = mbu_circuit::Angle::turn_over_power_of_two(3);
        // Local gates over local operands l0, l1, l2.
        let gates = vec![
            Gate::H(q(0)),
            Gate::Ccx(q(0), q(2), q(1)),
            Gate::Phase(q(1), theta),
            Gate::Cx(q(1), q(0)),
            Gate::X(q(2)),
            Gate::Cz(q(0), q(2)),
            Gate::Swap(q(1), q(2)),
        ];
        let positions = [1usize, 6, 14];
        let len = 1usize << 15;

        // Reference: each local gate applied gate-at-a-time with operands
        // mapped onto the physical positions, on the scalar path.
        let mut reference = ramp(len);
        for g in &gates {
            let phys = g.map_qubits(|lq| QubitId(u32::try_from(positions[lq.index()]).unwrap()));
            match phys {
                Gate::X(a) => x(Par::scalar(), &mut reference, a.index()),
                Gate::H(a) => h(Par::scalar(), &mut reference, a.index()),
                Gate::Phase(a, t) => phase1(
                    Par::scalar(),
                    &mut reference,
                    a.index(),
                    1,
                    Complex::cis(t.radians()),
                ),
                Gate::Cx(c, t) => cx(Par::scalar(), &mut reference, c.index(), 1, t.index()),
                Gate::Ccx(c1, c2, t) => ccx(
                    Par::scalar(),
                    &mut reference,
                    c1.index(),
                    1,
                    c2.index(),
                    1,
                    t.index(),
                ),
                Gate::Cz(a, b) => cz(Par::scalar(), &mut reference, a.index(), 1, b.index(), 1),
                Gate::Swap(a, b) => swap(Par::scalar(), &mut reference, a.index(), b.index()),
                _ => unreachable!(),
            }
        }

        let pool = AmpPool::new(3);
        for par in [
            Par::scalar(),
            Par::serial(),
            Par::new(Some(&pool), true),
            Par::new(Some(&pool), false),
        ] {
            let mut fused_amps = ramp(len);
            fused(par, &mut fused_amps, &positions, &gates).unwrap();
            assert_bit_identical(&reference, &fused_amps, "fused");
        }
    }

    #[test]
    fn fused_gather_mode_agrees_with_slice_mode_geometry() {
        // Low positions force gather mode (runs of 1–2); the same block on
        // shifted-up positions runs slice mode. Both against the unfused
        // reference on a small state.
        let q = |i: u32| QubitId(i);
        let gates = vec![Gate::H(q(0)), Gate::Cx(q(0), q(1)), Gate::Z(q(1))];
        for positions in [[0usize, 1], [5, 7]] {
            let len = 1usize << 9;
            let mut reference = ramp(len);
            h(Par::scalar(), &mut reference, positions[0]);
            cx(Par::scalar(), &mut reference, positions[0], 1, positions[1]);
            z(Par::scalar(), &mut reference, positions[1], 1);
            for par in [Par::scalar(), Par::serial()] {
                let mut got = ramp(len);
                fused(par, &mut got, &positions, &gates).unwrap();
                assert_bit_identical(&reference, &got, &format!("positions {positions:?}"));
            }
        }
    }

    #[test]
    fn fused_rejects_malformed_blocks_in_release_builds_too() {
        // Regression for the release-vanishing `debug_assert!` guards:
        // each malformed descriptor must come back as a typed error (and
        // leave the state untouched), never index out of bounds.
        let q = |i: u32| QubitId(i);
        let pristine = ramp(16);
        let expect_invalid = |positions: &[usize], gates: &[Gate], what: &str| {
            let mut amps = ramp(16);
            let err = fused(Par::serial(), &mut amps, positions, gates).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidFusedBlock { .. }),
                "{what}: got {err:?}"
            );
            assert_bit_identical(&pristine, &amps, what);
        };
        expect_invalid(&[], &[], "empty block");
        expect_invalid(&[0, 1, 2, 3, 4], &[], "five-qubit block");
        expect_invalid(&[2, 1], &[Gate::X(q(0))], "descending positions");
        expect_invalid(&[1, 1], &[Gate::X(q(0))], "duplicate positions");
        expect_invalid(&[0, 4], &[Gate::X(q(0))], "position beyond the state");
        expect_invalid(
            &[0, 1],
            &[Gate::Cx(q(0), q(2))],
            "gate operand outside the block",
        );
        // The in-range shapes still work.
        let mut amps = ramp(16);
        fused(Par::serial(), &mut amps, &[0, 3], &[Gate::X(q(1))]).unwrap();
    }

    #[test]
    fn compact_and_expand_round_trip() {
        // A 3-qubit state with bit 1 pinned to 1: dropping bit 1 then
        // re-inserting it at the same position must reproduce the state
        // exactly.
        let mut amps = Amps::zeroed(8);
        amps.set(0b010, Complex::new(0.6, 0.0));
        amps.set(0b111, Complex::new(0.0, 0.8));
        let original = amps.to_vec();

        let (m0, m1) = bit_masses(&amps, 1);
        assert_eq!(m0, 0.0);
        assert!((m1 - 1.0).abs() < 1e-12);

        compact_bit(&mut amps, 1, true);
        assert_eq!(amps.len(), 4);
        assert_eq!(amps.get(0b00), Complex::new(0.6, 0.0)); // was |010⟩
        assert_eq!(amps.get(0b11), Complex::new(0.0, 0.8)); // was |111⟩

        expand_bit(&mut amps, 1, true);
        assert_eq!(amps.to_vec(), original);
    }

    #[test]
    fn expand_bit_inverts_compact_bit_everywhere() {
        // Exhaustive over a 4-qubit array and every (position, value):
        // expand ∘ compact restricted to the kept half is the projector.
        for p in 0..4usize {
            for v in [false, true] {
                let full: Vec<Complex> = (0..16)
                    .map(|i| Complex::new(f64::from(i + 1), -0.5 * f64::from(i)))
                    .collect();
                let projected: Vec<Complex> = (0..16usize)
                    .map(|i| {
                        if (i >> p) & 1 == usize::from(v) {
                            full[i]
                        } else {
                            Complex::ZERO
                        }
                    })
                    .collect();
                let mut amps = Amps::from_complex(&full);
                compact_bit(&mut amps, p, v);
                expand_bit(&mut amps, p, v);
                assert_eq!(amps.to_vec(), projected, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn compact_bit_is_a_pure_move_for_every_position() {
        // Exhaustive over a 4-qubit array: compacting position p with kept
        // value v must gather exactly the matching half, in index order.
        for p in 0..4usize {
            for v in [false, true] {
                let mut amps = Amps::from_complex(
                    &(0..16)
                        .map(|i| Complex::new(f64::from(i), -f64::from(i)))
                        .collect::<Vec<_>>(),
                );
                let want: Vec<Complex> = (0..16usize)
                    .filter(|i| (i >> p) & 1 == usize::from(v))
                    .map(|i| Complex::new(i as f64, -(i as f64)))
                    .collect();
                compact_bit(&mut amps, p, v);
                assert_eq!(amps.to_vec(), want, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn expand_zero_and_one_at_the_top() {
        let mut amps = Amps::from_complex(&[Complex::ONE]);
        expand_bit(&mut amps, 0, false);
        assert_eq!(amps.to_vec(), vec![Complex::ONE, Complex::ZERO]);
        expand_bit(&mut amps, 1, true);
        assert_eq!(
            amps.to_vec(),
            vec![Complex::ZERO, Complex::ZERO, Complex::ONE, Complex::ZERO]
        );
    }

    #[test]
    fn phase_kernels_touch_only_the_pinned_subspace() {
        let mut amps = Amps::from_complex(&[Complex::ONE; 16]);
        phase2(Par::serial(), &mut amps, 3, 1, 1, 1, Complex::I);
        for (i, a) in amps.to_vec().iter().enumerate() {
            let expect = if i & 0b1010 == 0b1010 {
                Complex::I
            } else {
                Complex::ONE
            };
            assert_eq!(*a, expect, "index {i:04b}");
        }
    }

    #[test]
    fn measurement_sweeps_match_their_per_index_definitions() {
        // project_bit / zero_where_bit / split_bit / prob_of_set_bit /
        // bit_masses against the naive per-index loops they replace, for
        // every bit of a 4-qubit ramp.
        let len = 16usize;
        let state: Vec<Complex> = (0..len)
            .map(|i| Complex::new(0.3 + i as f64, 1.0 - 0.25 * i as f64))
            .collect();
        for p in 0..4usize {
            let m = 1usize << p;
            // prob_of_set_bit: ascending filtered sum.
            let amps = Amps::from_complex(&state);
            let mut want = 0.0;
            for (i, a) in state.iter().enumerate() {
                if i & m != 0 {
                    want += a.norm_sqr();
                }
            }
            assert_eq!(
                prob_of_set_bit(&amps, p).to_bits(),
                want.to_bits(),
                "prob p={p}"
            );

            // bit_masses: block-interleaved sums (same as the seed order).
            let (m0, m1) = bit_masses(&amps, p);
            assert!((m0 + m1 - state.iter().map(|a| a.norm_sqr()).sum::<f64>()).abs() < 1e-9);

            // project_bit.
            for outcome in [false, true] {
                let scale = 1.25;
                let mut amps = Amps::from_complex(&state);
                project_bit(&mut amps, p, outcome, scale);
                for (i, a) in state.iter().enumerate() {
                    let want = if (i & m != 0) == outcome {
                        a.scale(scale)
                    } else {
                        Complex::ZERO
                    };
                    assert_eq!(amps.get(i), want, "project p={p} outcome={outcome} i={i}");
                }
            }

            // zero_where_bit leaves survivors bitwise untouched.
            let mut amps = Amps::from_complex(&state);
            zero_where_bit(&mut amps, p);
            for (i, a) in state.iter().enumerate() {
                if i & m != 0 {
                    assert_eq!(amps.get(i), Complex::ZERO, "zeroed p={p} i={i}");
                } else {
                    assert_eq!(amps.get(i).re.to_bits(), a.re.to_bits(), "kept p={p} i={i}");
                    assert_eq!(amps.get(i).im.to_bits(), a.im.to_bits(), "kept p={p} i={i}");
                }
            }

            // split_bit.
            let mut zero_branch = Amps::from_complex(&state);
            let one_branch = split_bit(&mut zero_branch, m, 0.5, 2.0);
            for (i, a) in state.iter().enumerate() {
                if i & m != 0 {
                    assert_eq!(one_branch.get(i), a.scale(2.0), "one branch i={i}");
                    assert_eq!(zero_branch.get(i), Complex::ZERO, "zero branch i={i}");
                } else {
                    assert_eq!(zero_branch.get(i), a.scale(0.5), "zero branch i={i}");
                    assert_eq!(one_branch.get(i), Complex::ZERO, "one branch i={i}");
                }
            }
        }
    }

    /// Reference: a permutation gate's classical action on a basis index
    /// with *global* operands.
    fn perm_image(i: usize, g: &Gate) -> usize {
        let m = |q: QubitId| q.index();
        let mut i = i;
        match *g {
            Gate::X(t) => i ^= 1usize << m(t),
            Gate::Cx(c, t) => i ^= ((i >> m(c)) & 1) << m(t),
            Gate::Ccx(c1, c2, t) => i ^= ((i >> m(c1)) & (i >> m(c2)) & 1) << m(t),
            Gate::Swap(a, b) => {
                let x = ((i >> m(a)) ^ (i >> m(b))) & 1;
                i ^= (x << m(a)) | (x << m(b));
            }
            _ => unreachable!("permutation gates only"),
        }
        i
    }

    /// `permute` against the naive per-index definition, across gate
    /// sequences whose support (6 qubits) exceeds the dense-fusion arity,
    /// with non-contiguous positions so the extract/spread segment walk is
    /// exercised, serial and pooled.
    #[test]
    fn permute_matches_naive_index_map() {
        let n = 9usize;
        let len = 1usize << n;
        // Local gates over 6 block qubits mapped to scattered positions.
        let positions = [0usize, 1, 3, 4, 5, 7];
        let q = |i: usize| QubitId(u32::try_from(i).unwrap());
        let gates = vec![
            Gate::Cx(q(0), q(3)),
            Gate::Ccx(q(1), q(2), q(0)),
            Gate::X(q(4)),
            Gate::Swap(q(2), q(5)),
            Gate::Cx(q(5), q(1)),
            Gate::Ccx(q(3), q(4), q(2)),
            Gate::X(q(0)),
            Gate::Swap(q(0), q(3)),
        ];
        // The same gates with global operands, for the reference walk.
        let global: Vec<Gate> = gates
            .iter()
            .map(|g| g.map_qubits(|lq| q(positions[lq.index()])))
            .collect();
        let mut want = vec![Complex::ZERO; len];
        let src = ramp(len);
        for i in 0..len {
            let mut j = i;
            for g in &global {
                j = perm_image(j, g);
            }
            want[j] = src.get(i);
        }
        let want = Amps::from_complex(&want);

        for simd in [false, true] {
            let mut amps = ramp(len);
            let mut scratch = Amps::zeroed(0);
            let par = Par { pool: None, simd };
            permute(par, &mut amps, &mut scratch, &positions, &gates).unwrap();
            assert_bit_identical(&amps, &want, "serial permute");
            // Old amplitudes land in the swapped-out scratch.
            assert_bit_identical(&scratch, &ramp(len), "swapped-out source");
        }
    }

    /// Pooled permutation sweeps are bit-identical to serial ones, above
    /// the parallel threshold and with a contiguous low-bit support (the
    /// span-copy fast path).
    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn permute_parallel_matches_serial() {
        let n = 15usize; // 2^15 = 32768 ≥ PAR_MIN_AMPS
        let len = 1usize << n;
        let q = |i: usize| QubitId(u32::try_from(i).unwrap());
        // Support on high bits so runs are long (span-copy path).
        let positions = [9usize, 10, 11, 12];
        let gates = vec![
            Gate::Cx(q(0), q(2)),
            Gate::Ccx(q(1), q(3), q(0)),
            Gate::Swap(q(1), q(2)),
            Gate::X(q(3)),
        ];
        let mut serial = ramp(len);
        let mut scratch = Amps::zeroed(0);
        permute(Par::serial(), &mut serial, &mut scratch, &positions, &gates).unwrap();

        let pool = AmpPool::new(4);
        let mut parallel = ramp(len);
        let mut pscratch = Amps::zeroed(0);
        let par = Par {
            pool: Some(&pool),
            simd: true,
        };
        permute(par, &mut parallel, &mut pscratch, &positions, &gates).unwrap();
        assert_bit_identical(&parallel, &serial, "pooled permute");
    }

    /// Malformed permutation blocks are rejected with a typed error — in
    /// release builds too — leaving the state untouched.
    #[test]
    fn permute_rejects_malformed_blocks() {
        let q = |i: usize| QubitId(u32::try_from(i).unwrap());
        let check = |positions: &[usize], gates: &[Gate]| {
            let before = ramp(16);
            let mut amps = ramp(16);
            let mut scratch = Amps::zeroed(0);
            let err = permute(Par::serial(), &mut amps, &mut scratch, positions, gates);
            assert!(
                matches!(err, Err(SimError::InvalidFusedBlock { .. })),
                "expected rejection for positions {positions:?}"
            );
            assert_bit_identical(&amps, &before, "state untouched after rejection");
        };
        let cx = [Gate::Cx(q(0), q(1))];
        // Empty block.
        check(&[], &cx);
        // Non-ascending positions.
        check(&[2, 1], &cx);
        // Position outside the 4-qubit state.
        check(&[1, 4], &cx);
        // Operand outside the block.
        check(&[0, 1], &[Gate::Cx(q(0), q(2))]);
        // Non-permutation gate.
        check(&[0, 1], &[Gate::H(q(0)), Gate::Cx(q(0), q(1))]);
        // Wider than the remap-table cap.
        let wide: Vec<usize> = (0..17).collect();
        let mut amps = Amps::zeroed(1usize << 18);
        let mut scratch = Amps::zeroed(0);
        assert!(matches!(
            permute(Par::serial(), &mut amps, &mut scratch, &wide, &cx),
            Err(SimError::InvalidFusedBlock { .. })
        ));
    }
}
