//! Stride-based state-vector kernels, serial and chunk-parallel.
//!
//! Every kernel iterates exactly the amplitudes a gate can move, instead
//! of scanning all `2^n` entries with a per-index branch:
//!
//! * 1-qubit gates visit `2^(n-1)` amplitude *pairs*;
//! * controlled gates enumerate only the control-satisfied subspace —
//!   `2^(n-2)` indices for a CNOT, `2^(n-3)` for a Toffoli;
//! * diagonal gates (`Z`, `Phase`, `CZ`, `CCZ`, `CPhase`, `CcPhase`) are
//!   pure phase sweeps over the all-controls-set subspace;
//! * [`fused`] applies a whole run of gates (a compiled
//!   [`FusedUnitary`](mbu_circuit::FusedUnitary) block) in **one sweep**:
//!   each `2^k`-amplitude group is gathered once, pushed through every
//!   constituent gate locally, and scattered back — the dense-unitary
//!   action in factored form, chosen over a precomputed mat-vec because it
//!   performs *exactly* the arithmetic of unfused execution and therefore
//!   keeps amplitudes bit-identical.
//!
//! All of these share one enumeration scheme: a [`Pins`] descriptor names
//! the bit positions a kernel pins (controls, diagonal selectors, the
//! cleared target bit) and [`drive`] walks the *touched index space* — the
//! `len >> pins` indices whose pinned bits match — as maximal contiguous
//! runs. `drive` is also the parallelism seam: given an
//! [`AmpPool`](crate::pool::AmpPool), it splits the touched space into
//! per-thread chunks at **deterministic** boundaries (a pure function of
//! work size and thread count) and runs the same per-run closure on each
//! chunk concurrently. Chunks write disjoint amplitudes and every
//! amplitude is touched exactly once with identical arithmetic, so
//! parallel execution is bit-identical to serial at any thread count — the
//! guarantee the shot engine's aggregate determinism rests on.
//!
//! The kernels assume their qubit indices are in range and distinct; the
//! [`StateVector`](crate::StateVector) front end validates operands before
//! dispatching (and exposes an unoptimised full-scan reference path used
//! for differential testing and benchmarking).

use mbu_circuit::Gate;

use crate::complex::Complex;
use crate::pool::AmpPool;

/// Below this many live amplitudes a parallel sweep costs more in wake-up
/// latency than it saves; kernels fall back to the serial path. Purely a
/// scheduling decision — results are bit-identical either way.
pub(crate) const PAR_MIN_AMPS: usize = 1usize << 14;

/// The parallel execution context of one kernel call: `None` runs serial.
#[derive(Clone, Copy, Default)]
pub(crate) struct Par<'a> {
    pool: Option<&'a AmpPool>,
}

impl<'a> Par<'a> {
    /// Serial execution.
    pub(crate) fn serial() -> Self {
        Self { pool: None }
    }

    /// Parallel execution over `pool`'s lanes (serial when `None`).
    pub(crate) fn new(pool: Option<&'a AmpPool>) -> Self {
        Self { pool }
    }
}

/// Up to four pinned bit positions with their required values, sorted.
#[derive(Clone, Copy)]
struct Pins {
    n: usize,
    pos: [usize; 4],
    /// OR of `val << pos` over all pins.
    offset: usize,
}

impl Pins {
    fn new(pins: &[(usize, usize)]) -> Self {
        debug_assert!((1..=4).contains(&pins.len()));
        let mut pos = [usize::MAX; 4];
        let mut offset = 0usize;
        for (i, &(p, v)) in pins.iter().enumerate() {
            debug_assert!(v <= 1);
            pos[i] = p;
            offset |= v << p;
        }
        pos[..pins.len()].sort_unstable();
        Self {
            n: pins.len(),
            pos,
            offset,
        }
    }

    /// How many indices of a `len`-amplitude array match the pins.
    fn touched(&self, len: usize) -> usize {
        len >> self.n
    }

    /// Length of a maximal contiguous run (the free bits below the lowest
    /// pinned position).
    fn run_len(&self) -> usize {
        1usize << self.pos[0]
    }

    /// Expands touched-space index `u` to its absolute amplitude index:
    /// `u`'s bits fill the free positions in order, pinned positions take
    /// their pinned values.
    fn deposit(&self, u: usize) -> usize {
        let mut out = 0usize;
        let mut taken = 0usize; // bits of `u` consumed
        let mut next = 0usize; // next absolute position to fill
        for k in 0..self.n {
            let p = self.pos[k];
            let width = p - next;
            out |= ((u >> taken) & ((1usize << width) - 1)) << next;
            taken += width;
            next = p + 1;
        }
        out | ((u >> taken) << next) | self.offset
    }
}

/// A lifetime-erased view of the amplitude array for disjoint-range
/// concurrent access from `drive` closures.
pub(crate) struct Shared {
    ptr: *mut Complex,
    len: usize,
}

// SAFETY: every access goes through `Shared::slice`, whose contract makes
// concurrent callers touch disjoint ranges.
#[allow(unsafe_code)]
unsafe impl Sync for Shared {}

impl Shared {
    /// `amps[start .. start + len]` as an exclusive slice.
    ///
    /// # Safety
    ///
    /// The range must lie inside the array, and no two concurrently alive
    /// slices (across all threads of the current `drive` call) may
    /// overlap. The kernels guarantee this structurally: each run of the
    /// touched space, and each run's partner range, is disjoint from every
    /// other run and partner.
    #[allow(unsafe_code)]
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, start: usize, len: usize) -> &mut [Complex] {
        debug_assert!(start + len <= self.len);
        // SAFETY: bounds checked above; disjointness is the caller's
        // contract, so no two live `&mut` alias.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

/// Calls `f(shared, base, run)` for every maximal contiguous run of the
/// pinned subspace (clipped at chunk boundaries), splitting the touched
/// index space across the pool's lanes when one is supplied and the array
/// is large enough to pay for the wake-up.
///
/// Chunk boundaries depend only on `(touched, lanes)` — never on timing —
/// and every run (plus whatever partner range `f` derives from it) is
/// disjoint from every other, so the parallel sweep performs exactly the
/// serial sweep's writes.
fn drive(
    par: Par<'_>,
    amps: &mut [Complex],
    pins: &[(usize, usize)],
    f: impl Fn(&Shared, usize, usize) + Sync,
) {
    let pins = Pins::new(pins);
    let touched = pins.touched(amps.len());
    if touched == 0 {
        return;
    }
    let shared = Shared {
        ptr: amps.as_mut_ptr(),
        len: amps.len(),
    };
    let run_chunk = |from: usize, to: usize| {
        let m0 = pins.run_len();
        let mut u = from;
        while u < to {
            let run = (m0 - (u & (m0 - 1))).min(to - u);
            f(&shared, pins.deposit(u), run);
            u += run;
        }
    };
    match par.pool {
        Some(pool) if pool.threads() > 1 && amps.len() >= PAR_MIN_AMPS && touched > 1 => {
            let chunks = pool.threads().min(touched);
            let per = touched / chunks;
            let extra = touched % chunks;
            pool.run(chunks, &|c| {
                let from = c * per + c.min(extra);
                let to = from + per + usize::from(c < extra);
                run_chunk(from, to);
            });
        }
        _ => run_chunk(0, touched),
    }
}

/// Multiplies the run `amps[base .. base+run]` by `w` in place.
#[inline(always)]
fn scale_run(amps: &mut [Complex], w: Complex) {
    for a in amps {
        *a = *a * w;
    }
}

/// Negates the run in place (exact even on signed zeros, unlike a complex
/// multiply by `−1 + 0i` — the stride and scan paths promise bit-identical
/// amplitudes).
#[inline(always)]
fn negate_run(amps: &mut [Complex]) {
    for a in amps {
        *a = -*a;
    }
}

/// X gate: swaps the two halves of every block split on bit `t`.
pub(crate) fn x(par: Par<'_>, amps: &mut [Complex], t: usize) {
    let m = 1usize << t;
    drive(par, amps, &[(t, 0)], |sh, base, run| {
        // SAFETY: runs (bit `t` clear) and their partners (bit `t` set)
        // are pairwise disjoint across the whole sweep.
        #[allow(unsafe_code)]
        let (lo, hi) = unsafe { (sh.slice(base, run), sh.slice(base + m, run)) };
        lo.swap_with_slice(hi);
    });
}

/// Hadamard: butterfly over every pair split on bit `t`.
pub(crate) fn h(par: Par<'_>, amps: &mut [Complex], t: usize) {
    const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
    let m = 1usize << t;
    drive(par, amps, &[(t, 0)], |sh, base, run| {
        // SAFETY: as in [`x`]: pair halves are disjoint across the sweep.
        #[allow(unsafe_code)]
        let (lo, hi) = unsafe { (sh.slice(base, run), sh.slice(base + m, run)) };
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let x = *a;
            let y = *b;
            *a = (x + y).scale(FRAC_1_SQRT_2);
            *b = (x - y).scale(FRAC_1_SQRT_2);
        }
    });
}

/// Diagonal 1-qubit sweep: multiplies every amplitude whose bit `t` equals
/// `v` by `w`. `v = 1` is a plain phase gate; `v = 0` is its "anti" form,
/// which the bit-flip frame of the compiled executor uses to apply phases
/// on qubits whose storage is X-conjugated.
pub(crate) fn phase1(par: Par<'_>, amps: &mut [Complex], t: usize, v: usize, w: Complex) {
    drive(par, amps, &[(t, v)], |sh, base, run| {
        // SAFETY: in-place sweep over this run only; runs are disjoint.
        #[allow(unsafe_code)]
        scale_run(unsafe { sh.slice(base, run) }, w);
    });
}

/// Z gate on bit value `v`: negates every amplitude whose bit `t` equals
/// `v` (see [`negate_run`] for why negation gets its own kernel).
pub(crate) fn z(par: Par<'_>, amps: &mut [Complex], t: usize, v: usize) {
    drive(par, amps, &[(t, v)], |sh, base, run| {
        // SAFETY: in-place sweep over this run only; runs are disjoint.
        #[allow(unsafe_code)]
        negate_run(unsafe { sh.slice(base, run) });
    });
}

/// CNOT with control active on bit value `vc`: swaps target pairs only in
/// the control-satisfied quarter of the space.
pub(crate) fn cx(par: Par<'_>, amps: &mut [Complex], c: usize, vc: usize, t: usize) {
    let mt = 1usize << t;
    drive(par, amps, &[(c, vc), (t, 0)], |sh, base, run| {
        // SAFETY: runs (target bit clear) and partners (target bit set,
        // same control value) are pairwise disjoint across the sweep.
        #[allow(unsafe_code)]
        let (lo, hi) = unsafe { (sh.slice(base, run), sh.slice(base | mt, run)) };
        lo.swap_with_slice(hi);
    });
}

/// Toffoli with controls active on bit values `v1`/`v2`.
pub(crate) fn ccx(
    par: Par<'_>,
    amps: &mut [Complex],
    c1: usize,
    v1: usize,
    c2: usize,
    v2: usize,
    t: usize,
) {
    let mt = 1usize << t;
    drive(par, amps, &[(c1, v1), (c2, v2), (t, 0)], |sh, base, run| {
        // SAFETY: as in [`cx`].
        #[allow(unsafe_code)]
        let (lo, hi) = unsafe { (sh.slice(base, run), sh.slice(base | mt, run)) };
        lo.swap_with_slice(hi);
    });
}

/// Diagonal 2-qubit sweep: multiplies amplitudes whose bits at `a`/`b`
/// equal `va`/`vb` by `w`.
pub(crate) fn phase2(
    par: Par<'_>,
    amps: &mut [Complex],
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    w: Complex,
) {
    drive(par, amps, &[(a, va), (b, vb)], |sh, base, run| {
        // SAFETY: in-place sweep over this run only; runs are disjoint.
        #[allow(unsafe_code)]
        scale_run(unsafe { sh.slice(base, run) }, w);
    });
}

/// CZ on bit values `va`/`vb`: negates the selected quarter.
pub(crate) fn cz(par: Par<'_>, amps: &mut [Complex], a: usize, va: usize, b: usize, vb: usize) {
    drive(par, amps, &[(a, va), (b, vb)], |sh, base, run| {
        // SAFETY: in-place sweep over this run only; runs are disjoint.
        #[allow(unsafe_code)]
        negate_run(unsafe { sh.slice(base, run) });
    });
}

/// Diagonal 3-qubit sweep over the selected eighth of the space.
#[allow(clippy::too_many_arguments)]
pub(crate) fn phase3(
    par: Par<'_>,
    amps: &mut [Complex],
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    c: usize,
    vc: usize,
    w: Complex,
) {
    drive(par, amps, &[(a, va), (b, vb), (c, vc)], |sh, base, run| {
        // SAFETY: in-place sweep over this run only; runs are disjoint.
        #[allow(unsafe_code)]
        scale_run(unsafe { sh.slice(base, run) }, w);
    });
}

/// CCZ on bit values `va`/`vb`/`vc`: negates the selected eighth.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ccz(
    par: Par<'_>,
    amps: &mut [Complex],
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    c: usize,
    vc: usize,
) {
    drive(par, amps, &[(a, va), (b, vb), (c, vc)], |sh, base, run| {
        // SAFETY: in-place sweep over this run only; runs are disjoint.
        #[allow(unsafe_code)]
        negate_run(unsafe { sh.slice(base, run) });
    });
}

/// SWAP: exchanges amplitudes over the `|…1…0…⟩ ↔ |…0…1…⟩` subspace.
pub(crate) fn swap(par: Par<'_>, amps: &mut [Complex], a: usize, b: usize) {
    let mask = (1usize << a) | (1usize << b);
    drive(par, amps, &[(a, 1), (b, 0)], |sh, base, run| {
        // Run indices carry bits below both swapped positions only, so
        // `^ mask` maps the run to a contiguous partner range.
        // SAFETY: runs live in the (a=1, b=0) subspace, partners in
        // (a=0, b=1): pairwise disjoint across the sweep.
        #[allow(unsafe_code)]
        let (lo, hi) = unsafe { (sh.slice(base, run), sh.slice(base ^ mask, run)) };
        lo.swap_with_slice(hi);
    });
}

/// One precompiled local operation of a fused block: the gate's action on
/// a `2^k`-amplitude group, flattened to explicit index lists so the hot
/// loop does no gate matching and no per-index mask tests. The arithmetic
/// per amplitude is exactly the stride kernels' (slice swaps, the H
/// butterfly formula, `cis` multiplies, exact negation), which is what
/// keeps [`fused`] bit-identical to unfused execution.
enum LocalOp {
    /// Disjoint index pairs to swap (`X`, `CX`, `CCX`, `SWAP`).
    Swap(Vec<(u8, u8)>),
    /// Disjoint index pairs to butterfly (`H`).
    Butterfly(Vec<(u8, u8)>),
    /// Indices to multiply by the phase (`Phase`, `CPhase`, `CcPhase`).
    Scale(Vec<u8>, Complex),
    /// Indices to negate exactly (`Z`, `CZ`, `CCZ`).
    Negate(Vec<u8>),
}

/// Flattens a block's local gates into [`LocalOp`]s for `dim = 2^k`
/// groups.
fn compile_local_ops(dim: usize, gates: &[Gate]) -> Vec<LocalOp> {
    let m = |q: mbu_circuit::QubitId| 1usize << q.index();
    // Index pairs `(i, i | target)` with `controls` all set, target clear.
    let moved = |controls: usize, target: usize| -> Vec<(u8, u8)> {
        (0..dim)
            .filter(|i| i & controls == controls && i & target == 0)
            .map(|i| (i as u8, (i | target) as u8))
            .collect()
    };
    // Indices with every bit of `mask` set.
    let selected = |mask: usize| -> Vec<u8> {
        (0..dim)
            .filter(|i| i & mask == mask)
            .map(|i| i as u8)
            .collect()
    };
    gates
        .iter()
        .map(|g| match *g {
            Gate::X(q) => LocalOp::Swap(moved(0, m(q))),
            Gate::H(q) => LocalOp::Butterfly(moved(0, m(q))),
            Gate::Cx(c, t) => LocalOp::Swap(moved(m(c), m(t))),
            Gate::Ccx(c1, c2, t) => LocalOp::Swap(moved(m(c1) | m(c2), m(t))),
            Gate::Swap(a, b) => LocalOp::Swap(
                (0..dim)
                    .filter(|i| i & m(a) != 0 && i & m(b) == 0)
                    .map(|i| (i as u8, (i ^ m(a) ^ m(b)) as u8))
                    .collect(),
            ),
            Gate::Z(q) => LocalOp::Negate(selected(m(q))),
            Gate::Cz(a, b) => LocalOp::Negate(selected(m(a) | m(b))),
            Gate::Ccz(a, b, c) => LocalOp::Negate(selected(m(a) | m(b) | m(c))),
            Gate::Phase(q, theta) => LocalOp::Scale(selected(m(q)), Complex::cis(theta.radians())),
            Gate::CPhase(c, t, theta) => {
                LocalOp::Scale(selected(m(c) | m(t)), Complex::cis(theta.radians()))
            }
            Gate::CcPhase(c1, c2, t, theta) => LocalOp::Scale(
                selected(m(c1) | m(c2) | m(t)),
                Complex::cis(theta.radians()),
            ),
        })
        .collect()
}

/// Applies the precompiled ops to one gathered group.
#[inline(always)]
fn apply_local_ops(local: &mut [Complex; 16], ops: &[LocalOp]) {
    const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
    for op in ops {
        match op {
            LocalOp::Swap(pairs) => {
                for &(a, b) in pairs {
                    local.swap(a as usize, b as usize);
                }
            }
            LocalOp::Butterfly(pairs) => {
                for &(a, b) in pairs {
                    let x = local[a as usize];
                    let y = local[b as usize];
                    local[a as usize] = (x + y).scale(FRAC_1_SQRT_2);
                    local[b as usize] = (x - y).scale(FRAC_1_SQRT_2);
                }
            }
            LocalOp::Scale(sel, w) => {
                for &i in sel {
                    local[i as usize] = local[i as usize] * *w;
                }
            }
            LocalOp::Negate(sel) => {
                for &i in sel {
                    local[i as usize] = -local[i as usize];
                }
            }
        }
    }
}

/// The fused dense-block kernel: applies a compiled fusion block — `gates`
/// with local operands over the (ascending) physical bit `positions` — in
/// a single sweep over the state.
///
/// Each group of `2^k` amplitudes (one per assignment of the non-block
/// bits) is gathered into a local register block, pushed through every
/// constituent gate via [`apply_local`], and scattered back. Groups are
/// independent, so the sweep parallelises over groups; the local
/// application performs exactly the arithmetic of unfused kernel
/// execution, so amplitudes stay bit-identical to the gate-at-a-time path
/// at any thread count.
pub(crate) fn fused(par: Par<'_>, amps: &mut [Complex], positions: &[usize], gates: &[Gate]) {
    let k = positions.len();
    debug_assert!((1..=4).contains(&k), "fused blocks span 1..=4 qubits");
    debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
    let dim = 1usize << k;
    // Global offset of local index `j`: its bits spread over `positions`.
    let mut off = [0usize; 16];
    for (j, o) in off.iter_mut().enumerate().take(dim) {
        for (b, &p) in positions.iter().enumerate() {
            *o |= ((j >> b) & 1) << p;
        }
    }
    let mut pins = [(0usize, 0usize); 4];
    for (pin, &p) in pins.iter_mut().zip(positions) {
        *pin = (p, 0);
    }
    let ops = compile_local_ops(dim, gates);
    const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
    drive(par, amps, &pins[..k], |sh, base, run| {
        if run >= 8 {
            // Slice mode: the run's member slices ([base|off[j],
            // base|off[j]+run) for each local index j) are contiguous, so
            // every op is a vectorisable slice-to-slice operation and no
            // amplitude is gathered or scattered at all. Long runs are
            // processed in cache-sized sub-blocks so the 2^k slices stay
            // hot across the whole op sequence — the fused sweep then
            // moves each amplitude through the memory hierarchy once,
            // however many gates the block holds.
            const SUB: usize = 1usize << 12;
            let mut sub = 0usize;
            while sub < run {
                let sr = (run - sub).min(SUB);
                // Member slice `j` of this sub-block (no carries: `off`
                // bits sit above the run's low bits).
                let member = |j: u8| base + off[j as usize] + sub;
                for op in &ops {
                    match op {
                        LocalOp::Swap(pairs) => {
                            for &(a, b) in pairs {
                                // SAFETY: distinct local indices name
                                // disjoint member slices; runs (and their
                                // sub-blocks) are pairwise disjoint.
                                #[allow(unsafe_code)]
                                let (x, y) =
                                    unsafe { (sh.slice(member(a), sr), sh.slice(member(b), sr)) };
                                x.swap_with_slice(y);
                            }
                        }
                        LocalOp::Butterfly(pairs) => {
                            for &(a, b) in pairs {
                                // SAFETY: as above.
                                #[allow(unsafe_code)]
                                let (x, y) =
                                    unsafe { (sh.slice(member(a), sr), sh.slice(member(b), sr)) };
                                for (p, q) in x.iter_mut().zip(y.iter_mut()) {
                                    let u = *p;
                                    let v = *q;
                                    *p = (u + v).scale(FRAC_1_SQRT_2);
                                    *q = (u - v).scale(FRAC_1_SQRT_2);
                                }
                            }
                        }
                        LocalOp::Scale(sel, w) => {
                            for &j in sel {
                                // SAFETY: as above.
                                #[allow(unsafe_code)]
                                scale_run(unsafe { sh.slice(member(j), sr) }, *w);
                            }
                        }
                        LocalOp::Negate(sel) => {
                            for &j in sel {
                                // SAFETY: as above.
                                #[allow(unsafe_code)]
                                negate_run(unsafe { sh.slice(member(j), sr) });
                            }
                        }
                    }
                }
                sub += sr;
            }
        } else {
            // Gather mode for short runs (the block pins low bits): pull
            // each 2^k group into registers, apply every op, scatter back.
            #[allow(unsafe_code)]
            for gbase in base..base + run {
                let mut local = [Complex::ZERO; 16];
                for (j, l) in local.iter_mut().enumerate().take(dim) {
                    // SAFETY: the group's member indices (`gbase | off[j]`)
                    // are disjoint from every other group's — groups
                    // differ in the non-block bits — and only this closure
                    // invocation touches them.
                    let member = unsafe { sh.slice(gbase | off[j], 1) };
                    *l = member[0];
                }
                apply_local_ops(&mut local, &ops);
                for (j, l) in local.iter().enumerate().take(dim) {
                    // SAFETY: as above — group members are touched by
                    // exactly this invocation.
                    let member = unsafe { sh.slice(gbase | off[j], 1) };
                    member[0] = *l;
                }
            }
        }
    });
}

/// Reclamation kernel: projects bit `p` onto the definite value `keep` and
/// compacts the array to half its length, so the state no longer
/// represents the dropped qubit at all.
///
/// Pure amplitude moves — the surviving entries are copied bit-for-bit
/// (`amps[i] ← amps[insert_bit(i, p, keep)]`), never rescaled, so for an
/// exactly-projected qubit (the post-measurement case reclamation targets)
/// the compact state is numerically identical to the full one restricted
/// to its support. The copy runs forward in place: every source index is
/// at or ahead of its destination. (Serial by design: successive halves
/// overlap, so the chunk-disjointness the parallel driver needs does not
/// hold.)
pub(crate) fn compact_bit(amps: &mut Vec<Complex>, p: usize, keep: bool) {
    let half = amps.len() / 2;
    let low_mask = (1usize << p) - 1;
    let kept = usize::from(keep) << p;
    for i in 0..half {
        let src = ((i & !low_mask) << 1) | kept | (i & low_mask);
        amps[i] = amps[src];
    }
    amps.truncate(half);
}

/// Reclamation kernel: the exact inverse of [`compact_bit`] — doubles the
/// state by inserting a fresh bit holding `value` at position `p`, used to
/// re-materialise a factored-out qubit the moment an instruction touches
/// it (at its *order-preserving* position, so the live-qubit remap never
/// accumulates a permutation that would need sorting out at restore time).
///
/// Pure moves, backward in place: every destination index is at or ahead
/// of its source, and vacated sources are zeroed. At the top position with
/// `value = 0` this degenerates to a plain zero-extension.
pub(crate) fn expand_bit(amps: &mut Vec<Complex>, p: usize, value: bool) {
    let old = amps.len();
    amps.resize(old * 2, Complex::ZERO);
    let low_mask = (1usize << p) - 1;
    let vbit = usize::from(value) << p;
    for i in (0..old).rev() {
        let dst = ((i & !low_mask) << 1) | vbit | (i & low_mask);
        if dst != i {
            amps[dst] = amps[i];
            amps[i] = Complex::ZERO;
        }
    }
}

/// Branch-tree kernel: the both-branch projection of a Z-basis
/// measurement on bit `m` (a mask, `1u64 << q`), in **one sweep** over the
/// parent state. The parent collapses in place to the outcome-0 branch
/// (bit-clear amplitudes rescaled by `scale0`, bit-set zeroed) while the
/// returned array holds the outcome-1 branch (bit-set rescaled by
/// `scale1`, bit-clear zeroed).
///
/// The per-amplitude arithmetic — `a.scale(scale)` on survivors,
/// `Complex::ZERO` elsewhere — is exactly the projection loop of the
/// sampling measurement path, so each branch is bit-identical to what a
/// forced-outcome `measure` would have left behind.
pub(crate) fn split_bit(amps: &mut [Complex], m: usize, scale0: f64, scale1: f64) -> Vec<Complex> {
    let mut one = vec![Complex::ZERO; amps.len()];
    for (i, (a, o)) in amps.iter_mut().zip(one.iter_mut()).enumerate() {
        if i & m != 0 {
            *o = a.scale(scale1);
            *a = Complex::ZERO;
        } else {
            *a = a.scale(scale0);
        }
    }
    one
}

/// The probability masses `(mass₀, mass₁)` carried by amplitudes whose bit
/// `p` is clear / set — the definiteness check a [`compact_bit`] drop is
/// gated on. (A serial reduction: parallel partial sums would re-associate
/// floating-point addition.)
pub(crate) fn bit_masses(amps: &[Complex], p: usize) -> (f64, f64) {
    let m = 1usize << p;
    let mut m0 = 0.0;
    let mut m1 = 0.0;
    let mut base = 0;
    while base < amps.len() {
        for a in &amps[base..base + m] {
            m0 += a.norm_sqr();
        }
        for a in &amps[base + m..base + (m << 1)] {
            m1 += a.norm_sqr();
        }
        base += m << 1;
    }
    (m0, m1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::QubitId;

    fn indices(len: usize, pins: &[(usize, usize)]) -> Vec<usize> {
        let mut amps = vec![Complex::ZERO; len];
        let v = std::sync::Mutex::new(Vec::new());
        drive(Par::serial(), &mut amps, pins, |_, base, run| {
            v.lock().unwrap().extend(base..base + run);
        });
        let mut v = v.into_inner().unwrap();
        v.sort_unstable();
        v
    }

    #[test]
    fn run2_enumerates_the_whole_subspace_once() {
        // Every index with bit 2 = 1 and bit 0 = 0 in a 4-qubit space,
        // exactly once — in any pin order.
        for pins in [[(2, 1), (0, 0)], [(0, 0), (2, 1)]] {
            assert_eq!(indices(16, &pins), vec![0b0100, 0b0110, 0b1100, 0b1110]);
        }
    }

    #[test]
    fn run3_enumerates_the_whole_subspace_once() {
        // Bits 0 and 3 pinned to 1, bit 1 pinned to 0, in a 5-qubit space:
        // 2^(5-3) = 4 indices.
        assert_eq!(
            indices(32, &[(3, 1), (0, 1), (1, 0)]),
            vec![0b01001, 0b01101, 0b11001, 0b11101]
        );
    }

    #[test]
    fn run_iteration_matches_mask_filter_exhaustively() {
        // Cross-check against the naive definition for every pin layout in
        // a 6-qubit space, for 1, 2 and 3 pins.
        let len = 64usize;
        for p0 in 0..6 {
            for v0 in [0usize, 1] {
                let want: Vec<usize> = (0..len).filter(|i| i >> p0 & 1 == v0).collect();
                assert_eq!(indices(len, &[(p0, v0)]), want, "pin ({p0},{v0})");
            }
            for p1 in 0..6 {
                if p0 == p1 {
                    continue;
                }
                for (v0, v1) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let want: Vec<usize> = (0..len)
                        .filter(|i| i >> p0 & 1 == v0 && i >> p1 & 1 == v1)
                        .collect();
                    assert_eq!(
                        indices(len, &[(p0, v0), (p1, v1)]),
                        want,
                        "pins ({p0},{v0}) ({p1},{v1})"
                    );
                }
                for p2 in 0..6 {
                    if p2 == p0 || p2 == p1 {
                        continue;
                    }
                    let want: Vec<usize> = (0..len)
                        .filter(|i| i >> p0 & 1 == 1 && i >> p1 & 1 == 0 && i >> p2 & 1 == 1)
                        .collect();
                    assert_eq!(
                        indices(len, &[(p0, 1), (p1, 0), (p2, 1)]),
                        want,
                        "pins {p0} {p1} {p2}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_pins_enumerate_correctly() {
        let len = 64usize;
        let want: Vec<usize> = (0..len)
            .filter(|i| i >> 1 & 1 == 1 && i >> 2 & 1 == 0 && i >> 4 & 1 == 1 && i >> 5 & 1 == 0)
            .collect();
        assert_eq!(indices(len, &[(5, 0), (1, 1), (4, 1), (2, 0)]), want);
    }

    #[test]
    fn x_kernel_on_high_bit() {
        let mut amps = vec![Complex::ZERO; 8];
        amps[0b001] = Complex::ONE;
        x(Par::serial(), &mut amps, 2);
        assert_eq!(amps[0b101], Complex::ONE);
        assert_eq!(amps[0b001], Complex::ZERO);
    }

    /// A deterministic, non-degenerate test state.
    fn ramp(len: usize) -> Vec<Complex> {
        (0..len)
            .map(|i| Complex::new(1.0 + i as f64, -0.5 * i as f64))
            .collect()
    }

    #[test]
    fn parallel_kernels_are_bit_identical_to_serial() {
        // A pool with several lanes on an array above the parallel
        // threshold: every kernel family must produce bitwise-identical
        // amplitudes to its serial run, including high-bit operands where
        // a run spans a huge contiguous range.
        let n = 15usize; // 2^15 = 32768 ≥ PAR_MIN_AMPS
        let len = 1usize << n;
        let pool = AmpPool::new(4);
        let par = Par::new(Some(&pool));
        let w = Complex::cis(0.3);
        type K = Box<dyn Fn(Par<'_>, &mut Vec<Complex>)>;
        let kernels: Vec<(&str, K)> = vec![
            ("x lo", Box::new(|p, a: &mut Vec<Complex>| x(p, a, 0))),
            (
                "x hi",
                Box::new(move |p, a: &mut Vec<Complex>| x(p, a, n - 1)),
            ),
            ("h lo", Box::new(|p, a: &mut Vec<Complex>| h(p, a, 1))),
            (
                "h hi",
                Box::new(move |p, a: &mut Vec<Complex>| h(p, a, n - 1)),
            ),
            ("z", Box::new(|p, a: &mut Vec<Complex>| z(p, a, 3, 1))),
            (
                "phase1",
                Box::new(move |p, a: &mut Vec<Complex>| phase1(p, a, 2, 0, w)),
            ),
            (
                "cx lo-hi",
                Box::new(move |p, a: &mut Vec<Complex>| cx(p, a, 0, 1, n - 1)),
            ),
            (
                "cx hi-lo",
                Box::new(move |p, a: &mut Vec<Complex>| cx(p, a, n - 1, 1, 0)),
            ),
            (
                "ccx",
                Box::new(move |p, a: &mut Vec<Complex>| ccx(p, a, 2, 1, n - 2, 1, 5)),
            ),
            (
                "cz",
                Box::new(move |p, a: &mut Vec<Complex>| cz(p, a, 1, 1, n - 1, 1)),
            ),
            (
                "phase2",
                Box::new(move |p, a: &mut Vec<Complex>| phase2(p, a, 4, 0, 9, 1, w)),
            ),
            (
                "ccz",
                Box::new(move |p, a: &mut Vec<Complex>| ccz(p, a, 0, 1, 7, 0, n - 1, 1)),
            ),
            (
                "phase3",
                Box::new(move |p, a: &mut Vec<Complex>| phase3(p, a, 3, 1, 8, 1, 12, 0, w)),
            ),
            (
                "swap",
                Box::new(move |p, a: &mut Vec<Complex>| swap(p, a, 2, n - 1)),
            ),
        ];
        for (name, kernel) in &kernels {
            let mut serial = ramp(len);
            let mut parallel = ramp(len);
            kernel(Par::serial(), &mut serial);
            kernel(par, &mut parallel);
            for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{name}: re of amp {i}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{name}: im of amp {i}");
            }
        }
    }

    #[test]
    fn fused_kernel_equals_sequential_application_bitwise() {
        // A 3-qubit block on non-contiguous positions of a 15-qubit state,
        // serial and parallel, against one-gate-at-a-time execution.
        let q = |i: u32| QubitId(i);
        let theta = mbu_circuit::Angle::turn_over_power_of_two(3);
        // Local gates over local operands l0, l1, l2.
        let gates = vec![
            Gate::H(q(0)),
            Gate::Ccx(q(0), q(2), q(1)),
            Gate::Phase(q(1), theta),
            Gate::Cx(q(1), q(0)),
            Gate::X(q(2)),
            Gate::Cz(q(0), q(2)),
            Gate::Swap(q(1), q(2)),
        ];
        let positions = [1usize, 6, 14];
        let len = 1usize << 15;

        // Reference: each local gate applied gate-at-a-time with operands
        // mapped onto the physical positions.
        let mut reference = ramp(len);
        for g in &gates {
            let phys = g.map_qubits(|lq| QubitId(u32::try_from(positions[lq.index()]).unwrap()));
            match phys {
                Gate::X(a) => x(Par::serial(), &mut reference, a.index()),
                Gate::H(a) => h(Par::serial(), &mut reference, a.index()),
                Gate::Phase(a, t) => phase1(
                    Par::serial(),
                    &mut reference,
                    a.index(),
                    1,
                    Complex::cis(t.radians()),
                ),
                Gate::Cx(c, t) => cx(Par::serial(), &mut reference, c.index(), 1, t.index()),
                Gate::Ccx(c1, c2, t) => ccx(
                    Par::serial(),
                    &mut reference,
                    c1.index(),
                    1,
                    c2.index(),
                    1,
                    t.index(),
                ),
                Gate::Cz(a, b) => cz(Par::serial(), &mut reference, a.index(), 1, b.index(), 1),
                Gate::Swap(a, b) => swap(Par::serial(), &mut reference, a.index(), b.index()),
                _ => unreachable!(),
            }
        }

        let pool = AmpPool::new(3);
        for par in [Par::serial(), Par::new(Some(&pool))] {
            let mut fused_amps = ramp(len);
            fused(par, &mut fused_amps, &positions, &gates);
            for (i, (a, b)) in reference.iter().zip(&fused_amps).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "re of amp {i}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "im of amp {i}");
            }
        }
    }

    #[test]
    fn compact_and_expand_round_trip() {
        // A 3-qubit state with bit 1 pinned to 1: dropping bit 1 then
        // re-inserting it at the same position must reproduce the state
        // exactly.
        let mut amps = vec![Complex::ZERO; 8];
        amps[0b010] = Complex::new(0.6, 0.0);
        amps[0b111] = Complex::new(0.0, 0.8);
        let original = amps.clone();

        let (m0, m1) = bit_masses(&amps, 1);
        assert_eq!(m0, 0.0);
        assert!((m1 - 1.0).abs() < 1e-12);

        compact_bit(&mut amps, 1, true);
        assert_eq!(amps.len(), 4);
        assert_eq!(amps[0b00], Complex::new(0.6, 0.0)); // was |010⟩
        assert_eq!(amps[0b11], Complex::new(0.0, 0.8)); // was |111⟩

        expand_bit(&mut amps, 1, true);
        assert_eq!(amps, original);
    }

    #[test]
    fn expand_bit_inverts_compact_bit_everywhere() {
        // Exhaustive over a 4-qubit array and every (position, value):
        // expand ∘ compact restricted to the kept half is the projector.
        for p in 0..4usize {
            for v in [false, true] {
                let full: Vec<Complex> = (0..16)
                    .map(|i| Complex::new(f64::from(i + 1), -0.5 * f64::from(i)))
                    .collect();
                let projected: Vec<Complex> = (0..16usize)
                    .map(|i| {
                        if (i >> p) & 1 == usize::from(v) {
                            full[i]
                        } else {
                            Complex::ZERO
                        }
                    })
                    .collect();
                let mut amps = full.clone();
                compact_bit(&mut amps, p, v);
                expand_bit(&mut amps, p, v);
                assert_eq!(amps, projected, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn compact_bit_is_a_pure_move_for_every_position() {
        // Exhaustive over a 4-qubit array: compacting position p with kept
        // value v must gather exactly the matching half, in index order.
        for p in 0..4usize {
            for v in [false, true] {
                let mut amps: Vec<Complex> = (0..16)
                    .map(|i| Complex::new(f64::from(i), -f64::from(i)))
                    .collect();
                let want: Vec<Complex> = (0..16usize)
                    .filter(|i| (i >> p) & 1 == usize::from(v))
                    .map(|i| Complex::new(i as f64, -(i as f64)))
                    .collect();
                compact_bit(&mut amps, p, v);
                assert_eq!(amps, want, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn expand_zero_and_one_at_the_top() {
        let mut amps = vec![Complex::ONE];
        expand_bit(&mut amps, 0, false);
        assert_eq!(amps, vec![Complex::ONE, Complex::ZERO]);
        expand_bit(&mut amps, 1, true);
        assert_eq!(
            amps,
            vec![Complex::ZERO, Complex::ZERO, Complex::ONE, Complex::ZERO]
        );
    }

    #[test]
    fn phase_kernels_touch_only_the_pinned_subspace() {
        let mut amps = vec![Complex::ONE; 16];
        phase2(Par::serial(), &mut amps, 3, 1, 1, 1, Complex::I);
        for (i, a) in amps.iter().enumerate() {
            let expect = if i & 0b1010 == 0b1010 {
                Complex::I
            } else {
                Complex::ONE
            };
            assert_eq!(*a, expect, "index {i:04b}");
        }
    }
}
