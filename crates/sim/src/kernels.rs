//! Stride-based state-vector kernels.
//!
//! Every kernel in this module iterates exactly the amplitudes a gate can
//! move, instead of scanning all `2^n` entries with a per-index branch:
//!
//! * 1-qubit gates visit `2^(n-1)` amplitude *pairs* via bit-stride
//!   iteration (an outer walk over blocks of `2^(t+1)` indices, paired
//!   halves swapped or butterflied as contiguous slices);
//! * controlled gates enumerate only the control-satisfied subspace —
//!   `2^(n-2)` indices for a CNOT, `2^(n-3)` for a Toffoli — as nested
//!   stride loops whose innermost step hands over a *contiguous run* of
//!   indices (the bits below the lowest pinned position), so the hot loop
//!   is a slice-to-slice swap or an in-place slice multiply that the
//!   compiler vectorises, with a constant pinned-bit offset OR-ed onto
//!   block bases — no per-index bit arithmetic at all;
//! * diagonal gates (`Z`, `Phase`, `CZ`, `CCZ`, `CPhase`, `CcPhase`) are
//!   pure phase sweeps over the all-controls-set subspace: no pairing, no
//!   swaps, just an in-place complex multiply.
//!
//! The kernels assume their qubit indices are in range and distinct; the
//! [`StateVector`](crate::StateVector) front end validates operands before
//! dispatching (and exposes an unoptimised full-scan reference path used
//! for differential testing and benchmarking).

use crate::complex::Complex;

/// Sorts two (position, value) pins by position.
#[inline]
fn sort2(a: (usize, usize), b: (usize, usize)) -> [(usize, usize); 2] {
    if a.0 < b.0 {
        [a, b]
    } else {
        [b, a]
    }
}

/// Sorts three (position, value) pins by position.
#[inline]
fn sort3(a: (usize, usize), b: (usize, usize), c: (usize, usize)) -> [(usize, usize); 3] {
    let mut v = [a, b, c];
    v.sort_unstable_by_key(|p| p.0);
    v
}

/// Calls `f(base, run)` for every maximal contiguous run of indices in
/// `0..len` whose bits at the two pinned positions hold the pinned values.
/// The runs cover `len / 4` indices; each run spans the free bits below
/// the lowest pinned position (`run = 2^p0`), so `f` can operate on
/// `amps[base..base + run]` as a slice.
#[inline(always)]
fn for_each_run2(
    len: usize,
    a: (usize, usize),
    b: (usize, usize),
    mut f: impl FnMut(usize, usize),
) {
    let [(p0, v0), (p1, v1)] = sort2(a, b);
    let m0 = 1usize << p0;
    let m1 = 1usize << p1;
    let offset = (v0 << p0) | (v1 << p1);
    let mut hi = 0;
    while hi < len {
        let mut mid = hi;
        while mid < hi + m1 {
            f(mid | offset, m0);
            mid += m0 << 1;
        }
        hi += m1 << 1;
    }
}

/// Like [`for_each_run2`], for three pinned bits (`len / 8` indices).
#[inline(always)]
fn for_each_run3(
    len: usize,
    a: (usize, usize),
    b: (usize, usize),
    c: (usize, usize),
    mut f: impl FnMut(usize, usize),
) {
    let [(p0, v0), (p1, v1), (p2, v2)] = sort3(a, b, c);
    let m0 = 1usize << p0;
    let m1 = 1usize << p1;
    let m2 = 1usize << p2;
    let offset = (v0 << p0) | (v1 << p1) | (v2 << p2);
    let mut hi = 0;
    while hi < len {
        let mut mid = hi;
        while mid < hi + m2 {
            let mut lo = mid;
            while lo < mid + m1 {
                f(lo | offset, m0);
                lo += m0 << 1;
            }
            mid += m1 << 1;
        }
        hi += m2 << 1;
    }
}

/// Swaps the disjoint runs `amps[base .. base+run]` and
/// `amps[partner .. partner+run]` slice-to-slice (vectorisable).
#[inline(always)]
fn swap_runs(amps: &mut [Complex], base: usize, partner: usize, run: usize) {
    let (lo_at, hi_at) = if base < partner {
        (base, partner)
    } else {
        (partner, base)
    };
    let (lo, hi) = amps.split_at_mut(hi_at);
    lo[lo_at..lo_at + run].swap_with_slice(&mut hi[..run]);
}

/// Multiplies the run `amps[base .. base+run]` by `w` in place.
#[inline(always)]
fn scale_run(amps: &mut [Complex], base: usize, run: usize, w: Complex) {
    for a in &mut amps[base..base + run] {
        *a = *a * w;
    }
}

/// X gate: swaps the two halves of every block split on bit `t`.
pub(crate) fn x(amps: &mut [Complex], t: usize) {
    let m = 1usize << t;
    let mut base = 0;
    while base < amps.len() {
        let (lo, hi) = amps[base..base + (m << 1)].split_at_mut(m);
        lo.swap_with_slice(hi);
        base += m << 1;
    }
}

/// Hadamard: butterfly over every pair split on bit `t`.
pub(crate) fn h(amps: &mut [Complex], t: usize) {
    const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
    let m = 1usize << t;
    let mut base = 0;
    while base < amps.len() {
        let (lo, hi) = amps[base..base + (m << 1)].split_at_mut(m);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let x = *a;
            let y = *b;
            *a = (x + y).scale(FRAC_1_SQRT_2);
            *b = (x - y).scale(FRAC_1_SQRT_2);
        }
        base += m << 1;
    }
}

/// Diagonal 1-qubit sweep: multiplies every amplitude whose bit `t` equals
/// `v` by `w`. `v = 1` is a plain phase gate; `v = 0` is its "anti" form,
/// which the bit-flip frame of the compiled executor uses to apply phases
/// on qubits whose storage is X-conjugated.
pub(crate) fn phase1(amps: &mut [Complex], t: usize, v: usize, w: Complex) {
    let m = 1usize << t;
    let mut base = v << t;
    while base < amps.len() {
        scale_run(amps, base, m, w);
        base += m << 1;
    }
}

/// Z gate on bit value `v`: negates every amplitude whose bit `t` equals
/// `v`. A dedicated kernel (rather than `phase1` with `w = −1`) because
/// complex multiplication by `−1 + 0i` and exact negation differ on signed
/// zeros, and the stride and scan paths promise bit-identical amplitudes.
pub(crate) fn z(amps: &mut [Complex], t: usize, v: usize) {
    let m = 1usize << t;
    let mut base = v << t;
    while base < amps.len() {
        for a in &mut amps[base..base + m] {
            *a = -*a;
        }
        base += m << 1;
    }
}

/// CNOT with control active on bit value `vc`: swaps target pairs only in
/// the control-satisfied quarter of the space.
pub(crate) fn cx(amps: &mut [Complex], c: usize, vc: usize, t: usize) {
    let mt = 1usize << t;
    for_each_run2(amps.len(), (c, vc), (t, 0), |base, run| {
        swap_runs(amps, base, base | mt, run);
    });
}

/// Toffoli with controls active on bit values `v1`/`v2`.
pub(crate) fn ccx(amps: &mut [Complex], c1: usize, v1: usize, c2: usize, v2: usize, t: usize) {
    let mt = 1usize << t;
    for_each_run3(amps.len(), (c1, v1), (c2, v2), (t, 0), |base, run| {
        swap_runs(amps, base, base | mt, run);
    });
}

/// Diagonal 2-qubit sweep: multiplies amplitudes whose bits at `a`/`b`
/// equal `va`/`vb` by `w`.
pub(crate) fn phase2(amps: &mut [Complex], a: usize, va: usize, b: usize, vb: usize, w: Complex) {
    for_each_run2(amps.len(), (a, va), (b, vb), |base, run| {
        scale_run(amps, base, run, w);
    });
}

/// CZ on bit values `va`/`vb`: negates the selected quarter (see [`z`] for
/// why negation gets its own kernel).
pub(crate) fn cz(amps: &mut [Complex], a: usize, va: usize, b: usize, vb: usize) {
    for_each_run2(amps.len(), (a, va), (b, vb), |base, run| {
        for x in &mut amps[base..base + run] {
            *x = -*x;
        }
    });
}

/// Diagonal 3-qubit sweep over the selected eighth of the space.
#[allow(clippy::too_many_arguments)]
pub(crate) fn phase3(
    amps: &mut [Complex],
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    c: usize,
    vc: usize,
    w: Complex,
) {
    for_each_run3(amps.len(), (a, va), (b, vb), (c, vc), |base, run| {
        scale_run(amps, base, run, w);
    });
}

/// CCZ on bit values `va`/`vb`/`vc`: negates the selected eighth.
pub(crate) fn ccz(
    amps: &mut [Complex],
    a: usize,
    va: usize,
    b: usize,
    vb: usize,
    c: usize,
    vc: usize,
) {
    for_each_run3(amps.len(), (a, va), (b, vb), (c, vc), |base, run| {
        for x in &mut amps[base..base + run] {
            *x = -*x;
        }
    });
}

/// Reclamation kernel: projects bit `p` onto the definite value `keep` and
/// compacts the array to half its length, so the state no longer
/// represents the dropped qubit at all.
///
/// Pure amplitude moves — the surviving entries are copied bit-for-bit
/// (`amps[i] ← amps[insert_bit(i, p, keep)]`), never rescaled, so for an
/// exactly-projected qubit (the post-measurement case reclamation targets)
/// the compact state is numerically identical to the full one restricted
/// to its support. The copy runs forward in place: every source index is
/// at or ahead of its destination.
pub(crate) fn compact_bit(amps: &mut Vec<Complex>, p: usize, keep: bool) {
    let half = amps.len() / 2;
    let low_mask = (1usize << p) - 1;
    let kept = usize::from(keep) << p;
    for i in 0..half {
        let src = ((i & !low_mask) << 1) | kept | (i & low_mask);
        amps[i] = amps[src];
    }
    amps.truncate(half);
}

/// Reclamation kernel: the exact inverse of [`compact_bit`] — doubles the
/// state by inserting a fresh bit holding `value` at position `p`, used to
/// re-materialise a factored-out qubit the moment an instruction touches
/// it (at its *order-preserving* position, so the live-qubit remap never
/// accumulates a permutation that would need sorting out at restore time).
///
/// Pure moves, backward in place: every destination index is at or ahead
/// of its source, and vacated sources are zeroed. At the top position with
/// `value = 0` this degenerates to a plain zero-extension.
pub(crate) fn expand_bit(amps: &mut Vec<Complex>, p: usize, value: bool) {
    let old = amps.len();
    amps.resize(old * 2, Complex::ZERO);
    let low_mask = (1usize << p) - 1;
    let vbit = usize::from(value) << p;
    for i in (0..old).rev() {
        let dst = ((i & !low_mask) << 1) | vbit | (i & low_mask);
        if dst != i {
            amps[dst] = amps[i];
            amps[i] = Complex::ZERO;
        }
    }
}

/// The probability masses `(mass₀, mass₁)` carried by amplitudes whose bit
/// `p` is clear / set — the definiteness check a [`compact_bit`] drop is
/// gated on.
pub(crate) fn bit_masses(amps: &[Complex], p: usize) -> (f64, f64) {
    let m = 1usize << p;
    let mut m0 = 0.0;
    let mut m1 = 0.0;
    let mut base = 0;
    while base < amps.len() {
        for a in &amps[base..base + m] {
            m0 += a.norm_sqr();
        }
        for a in &amps[base + m..base + (m << 1)] {
            m1 += a.norm_sqr();
        }
        base += m << 1;
    }
    (m0, m1)
}

/// SWAP: exchanges amplitudes over the `|…1…0…⟩ ↔ |…0…1…⟩` subspace.
pub(crate) fn swap(amps: &mut [Complex], a: usize, b: usize) {
    let mask = (1usize << a) | (1usize << b);
    for_each_run2(amps.len(), (a, 1), (b, 0), |base, run| {
        swap_runs(amps, base, base ^ mask, run);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indices2(len: usize, a: (usize, usize), b: (usize, usize)) -> Vec<usize> {
        let mut v = Vec::new();
        for_each_run2(len, a, b, |base, run| v.extend(base..base + run));
        v.sort_unstable();
        v
    }

    fn indices3(len: usize, a: (usize, usize), b: (usize, usize), c: (usize, usize)) -> Vec<usize> {
        let mut v = Vec::new();
        for_each_run3(len, a, b, c, |base, run| v.extend(base..base + run));
        v.sort_unstable();
        v
    }

    #[test]
    fn run2_enumerates_the_whole_subspace_once() {
        // Every index with bit 2 = 1 and bit 0 = 0 in a 4-qubit space,
        // exactly once — in any pin order.
        for (a, b) in [((2, 1), (0, 0)), ((0, 0), (2, 1))] {
            assert_eq!(indices2(16, a, b), vec![0b0100, 0b0110, 0b1100, 0b1110]);
        }
    }

    #[test]
    fn run3_enumerates_the_whole_subspace_once() {
        // Bits 0 and 3 pinned to 1, bit 1 pinned to 0, in a 5-qubit space:
        // 2^(5-3) = 4 indices.
        assert_eq!(
            indices3(32, (3, 1), (0, 1), (1, 0)),
            vec![0b01001, 0b01101, 0b11001, 0b11101]
        );
    }

    #[test]
    fn run_iteration_matches_mask_filter_exhaustively() {
        // Cross-check against the naive definition for every pin layout in
        // a 6-qubit space.
        let len = 64usize;
        for p0 in 0..6 {
            for p1 in 0..6 {
                if p0 == p1 {
                    continue;
                }
                for (v0, v1) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let want: Vec<usize> = (0..len)
                        .filter(|i| i >> p0 & 1 == v0 && i >> p1 & 1 == v1)
                        .collect();
                    assert_eq!(
                        indices2(len, (p0, v0), (p1, v1)),
                        want,
                        "pins ({p0},{v0}) ({p1},{v1})"
                    );
                }
                for p2 in 0..6 {
                    if p2 == p0 || p2 == p1 {
                        continue;
                    }
                    let want: Vec<usize> = (0..len)
                        .filter(|i| i >> p0 & 1 == 1 && i >> p1 & 1 == 0 && i >> p2 & 1 == 1)
                        .collect();
                    assert_eq!(
                        indices3(len, (p0, 1), (p1, 0), (p2, 1)),
                        want,
                        "pins {p0} {p1} {p2}"
                    );
                }
            }
        }
    }

    #[test]
    fn x_kernel_on_high_bit() {
        let mut amps = vec![Complex::ZERO; 8];
        amps[0b001] = Complex::ONE;
        x(&mut amps, 2);
        assert_eq!(amps[0b101], Complex::ONE);
        assert_eq!(amps[0b001], Complex::ZERO);
    }

    #[test]
    fn compact_and_expand_round_trip() {
        // A 3-qubit state with bit 1 pinned to 1: dropping bit 1 then
        // re-inserting it at the same position must reproduce the state
        // exactly.
        let mut amps = vec![Complex::ZERO; 8];
        amps[0b010] = Complex::new(0.6, 0.0);
        amps[0b111] = Complex::new(0.0, 0.8);
        let original = amps.clone();

        let (m0, m1) = bit_masses(&amps, 1);
        assert_eq!(m0, 0.0);
        assert!((m1 - 1.0).abs() < 1e-12);

        compact_bit(&mut amps, 1, true);
        assert_eq!(amps.len(), 4);
        assert_eq!(amps[0b00], Complex::new(0.6, 0.0)); // was |010⟩
        assert_eq!(amps[0b11], Complex::new(0.0, 0.8)); // was |111⟩

        expand_bit(&mut amps, 1, true);
        assert_eq!(amps, original);
    }

    #[test]
    fn expand_bit_inverts_compact_bit_everywhere() {
        // Exhaustive over a 4-qubit array and every (position, value):
        // expand ∘ compact restricted to the kept half is the projector.
        for p in 0..4usize {
            for v in [false, true] {
                let full: Vec<Complex> = (0..16)
                    .map(|i| Complex::new(f64::from(i + 1), -0.5 * f64::from(i)))
                    .collect();
                let projected: Vec<Complex> = (0..16usize)
                    .map(|i| {
                        if (i >> p) & 1 == usize::from(v) {
                            full[i]
                        } else {
                            Complex::ZERO
                        }
                    })
                    .collect();
                let mut amps = full.clone();
                compact_bit(&mut amps, p, v);
                expand_bit(&mut amps, p, v);
                assert_eq!(amps, projected, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn compact_bit_is_a_pure_move_for_every_position() {
        // Exhaustive over a 4-qubit array: compacting position p with kept
        // value v must gather exactly the matching half, in index order.
        for p in 0..4usize {
            for v in [false, true] {
                let mut amps: Vec<Complex> = (0..16)
                    .map(|i| Complex::new(f64::from(i), -f64::from(i)))
                    .collect();
                let want: Vec<Complex> = (0..16usize)
                    .filter(|i| (i >> p) & 1 == usize::from(v))
                    .map(|i| Complex::new(i as f64, -(i as f64)))
                    .collect();
                compact_bit(&mut amps, p, v);
                assert_eq!(amps, want, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn expand_zero_and_one_at_the_top() {
        let mut amps = vec![Complex::ONE];
        expand_bit(&mut amps, 0, false);
        assert_eq!(amps, vec![Complex::ONE, Complex::ZERO]);
        expand_bit(&mut amps, 1, true);
        assert_eq!(
            amps,
            vec![Complex::ZERO, Complex::ZERO, Complex::ONE, Complex::ZERO]
        );
    }

    #[test]
    fn phase_kernels_touch_only_the_pinned_subspace() {
        let mut amps = vec![Complex::ONE; 16];
        phase2(&mut amps, 3, 1, 1, 1, Complex::I);
        for (i, a) in amps.iter().enumerate() {
            let expect = if i & 0b1010 == 0b1010 {
                Complex::I
            } else {
                Complex::ONE
            };
            assert_eq!(*a, expect, "index {i:04b}");
        }
    }
}
