//! Runtime backend selection: the `MBU_BACKEND` knob.
//!
//! Every harness that builds simulators through a factory — the shot
//! engine, the branch-tree engine, benches, examples — can route
//! construction through [`BackendKind`] so one environment variable picks
//! the backend process-wide:
//!
//! * `MBU_BACKEND=dense` (default; aliases `statevector`, `sv`) — the
//!   exact dense-amplitude [`StateVector`];
//! * `MBU_BACKEND=sparse` — the basis-map [`SparseVector`], identical
//!   amplitudes at a memory cost of the occupied states only;
//! * `MBU_BACKEND=phase` — the Fourier-basis
//!   [`PhaseAccumulator`](crate::PhaseAccumulator), exact dyadic phase
//!   arithmetic on occupied branches: QFT-adder interiors run with no
//!   amplitude sweeps at any width the sparse map accepts;
//! * `MBU_BACKEND=tracker` (alias `basis`) — the `O(1)`-per-gate
//!   [`BasisTracker`], which rejects circuits that leave its fragment;
//! * `MBU_BACKEND=auto` (alias `hybrid`) — the planning
//!   [`HybridState`], which starts sparse and switches dense↔sparse at
//!   compiled-segment boundaries, bit-identical to the best fixed choice.
//!
//! Resolution goes through [`mbu_circuit::knobs::choice`]: unknown values
//! warn once and keep the default rather than silently selecting a
//! backend. The environment is read once per process ([`from_env`]
//! caches), matching the other `MBU_*` knobs.
//!
//! [`from_env`]: BackendKind::from_env

use std::sync::OnceLock;

use crate::basis::BasisTracker;
use crate::error::SimError;
use crate::hybrid::HybridState;
use crate::phase::PhaseAccumulator;
use crate::simulator::Simulator;
use crate::sparse::SparseVector;
use crate::statevector::StateVector;

/// The simulator backends a factory can construct, selectable at runtime
/// via `MBU_BACKEND`.
///
/// # Examples
///
/// ```
/// use mbu_sim::BackendKind;
///
/// assert_eq!(BackendKind::resolve(None), BackendKind::Dense);
/// assert_eq!(BackendKind::resolve(Some("sparse")), BackendKind::Sparse);
/// let sim = BackendKind::Sparse.build(300).unwrap();
/// assert_eq!(sim.num_qubits(), 300);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// The dense-amplitude [`StateVector`] (default).
    Dense,
    /// The sparse basis-map [`SparseVector`].
    Sparse,
    /// The Fourier-basis [`PhaseAccumulator`].
    Phase,
    /// The phase-tracking [`BasisTracker`].
    Tracker,
    /// The planning dense↔sparse [`HybridState`].
    Auto,
}

impl BackendKind {
    /// Every token [`resolve`](Self::resolve) accepts, canonical
    /// (lowercase) spellings.
    const OPTIONS: &'static [&'static str] = &[
        "dense",
        "statevector",
        "sv",
        "sparse",
        "phase",
        "tracker",
        "basis",
        "auto",
        "hybrid",
    ];

    /// Resolves a raw `MBU_BACKEND` value: unset or unrecognised (the
    /// latter warns once) selects [`Dense`](Self::Dense).
    #[must_use]
    pub fn resolve(raw: Option<&str>) -> Self {
        match mbu_circuit::knobs::choice("MBU_BACKEND", raw, Self::OPTIONS, "dense") {
            "sparse" => Self::Sparse,
            "phase" => Self::Phase,
            "tracker" | "basis" => Self::Tracker,
            "auto" | "hybrid" => Self::Auto,
            _ => Self::Dense,
        }
    }

    /// The process-wide `MBU_BACKEND` selection, read from the
    /// environment once and cached (knob resolution sits inside per-shot
    /// factories).
    #[must_use]
    pub fn from_env() -> Self {
        static CHOSEN: OnceLock<BackendKind> = OnceLock::new();
        *CHOSEN.get_or_init(|| Self::resolve(std::env::var("MBU_BACKEND").ok().as_deref()))
    }

    /// The canonical knob token for this backend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Sparse => "sparse",
            Self::Phase => "phase",
            Self::Tracker => "tracker",
            Self::Auto => "auto",
        }
    }

    /// Builds a fresh `|0…0⟩` simulator of this kind.
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyQubits`] when the width exceeds the backend's
    /// construction cap (the dense engine caps near 25 qubits; the sparse
    /// map, the phase accumulator and the hybrid at
    /// [`MAX_SPARSEVECTOR_QUBITS`](crate::MAX_SPARSEVECTOR_QUBITS);
    /// the tracker has no cap).
    pub fn build(self, num_qubits: usize) -> Result<Box<dyn Simulator + Send>, SimError> {
        Ok(match self {
            Self::Dense => Box::new(StateVector::zeros(num_qubits)?),
            Self::Sparse => Box::new(SparseVector::zeros(num_qubits)?),
            Self::Phase => Box::new(PhaseAccumulator::zeros(num_qubits)?),
            Self::Tracker => Box::new(BasisTracker::zeros(num_qubits)),
            Self::Auto => Box::new(HybridState::zeros(num_qubits)?),
        })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_covers_aliases_case_and_garbage() {
        for (raw, expect) in [
            (None, BackendKind::Dense),
            (Some("dense"), BackendKind::Dense),
            (Some("statevector"), BackendKind::Dense),
            (Some(" SV "), BackendKind::Dense),
            (Some("sparse"), BackendKind::Sparse),
            (Some("Sparse"), BackendKind::Sparse),
            (Some("phase"), BackendKind::Phase),
            (Some(" Phase "), BackendKind::Phase),
            (Some("tracker"), BackendKind::Tracker),
            (Some("basis"), BackendKind::Tracker),
            (Some("auto"), BackendKind::Auto),
            (Some(" Hybrid "), BackendKind::Auto),
            (Some("spares"), BackendKind::Dense),
            (Some(""), BackendKind::Dense),
        ] {
            assert_eq!(BackendKind::resolve(raw), expect, "{raw:?}");
        }
    }

    #[test]
    fn build_respects_per_backend_width_caps() {
        // The dense engine refuses what the sparse map takes in stride;
        // the hybrid starts sparse, so it takes the same widths (its
        // planner just never promotes past the dense cap).
        assert!(BackendKind::Dense.build(300).is_err());
        assert_eq!(BackendKind::Sparse.build(300).unwrap().num_qubits(), 300);
        assert_eq!(BackendKind::Phase.build(300).unwrap().num_qubits(), 300);
        assert_eq!(BackendKind::Auto.build(300).unwrap().num_qubits(), 300);
        assert_eq!(
            BackendKind::Tracker.build(100_000).unwrap().num_qubits(),
            100_000
        );
        assert!(matches!(
            BackendKind::Sparse.build(crate::MAX_SPARSEVECTOR_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn display_matches_the_knob_tokens() {
        assert_eq!(BackendKind::Dense.to_string(), "dense");
        assert_eq!(BackendKind::Sparse.to_string(), "sparse");
        assert_eq!(BackendKind::Phase.to_string(), "phase");
        assert_eq!(BackendKind::Tracker.to_string(), "tracker");
        assert_eq!(BackendKind::Auto.to_string(), "auto");
    }
}
