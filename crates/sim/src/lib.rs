//! Simulators for adaptive quantum circuits.
//!
//! Three exact backends execute the [`mbu-circuit`](mbu_circuit) IR,
//! including mid-circuit measurement and classically-controlled blocks —
//! plus a fourth, [`HybridState`] (`MBU_BACKEND=auto`), that hops between
//! the first two mid-run via a per-segment planner (see below):
//!
//! * [`StateVector`] — exact complex-amplitude simulation of every gate in
//!   the set, built on stride-based kernels: 1-qubit gates touch `2^(n-1)`
//!   amplitude pairs, controlled gates iterate only the control-satisfied
//!   subspace (`2^(n-3)` indices per Toffoli), diagonal gates are pure
//!   phase sweeps. Used to verify the QFT-based (Draper/Beauregard)
//!   circuits and the *phase* correctness of measurement-based
//!   uncomputation on superposition inputs. A full-sweep reference path
//!   ([`KernelMode::Scan`]) is retained for differential testing.
//! * [`SparseVector`] — exact complex-amplitude simulation over a sorted
//!   map from occupied basis bitstrings to amplitudes, instead of a dense
//!   `2^n` array. Permutation gates (X/CX/CCX/SWAP) are `O(occupied)` key
//!   rewrites, diagonal gates are `O(occupied)` phase multiplies, and only
//!   `H` fans entries out — so the paper's modular-arithmetic circuits,
//!   whose occupied set stays tiny on basis inputs, simulate *functionally*
//!   (amplitudes bitwise identical to the dense engine's) at the
//!   cryptographic register sizes of Table 1 (n = 64, 256, 1024) where a
//!   dense amplitude array cannot exist.
//! * [`PhaseAccumulator`] — a Fourier-basis phase-accumulator backend
//!   (`MBU_BACKEND=phase`). Each occupied basis branch carries a basis key
//!   plus exact arbitrary-precision dyadic phase accumulators for its
//!   Fourier-mode qubits, so the entire interior of a QFT adder —
//!   `H` promotion, `Rz`/`Phase`/`CPhase`/`CCPhase` rotations, `H`
//!   collapse — executes as O(occupied) exact angle additions with no
//!   amplitude sweeps. Draper/Beauregard additions run end-to-end at
//!   n = 256 or 1024 where the dense array cannot allocate and the sparse
//!   map would fan out to `2^n` Fourier-basis entries; gates outside the
//!   diagonal fragment fall back through lossless materialisation.
//! * [`BasisTracker`] — a phase-tracking computational-basis simulator.
//!   Each qubit is either in a definite computational state (`Z`-mode) or in
//!   `|+⟩`/`|−⟩` (`X`-mode), with an exact dyadic global phase. All
//!   Toffoli-family arithmetic in the paper — including Gidney's logical-AND
//!   measurement uncomputation and the full MBU protocol (Lemma 4.1) — stays
//!   inside this fragment, so circuits verify in `O(1)` per gate at widths
//!   like `n = 256` where a state vector is impossible. Operations that
//!   would create unrepresentable entanglement return a typed error.
//!
//! All backends implement the object-safe [`Simulator`] trait — one API
//! for gate execution, input preparation (`set_value`) and state readout
//! (`value` / `bit` / `global_phase`) — and report which gates actually
//! executed ([`Executed`]). Circuits can run interpreted
//! ([`Simulator::run`], walking the op tree) or compiled
//! ([`Simulator::run_compiled`], a program-counter loop over a flat
//! [`CompiledCircuit`](mbu_circuit::CompiledCircuit) instruction stream —
//! see the `mbu_circuit::compile` pipeline: lower → passes → execute).
//! Compiled programs may carry `Drop` instructions from the compiler's
//! dead-qubit liveness pass; the state vector executes them by projecting
//! the measured-and-dead qubit out of a *compacted* amplitude array
//! (halving the live state per drop and re-materialising factored-out
//! qubits on first touch), which turns the paper's early-ancilla-release
//! qubit savings into measured memory savings — see
//! [`StateVector::with_reclamation`] and
//! [`Simulator::peak_amplitudes`]. Compiled programs may also carry dense
//! `Fused` unitary blocks from the compiler's gate-fusion pass; the state
//! vector applies each block in a single sweep over the amplitude array
//! (bit-identical to unfused execution), and every kernel sweep can split
//! across a persistent per-state worker pool
//! ([`StateVector::with_amp_threads`] / `MBU_AMP_THREADS`) with
//! deterministic chunking — bit-identical results at any lane count.
//! Amplitudes live in cache-line-aligned structure-of-arrays re/im
//! buffers, and the kernels walk them as grouped strided spans whose
//! inner loops autovectorize (explicit 8-wide lane chunks, stable Rust);
//! [`StateVector::with_simd`] / `MBU_SIMD` selects between that vectorized
//! enumeration and the scalar reference enumeration, with amplitudes
//! bit-identical either way. The
//! [`ShotRunner`] builds on those seams: a seeded, deterministic,
//! multi-threaded ensemble engine that compiles the circuit once, shares
//! the immutable program across all workers, divides one thread budget
//! between shot workers and per-shot amplitude lanes, and averages
//! executed counts (and peak-memory stats) over many shots — how the
//! benchmark harness measures the paper's "in expectation" MBU costs as
//! Monte-Carlo means. [`BranchEnsemble`] goes one step further: instead
//! of re-running the deterministic prefix per shot it forks the state at
//! each measurement ([`Simulator::measure_fork`]), walks the outcome tree
//! once, and either returns the **exact** outcome distribution (no RNG at
//! all) or replays the per-shot RNG streams against the tree for
//! aggregates bit-identical to the [`ShotRunner`]'s. The backend behind
//! any of those harnesses is selectable at runtime through the
//! `MBU_BACKEND` knob ([`BackendKind`]) — including `auto`, the
//! [`HybridState`] planner that starts sparse and converts dense↔sparse
//! at compiled-segment boundaries using the compiler's structural
//! segment profiles ([`mbu_circuit::SegmentProfile`]). The lossless
//! conversions it rides on are public ([`sparse_to_dense`],
//! [`dense_to_sparse`], [`tracker_to_sparse`], and the phase-accumulator
//! seams [`sparse_to_phase`] / [`phase_to_sparse`] /
//! [`dense_to_phase`] / [`phase_to_dense`]).
//!
//! # Examples
//!
//! Simulate Gidney's logical-AND compute/uncompute on a basis state:
//!
//! ```
//! use mbu_circuit::{Basis, CircuitBuilder};
//! use mbu_sim::BasisTracker;
//! use rand::SeedableRng;
//!
//! let mut b = CircuitBuilder::new();
//! let q = b.qreg("q", 3); // x, y, and-ancilla
//! b.ccx(q[0], q[1], q[2]);
//! // Measurement-based uncompute of the AND (Figure 11 of the paper):
//! // on outcome 1, a CZ fixes the phase and an X resets the ancilla.
//! b.h(q[2]);
//! let m = b.measure(q[2], Basis::Z);
//! let (_, fix) = b.record(|b| {
//!     b.cz(q[0], q[1]);
//!     b.x(q[2]);
//! });
//! b.emit_conditional(m, &fix);
//! let circuit = b.finish();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut sim = BasisTracker::zeros(3);
//! sim.set_bit(q[0], true).unwrap();
//! sim.set_bit(q[1], true).unwrap();
//! // The AND ancilla must end in |0⟩ with no residual phase,
//! // whatever the measurement outcome.
//! sim.run(&circuit, &mut rng).unwrap();
//! assert_eq!(sim.bit(q[2]).unwrap(), false);
//! assert!(sim.global_phase().is_zero());
//! ```

// `deny` rather than `forbid`: the chunk-parallel amplitude kernels and
// their persistent worker pool need two narrow, documented `unsafe`
// escapes (lifetime-erased job dispatch and disjoint-range slice
// construction); every other module stays unsafe-free and any new unsafe
// outside the allow-listed spots is still a hard error.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod basis;
mod branch;
mod complex;
mod convert;
mod error;
mod exec;
mod hybrid;
mod kernels;
mod phase;
mod pool;
mod shots;
mod simulator;
mod soa;
mod sparse;
mod statevector;

pub use backend::BackendKind;
pub use basis::BasisTracker;
pub use branch::{BranchDistribution, BranchEnsemble, DEFAULT_NODE_BUDGET};
pub use complex::Complex;
pub use convert::{
    dense_to_phase, dense_to_sparse, phase_to_dense, phase_to_sparse, sparse_to_dense,
    sparse_to_phase, tracker_to_sparse, MAX_PHASE_ENUM_FOURIER, MAX_TRACKER_ENUM_XMODE,
};
pub use error::SimError;
pub use exec::Executed;
pub use hybrid::HybridState;
pub use phase::{PhaseAccumulator, MAX_PHASE_BRANCHES};
pub use shots::{CountStats, Ensemble, ShotRunner};
pub use simulator::{Fork, Simulator};
pub use sparse::{SparseVector, MAX_SPARSEVECTOR_QUBITS};
pub use statevector::{KernelMode, StateVector, MAX_STATEVECTOR_QUBITS};
